//! The training pipeline: bucket scheduling, epochs, and the high-level
//! [`Trainer`] entry point.
//!
//! Each epoch iterates the edge buckets in the configured order (§4.1,
//! Figure 1), loading a bucket's two partitions, training it with HOGWILD
//! threads, and releasing partitions the next bucket does not need — the
//! single-machine "swap to disk" regime when backed by a
//! [`crate::storage::DiskStore`]. The optional stratified sub-epoch scheme
//! (footnote 3) re-visits buckets `N` times on `1/N` of their edges.

pub mod bucket;
pub mod plan;
pub mod step;

use crate::config::PbgConfig;
use crate::error::Result;
use crate::model::{Model, TrainedEmbeddings};
use crate::stats::{EpochAccumulator, EpochStats, IoStats};
use crate::storage::{DiskStore, InMemoryStore, PartitionStore, StoreLayout};
use pbg_graph::bucket::Buckets;
use pbg_graph::edges::EdgeList;
use pbg_graph::partition::EntityPartitioning;
use pbg_graph::schema::GraphSchema;
use pbg_graph::RelationTypeId;
use pbg_telemetry::trace::names as span_name;
use pbg_telemetry::{span, Registry};
use pbg_tensor::rng::Xoshiro256;
use std::path::Path;

pub use bucket::{needed_keys, train_bucket};
pub use plan::{EpochPlan, EpochStep, SwapPlanner};

/// Where embedding partitions live during training.
#[derive(Debug)]
pub enum Storage {
    /// Everything resident (paper's unpartitioned / 1-partition regime).
    InMemory,
    /// Partitions swapped to files under the given directory (§4.1),
    /// with a background I/O thread prefetching the next bucket's
    /// partitions while the current one trains.
    Disk(std::path::PathBuf),
    /// Like [`Storage::Disk`] but fully synchronous: every swap blocks
    /// the training loop. The reference path for equivalence tests and
    /// the swap benchmark.
    DiskSync(std::path::PathBuf),
}

/// High-level trainer owning the model, storage, and bucketed edges.
pub struct Trainer {
    model: Model,
    store: Box<dyn PartitionStore>,
    buckets: Buckets,
    rng: Xoshiro256,
    epoch: usize,
    telemetry: Registry,
}

impl Trainer {
    /// Builds a trainer with in-memory storage.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid configs or schema/config mismatches.
    pub fn new(schema: GraphSchema, edges: &EdgeList, config: PbgConfig) -> Result<Self> {
        Self::with_storage(schema, edges, config, Storage::InMemory)
    }

    /// Builds a trainer with explicit storage and a private telemetry
    /// registry (tracing off).
    ///
    /// # Errors
    ///
    /// Returns an error for invalid configs, schema/config mismatches, or
    /// an unusable disk directory.
    pub fn with_storage(
        schema: GraphSchema,
        edges: &EdgeList,
        config: PbgConfig,
        storage: Storage,
    ) -> Result<Self> {
        Self::with_telemetry(schema, edges, config, storage, Registry::new())
    }

    /// Builds a trainer recording metrics (and, when enabled, trace
    /// events) into `telemetry`. The store's I/O counters register in the
    /// same registry, so [`Trainer::train_epoch`]'s [`EpochStats`] — and
    /// any Prometheus dump or JSONL trace taken from the registry — are
    /// views of one set of atomics.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid configs, schema/config mismatches, or
    /// an unusable disk directory.
    pub fn with_telemetry(
        schema: GraphSchema,
        edges: &EdgeList,
        config: PbgConfig,
        storage: Storage,
        telemetry: Registry,
    ) -> Result<Self> {
        let model = Model::new(schema, config)?;
        let store = build_store(&model, storage, &telemetry)?;
        let buckets = bucketize(model.schema(), edges);
        let rng = Xoshiro256::seed_from_u64(model.config().seed ^ 0xB0C4_E77E);
        Ok(Trainer {
            model,
            store,
            buckets,
            rng,
            epoch: 0,
            telemetry,
        })
    }

    /// The model (relation parameters, schema, config).
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// The telemetry registry this trainer records into.
    pub fn telemetry(&self) -> &Registry {
        &self.telemetry
    }

    /// The partition store (for memory inspection).
    pub fn store(&self) -> &dyn PartitionStore {
        self.store.as_ref()
    }

    /// The bucketed training edges.
    pub fn buckets(&self) -> &Buckets {
        &self.buckets
    }

    /// Epochs completed so far.
    pub fn epochs_done(&self) -> usize {
        self.epoch
    }

    /// Trains a single epoch and returns its stats.
    ///
    /// The epoch's partition traffic is planned up front
    /// ([`EpochPlan`]): each step's prefetch set is handed to the store
    /// *before* the bucket trains, so a pipelined store loads bucket
    /// `k+1`'s non-resident partitions while bucket `k` computes, and
    /// releases happen after the step. Single-threaded fixed-seed runs
    /// are bit-identical whether or not the store pipelines.
    pub fn train_epoch(&mut self) -> EpochStats {
        self.epoch += 1;
        let _epoch_span = span!(self.telemetry, span_name::EPOCH, epoch = self.epoch as u64);
        let config = self.model.config().clone();
        let order = config.bucket_ordering.order(
            self.buckets.src_parts(),
            self.buckets.dst_parts(),
            &mut self.rng,
        );
        let plan = EpochPlan::new(&order, |b| needed_keys(&self.model, b));
        let mut acc = EpochAccumulator::new();
        let io_before = self.io_counters();
        let passes = config.bucket_passes;
        for pass in 0..passes {
            for (step, plan_step) in plan.steps().iter().enumerate() {
                let bucket_id = plan_step.bucket;
                // overlap: next step's partitions start loading now
                for &key in &plan_step.prefetch {
                    self.store.prefetch(key);
                }
                let seed = config
                    .seed
                    .wrapping_add((self.epoch as u64) << 32)
                    .wrapping_add((pass as u64) << 16)
                    .wrapping_add(step as u64);
                let stats = if passes == 1 {
                    // shuffle in place: no per-epoch clone of the bucket
                    self.buckets.bucket_mut(bucket_id).shuffle(&mut self.rng);
                    train_bucket(
                        &self.model,
                        self.store.as_ref(),
                        bucket_id,
                        self.buckets.bucket(bucket_id),
                        seed,
                        &self.telemetry,
                    )
                } else {
                    // stratified sub-epoch: train 1/N of the bucket per
                    // pass (the chunk split is the one unavoidable copy)
                    let mut part = self
                        .buckets
                        .bucket(bucket_id)
                        .chunks(passes)
                        .swap_remove(pass);
                    part.shuffle(&mut self.rng);
                    train_bucket(
                        &self.model,
                        self.store.as_ref(),
                        bucket_id,
                        &part,
                        seed,
                        &self.telemetry,
                    )
                };
                acc.add(&stats);
                for &key in &plan_step.release {
                    self.store.release(key);
                }
            }
        }
        acc.finish(self.epoch, self.io_counters().delta_since(&io_before))
    }

    /// Snapshot of the store's monotonic I/O counters, read from the
    /// telemetry registry: epoch aggregates are a *view* of the same
    /// atomics the trace and the Prometheus dump expose. The in-memory
    /// store registers no counters, so its snapshot reads fall back to
    /// the store's own accessors (its resident gauge is set once at
    /// construction).
    fn io_counters(&self) -> IoStats {
        let io = IoStats::from_snapshot(&self.telemetry.snapshot());
        IoStats {
            // a store built without telemetry (not reachable through the
            // public constructors, but cheap to keep honest) or an
            // InMemoryStore reports its footprint through the trait
            peak_bytes: io.peak_bytes.max(self.store.peak_bytes()),
            ..io
        }
    }

    /// Trains the configured number of epochs, invoking `on_epoch` after
    /// each (for learning curves / early stopping — return `false` to
    /// stop).
    pub fn train_with(
        &mut self,
        mut on_epoch: impl FnMut(&EpochStats, &Trainer) -> bool,
    ) -> Vec<EpochStats> {
        let epochs = self.model.config().epochs;
        let mut all = Vec::with_capacity(epochs);
        for _ in 0..epochs {
            let stats = self.train_epoch();
            let keep_going = on_epoch(&stats, self);
            all.push(stats);
            if !keep_going {
                break;
            }
        }
        all
    }

    /// Trains the configured number of epochs.
    pub fn train(&mut self) -> Vec<EpochStats> {
        self.train_with(|_, _| true)
    }

    /// Snapshots the model for evaluation or checkpointing.
    pub fn snapshot(&self) -> TrainedEmbeddings {
        self.model.snapshot(self.store.as_ref())
    }
}

impl std::fmt::Debug for Trainer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Trainer")
            .field("epoch", &self.epoch)
            .field("buckets", &self.buckets.len())
            .field("config", self.model.config())
            .finish()
    }
}

fn build_store(
    model: &Model,
    storage: Storage,
    telemetry: &Registry,
) -> Result<Box<dyn PartitionStore>> {
    let layout: StoreLayout = model.store_layout();
    Ok(match storage {
        Storage::InMemory => Box::new(InMemoryStore::with_telemetry(layout, telemetry)),
        Storage::Disk(dir) => Box::new(DiskStore::with_telemetry(
            layout,
            dir.as_path() as &Path,
            telemetry,
        )?),
        Storage::DiskSync(dir) => Box::new(DiskStore::new_sync_with_telemetry(
            layout,
            dir.as_path() as &Path,
            telemetry,
        )?),
    })
}

/// Buckets `edges` using each relation's endpoint entity-type
/// partitionings.
pub fn bucketize(schema: &GraphSchema, edges: &EdgeList) -> Buckets {
    let partitionings: Vec<EntityPartitioning> = schema
        .entity_types()
        .iter()
        .map(|def| EntityPartitioning::new(def.num_entities(), def.num_partitions()))
        .collect();
    Buckets::from_edges_with(edges, |rel| {
        let rdef = schema.relation_type(RelationTypeId(rel));
        (
            partitionings[rdef.source_type().index()],
            partitionings[rdef.dest_type().index()],
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbg_graph::edges::Edge;

    fn ring(n: u32) -> EdgeList {
        (0..n).map(|i| Edge::new(i, 0u32, (i + 1) % n)).collect()
    }

    fn config(threads: usize, epochs: usize) -> PbgConfig {
        PbgConfig::builder()
            .dim(8)
            .batch_size(32)
            .chunk_size(8)
            .uniform_negatives(8)
            .threads(threads)
            .epochs(epochs)
            .build()
            .unwrap()
    }

    #[test]
    fn single_partition_training_converges() {
        let schema = GraphSchema::homogeneous(64, 1).unwrap();
        let mut t = Trainer::new(schema, &ring(64), config(2, 5)).unwrap();
        let stats = t.train();
        assert_eq!(stats.len(), 5);
        assert!(
            stats.last().unwrap().mean_loss < stats[0].mean_loss,
            "loss: {} -> {}",
            stats[0].mean_loss,
            stats.last().unwrap().mean_loss
        );
    }

    #[test]
    fn partitioned_training_converges() {
        let schema = GraphSchema::homogeneous(64, 4).unwrap();
        let mut t = Trainer::new(schema, &ring(64), config(2, 5)).unwrap();
        assert_eq!(t.buckets().len(), 16);
        let stats = t.train();
        assert!(stats.last().unwrap().mean_loss < stats[0].mean_loss);
    }

    #[test]
    fn disk_storage_swaps_and_converges() {
        let dir = std::env::temp_dir().join(format!("pbg_trainer_{}", std::process::id()));
        let schema = GraphSchema::homogeneous(64, 4).unwrap();
        let mut t =
            Trainer::with_storage(schema, &ring(64), config(2, 3), Storage::Disk(dir.clone()))
                .unwrap();
        let stats = t.train();
        assert!(stats[0].swap_ins > 0, "disk store must swap partitions in");
        // with 4 partitions only 2 are ever resident: peak < full size
        let full_bytes: usize = {
            let schema = GraphSchema::homogeneous(64, 1).unwrap();
            let t_full = Trainer::new(schema, &ring(64), config(1, 1)).unwrap();
            t_full.store().peak_bytes()
        };
        assert!(
            t.store().peak_bytes() < full_bytes,
            "peak {} not below full model {}",
            t.store().peak_bytes(),
            full_bytes
        );
        assert!(stats.last().unwrap().mean_loss < stats[0].mean_loss);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn early_stop_callback() {
        let schema = GraphSchema::homogeneous(32, 1).unwrap();
        let mut t = Trainer::new(schema, &ring(32), config(1, 10)).unwrap();
        let stats = t.train_with(|s, _| s.epoch < 3);
        assert_eq!(stats.len(), 3);
        assert_eq!(t.epochs_done(), 3);
    }

    #[test]
    fn stratified_passes_cover_all_edges() {
        let schema = GraphSchema::homogeneous(32, 2).unwrap();
        let cfg = PbgConfig::builder()
            .dim(8)
            .batch_size(16)
            .chunk_size(4)
            .uniform_negatives(4)
            .threads(1)
            .epochs(1)
            .bucket_passes(3)
            .build()
            .unwrap();
        let mut t = Trainer::new(schema, &ring(32), cfg).unwrap();
        let stats = t.train();
        assert_eq!(stats[0].edges, 32, "every edge trained exactly once");
        // buckets visited N times each
        assert_eq!(stats[0].buckets, 4 * 3);
    }

    #[test]
    fn snapshot_contains_all_entities() {
        let schema = GraphSchema::homogeneous(48, 3).unwrap();
        let mut t = Trainer::new(schema, &ring(48), config(1, 1)).unwrap();
        t.train();
        let snap = t.snapshot();
        assert_eq!(snap.embeddings[0].rows(), 48);
        // trained embeddings should not all be at init scale
        let norms: Vec<f32> = (0..48)
            .map(|i| pbg_tensor::vecmath::norm(snap.embedding(0, i)))
            .collect();
        assert!(norms.iter().any(|&n| n > 0.0));
    }

    #[test]
    fn deterministic_given_seed_and_single_thread() {
        let schema = GraphSchema::homogeneous(32, 2).unwrap();
        let run = || {
            let mut t = Trainer::new(schema.clone(), &ring(32), config(1, 2)).unwrap();
            t.train();
            t.snapshot().embeddings[0].as_slice().to_vec()
        };
        assert_eq!(run(), run(), "single-thread training must be reproducible");
    }

    #[test]
    fn pipelined_disk_store_is_bit_identical_to_synchronous() {
        let base = std::env::temp_dir().join(format!("pbg_equiv_{}", std::process::id()));
        let schema = GraphSchema::homogeneous(64, 4).unwrap();
        let run = |storage: Storage| {
            let mut t =
                Trainer::with_storage(schema.clone(), &ring(64), config(1, 3), storage).unwrap();
            t.train();
            t.snapshot().embeddings[0].as_slice().to_vec()
        };
        let pipelined = run(Storage::Disk(base.join("pipelined")));
        let synchronous = run(Storage::DiskSync(base.join("sync")));
        assert_eq!(
            pipelined, synchronous,
            "prefetching must only change when bytes move, not the math"
        );
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn epoch_stats_from_registry_match_store_counters() {
        // fixed-seed disk run: the registry-derived epoch aggregates must
        // agree with the store's own trait accessors — same atomics, two
        // views
        let dir = std::env::temp_dir().join(format!("pbg_reg_equiv_{}", std::process::id()));
        let schema = GraphSchema::homogeneous(64, 4).unwrap();
        let mut t =
            Trainer::with_storage(schema, &ring(64), config(1, 3), Storage::Disk(dir.clone()))
                .unwrap();
        let stats = t.train();
        let swap_ins: usize = stats.iter().map(|e| e.swap_ins).sum();
        let hits: usize = stats.iter().map(|e| e.prefetch_hits).sum();
        assert_eq!(swap_ins, t.store().swap_ins());
        assert_eq!(hits, t.store().prefetch_hits());
        let snap = t.telemetry().snapshot();
        use pbg_telemetry::metrics::names;
        assert_eq!(snap.counter(names::STORE_SWAP_INS) as usize, swap_ins);
        assert_eq!(
            snap.gauge(names::STORE_RESIDENT_BYTES).peak as usize,
            t.store().peak_bytes()
        );
        assert_eq!(
            snap.counter(names::TRAINER_EDGES) as usize,
            stats.iter().map(|e| e.edges).sum::<usize>()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pipelined_epoch_reports_prefetch_traffic() {
        let dir = std::env::temp_dir().join(format!("pbg_pf_stats_{}", std::process::id()));
        let schema = GraphSchema::homogeneous(64, 4).unwrap();
        let mut t =
            Trainer::with_storage(schema, &ring(64), config(1, 2), Storage::Disk(dir.clone()))
                .unwrap();
        let stats = t.train();
        let total_hits: usize = stats.iter().map(|e| e.prefetch_hits).sum();
        let total_written: u64 = stats.iter().map(|e| e.bytes_written_back).sum();
        assert!(total_hits > 0, "plan must route loads through prefetches");
        assert!(total_written > 0, "releases must write back asynchronously");
        let total_swaps: usize = stats.iter().map(|e| e.swap_ins).sum();
        assert!(
            total_hits <= total_swaps,
            "every prefetch hit is also a swap-in"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
