//! Epoch swap planning: precomputed acquire / prefetch / release sets.
//!
//! The bucket order for an epoch is known up front, so the partition
//! traffic it implies can be planned before any training happens instead
//! of being re-derived ad hoc with set differences inside the epoch loop.
//! [`EpochPlan`] walks the order once and emits one [`EpochStep`] per
//! bucket: which partitions must be acquired before training, which can
//! be prefetched *during* training (they belong to the next bucket only,
//! so I/O overlaps compute — §4.1's swap pipeline), and which can be
//! released afterwards.
//!
//! The incremental flavor of the same bookkeeping is [`SwapPlanner`],
//! used where the bucket sequence is not known in advance (the cluster
//! simulator's machines discover their next bucket from the lock server).
//! Both the single-machine [`crate::trainer::Trainer`] and
//! `distsim`'s cluster run on this module, so swap planning lives in
//! exactly one place.

use crate::storage::PartitionKey;
use pbg_graph::bucket::BucketId;
use std::collections::HashSet;

/// One step of an [`EpochPlan`]: a bucket plus its partition traffic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochStep {
    /// The bucket trained at this step.
    pub bucket: BucketId,
    /// Every partition this bucket touches (sorted).
    pub needed: Vec<PartitionKey>,
    /// Partitions not resident before this step; they must be loaded
    /// before training starts (sorted).
    pub acquire: Vec<PartitionKey>,
    /// Partitions the *next* step needs but this one does not: safe to
    /// load in the background while this bucket trains (sorted, disjoint
    /// from `needed` by construction).
    pub prefetch: Vec<PartitionKey>,
    /// Partitions no later step in this pass reuses directly; released
    /// (written back) after training (sorted).
    pub release: Vec<PartitionKey>,
}

/// A full epoch's worth of [`EpochStep`]s for a fixed bucket order.
///
/// Invariants (checked by the property tests in `tests/properties.rs`):
///
/// - `prefetch ∩ needed = ∅` at every step, so background I/O never
///   touches a partition the current bucket is training;
/// - the resident set after the final step is empty (every acquired
///   partition is eventually released);
/// - at no point are more than `max(needed) + max(prefetch)` partitions
///   logically held, i.e. the plan double-buffers, never more.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochPlan {
    steps: Vec<EpochStep>,
}

impl EpochPlan {
    /// Plans the epoch for `order`, with `needed` mapping each bucket to
    /// the partitions it touches (see
    /// [`crate::trainer::bucket::needed_keys`]).
    pub fn new(order: &[BucketId], needed: impl Fn(BucketId) -> HashSet<PartitionKey>) -> Self {
        let needed_sets: Vec<HashSet<PartitionKey>> = order.iter().map(|&b| needed(b)).collect();
        let mut planner = SwapPlanner::new();
        let mut steps = Vec::with_capacity(order.len());
        for (i, &bucket) in order.iter().enumerate() {
            let transition = planner.step(&needed_sets[i]);
            let release = match needed_sets.get(i + 1) {
                // keep what the next bucket reuses
                Some(next) => sorted(needed_sets[i].difference(next).copied()),
                None => planner.finish(),
            };
            if !release.is_empty() && i + 1 < order.len() {
                planner.forget(&release);
            }
            let prefetch = match needed_sets.get(i + 1) {
                Some(next) => sorted(next.difference(&needed_sets[i]).copied()),
                None => Vec::new(),
            };
            steps.push(EpochStep {
                bucket,
                needed: sorted(needed_sets[i].iter().copied()),
                acquire: transition.acquire,
                prefetch,
                release,
            });
        }
        EpochPlan { steps }
    }

    /// The planned steps, in training order.
    pub fn steps(&self) -> &[EpochStep] {
        &self.steps
    }

    /// Number of steps (buckets) in the plan.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` for an empty plan.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Total partition loads the plan implies (acquires across all
    /// steps) — the swap-in count a cold store will observe.
    pub fn total_acquires(&self) -> usize {
        self.steps.iter().map(|s| s.acquire.len()).sum()
    }

    /// Total partition loads that are prefetchable (overlap-eligible).
    pub fn total_prefetches(&self) -> usize {
        self.steps.iter().map(|s| s.prefetch.len()).sum()
    }
}

/// The acquire/release delta for one step of a [`SwapPlanner`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwapTransition {
    /// Partitions to load: needed now, not resident (sorted).
    pub acquire: Vec<PartitionKey>,
    /// Partitions to evict: resident, no longer needed (sorted).
    pub release: Vec<PartitionKey>,
}

/// Incremental swap planning over an evolving resident set.
///
/// Feed it each bucket's needed set as the bucket is discovered;
/// [`SwapPlanner::step`] returns what to load and what to evict, keeping
/// the resident set equal to the needed set afterwards. This is the
/// online counterpart of [`EpochPlan`] for consumers that learn their
/// bucket sequence one step at a time (the cluster simulator's
/// machines).
#[derive(Debug, Clone, Default)]
pub struct SwapPlanner {
    resident: HashSet<PartitionKey>,
}

impl SwapPlanner {
    /// Creates a planner with an empty resident set.
    pub fn new() -> Self {
        SwapPlanner::default()
    }

    /// The partitions currently planned as resident.
    pub fn resident(&self) -> &HashSet<PartitionKey> {
        &self.resident
    }

    /// Advances to a bucket needing `needed`; returns the load/evict
    /// delta and updates the resident set to `needed`.
    pub fn step(&mut self, needed: &HashSet<PartitionKey>) -> SwapTransition {
        let acquire = sorted(needed.difference(&self.resident).copied());
        let release = sorted(self.resident.difference(needed).copied());
        self.resident = needed.clone();
        SwapTransition { acquire, release }
    }

    /// Drops `keys` from the resident set without a full transition
    /// (used when a caller releases early, e.g. at the end of a pass).
    pub fn forget(&mut self, keys: &[PartitionKey]) {
        for k in keys {
            self.resident.remove(k);
        }
    }

    /// Releases everything still resident (end of epoch / lock wait).
    pub fn finish(&mut self) -> Vec<PartitionKey> {
        let out = sorted(self.resident.drain());
        out
    }
}

fn sorted(keys: impl IntoIterator<Item = PartitionKey>) -> Vec<PartitionKey> {
    let mut v: Vec<PartitionKey> = keys.into_iter().collect();
    v.sort_unstable();
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(p: u32) -> PartitionKey {
        PartitionKey::new(0u32, p)
    }

    /// needed-set function for a homogeneous P×P grid: {src, dst}.
    fn grid_needed(b: BucketId) -> HashSet<PartitionKey> {
        [key(b.src.0), key(b.dst.0)].into_iter().collect()
    }

    fn row_major(p: u32) -> Vec<BucketId> {
        (0..p)
            .flat_map(|s| (0..p).map(move |d| BucketId::new(s, d)))
            .collect()
    }

    #[test]
    fn plan_first_step_acquires_everything_it_needs() {
        let plan = EpochPlan::new(&row_major(3), grid_needed);
        let first = &plan.steps()[0];
        assert_eq!(first.acquire, first.needed);
    }

    #[test]
    fn plan_prefetch_is_disjoint_from_current_bucket() {
        let plan = EpochPlan::new(&row_major(4), grid_needed);
        for step in plan.steps() {
            for k in &step.prefetch {
                assert!(
                    !step.needed.contains(k),
                    "prefetch {k:?} collides with bucket {} partitions",
                    step.bucket
                );
            }
        }
    }

    #[test]
    fn plan_releases_everything_by_the_end() {
        let plan = EpochPlan::new(&row_major(3), grid_needed);
        let mut resident: HashSet<PartitionKey> = HashSet::new();
        for step in plan.steps() {
            for &k in &step.acquire {
                assert!(resident.insert(k), "{k:?} acquired twice");
            }
            for &k in &step.needed {
                assert!(resident.contains(&k), "{k:?} needed but not resident");
            }
            for &k in &step.release {
                assert!(resident.remove(&k), "{k:?} released but not resident");
            }
        }
        assert!(resident.is_empty(), "leaked partitions: {resident:?}");
    }

    #[test]
    fn plan_prefetch_matches_next_acquire() {
        // whatever step i prefetches, step i+1 must not re-acquire more
        // than that (the store already has it or it was kept resident)
        let plan = EpochPlan::new(&row_major(4), grid_needed);
        for pair in plan.steps().windows(2) {
            assert_eq!(
                pair[0].prefetch, pair[1].acquire,
                "prefetch at step for {} must equal acquire at {}",
                pair[0].bucket, pair[1].bucket
            );
        }
    }

    #[test]
    fn plan_on_diagonal_reuses_partitions() {
        // order (0,0) -> (0,1): partition 0 stays resident
        let order = vec![BucketId::new(0u32, 0u32), BucketId::new(0u32, 1u32)];
        let plan = EpochPlan::new(&order, grid_needed);
        assert_eq!(plan.steps()[0].release, vec![]);
        assert_eq!(plan.steps()[0].prefetch, vec![key(1)]);
        assert_eq!(plan.steps()[1].acquire, vec![key(1)]);
        assert_eq!(plan.steps()[1].release, vec![key(0), key(1)]);
    }

    #[test]
    fn swap_planner_tracks_resident_set() {
        let mut p = SwapPlanner::new();
        let t1 = p.step(&[key(0), key(1)].into_iter().collect());
        assert_eq!(t1.acquire, vec![key(0), key(1)]);
        assert_eq!(t1.release, vec![]);
        let t2 = p.step(&[key(1), key(2)].into_iter().collect());
        assert_eq!(t2.acquire, vec![key(2)]);
        assert_eq!(t2.release, vec![key(0)]);
        assert_eq!(p.finish(), vec![key(1), key(2)]);
        assert!(p.resident().is_empty());
    }

    #[test]
    fn empty_plan() {
        let plan = EpochPlan::new(&[], grid_needed);
        assert!(plan.is_empty());
        assert_eq!(plan.total_acquires(), 0);
    }
}
