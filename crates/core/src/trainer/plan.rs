//! Epoch swap planning: precomputed acquire / prefetch / release sets.
//!
//! The bucket order for an epoch is known up front, so the partition
//! traffic it implies can be planned before any training happens instead
//! of being re-derived ad hoc with set differences inside the epoch loop.
//! [`EpochPlan`] replays the order through a [`PartitionBuffer`] of
//! capacity `B` and emits one [`EpochStep`] per bucket: which partitions
//! must be acquired before training, which can be prefetched *during*
//! training (the buffer looks up to `B - 1` buckets ahead, so I/O
//! overlaps compute — §4.1's swap pipeline), and which the buffer evicts
//! afterwards. At the default `B = 2` this degenerates to the paper's
//! pairwise swap schedule.
//!
//! The incremental flavor of the same bookkeeping is [`SwapPlanner`],
//! used where the bucket sequence is not known in advance (the cluster
//! simulator's machines discover their next bucket from the lock
//! server). Both the single-machine [`crate::trainer::Trainer`] and
//! `distsim`'s cluster run on this module, so swap planning lives in
//! exactly one place.

use crate::buffer::{PartitionBuffer, DEFAULT_CAPACITY};
use crate::storage::PartitionKey;
use pbg_graph::bucket::BucketId;
use std::collections::{HashMap, HashSet};

/// One step of an [`EpochPlan`]: a bucket plus its partition traffic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochStep {
    /// The bucket trained at this step.
    pub bucket: BucketId,
    /// Every partition this bucket touches (sorted).
    pub needed: Vec<PartitionKey>,
    /// Partitions not resident before this step; they must be loaded
    /// before training starts (sorted).
    pub acquire: Vec<PartitionKey>,
    /// Partitions a later step acquires: safe to load in the background
    /// while this bucket trains (sorted, disjoint from `needed` by
    /// construction). With a capacity-`B` buffer the plan announces each
    /// future acquire up to `B - 1` steps early.
    pub prefetch: Vec<PartitionKey>,
    /// How many steps ahead of its acquire each `prefetch` entry is
    /// issued (parallel to `prefetch`, each `>= 1`) — the prefetch-depth
    /// telemetry histogram observes these.
    pub prefetch_depth: Vec<u64>,
    /// Partitions the buffer evicts after this step trains: written back
    /// (if dirty) and dropped from residency (sorted).
    pub release: Vec<PartitionKey>,
}

/// A full epoch's worth of [`EpochStep`]s for a fixed bucket order and
/// buffer capacity.
///
/// Invariants (checked by the property tests in `tests/properties.rs`):
///
/// - `prefetch ∩ needed = ∅` at every step, so background I/O never
///   touches a partition the current bucket is training;
/// - the resident set after the final step is empty (every acquired
///   partition is eventually released);
/// - replaying the plan's acquires and releases against a fresh
///   [`PartitionBuffer`] of the same capacity reproduces the plan's load
///   count exactly — the plan *is* the buffer, unrolled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochPlan {
    steps: Vec<EpochStep>,
}

impl EpochPlan {
    /// Plans the epoch for `order` under the paper's two-slot buffer,
    /// with `needed` mapping each bucket to the partitions it touches
    /// (see [`crate::trainer::bucket::needed_keys`]).
    pub fn new(order: &[BucketId], needed: impl Fn(BucketId) -> HashSet<PartitionKey>) -> Self {
        EpochPlan::with_capacity(order, needed, DEFAULT_CAPACITY)
    }

    /// Plans the epoch for `order` against a [`PartitionBuffer`] of
    /// `capacity` partition slots. Evictions are lazy LRU (the buffer
    /// decides), and prefetches are announced up to `capacity - 1` steps
    /// before their acquire — never earlier than the step after the
    /// key's previous eviction, so a prefetch can never race its own
    /// write-back.
    pub fn with_capacity(
        order: &[BucketId],
        needed: impl Fn(BucketId) -> HashSet<PartitionKey>,
        capacity: usize,
    ) -> Self {
        let needed_sets: Vec<HashSet<PartitionKey>> = order.iter().map(|&b| needed(b)).collect();
        let n = order.len();
        let mut buffer = PartitionBuffer::new(capacity);
        let mut acquires: Vec<Vec<PartitionKey>> = vec![Vec::new(); n];
        let mut releases: Vec<Vec<PartitionKey>> = vec![Vec::new(); n];
        for i in 0..n {
            let t = buffer.request(&needed_sets[i]);
            acquires[i] = t.load;
            if i > 0 {
                // evictions requested to fit bucket i execute after
                // bucket i-1 trains
                releases[i - 1] = t.evict;
            } else {
                debug_assert!(t.evict.is_empty(), "first request cannot evict");
            }
        }
        if n > 0 {
            releases[n - 1] = buffer.flush();
        }
        let lookahead = buffer.capacity() - 1;
        let mut prefetches: Vec<Vec<(PartitionKey, u64)>> = vec![Vec::new(); n];
        let mut last_release: HashMap<PartitionKey, usize> = HashMap::new();
        for k in 0..n {
            for &key in &acquires[k] {
                if k > 0 {
                    let earliest = last_release.get(&key).map_or(0, |&j| j + 1);
                    let issue = earliest.max(k.saturating_sub(lookahead));
                    if issue < k {
                        prefetches[issue].push((key, (k - issue) as u64));
                    }
                }
            }
            for &key in &releases[k] {
                last_release.insert(key, k);
            }
        }
        let steps = order
            .iter()
            .enumerate()
            .map(|(i, &bucket)| {
                let mut pf = std::mem::take(&mut prefetches[i]);
                pf.sort_unstable();
                EpochStep {
                    bucket,
                    needed: sorted(needed_sets[i].iter().copied()),
                    acquire: std::mem::take(&mut acquires[i]),
                    prefetch: pf.iter().map(|&(k, _)| k).collect(),
                    prefetch_depth: pf.iter().map(|&(_, d)| d).collect(),
                    release: std::mem::take(&mut releases[i]),
                }
            })
            .collect();
        EpochPlan { steps }
    }

    /// The planned steps, in training order.
    pub fn steps(&self) -> &[EpochStep] {
        &self.steps
    }

    /// Number of steps (buckets) in the plan.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` for an empty plan.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Total partition loads the plan implies (acquires across all
    /// steps) — the swap-in count a cold store will observe.
    pub fn total_acquires(&self) -> usize {
        self.steps.iter().map(|s| s.acquire.len()).sum()
    }

    /// Total partition loads that are prefetchable (overlap-eligible).
    pub fn total_prefetches(&self) -> usize {
        self.steps.iter().map(|s| s.prefetch.len()).sum()
    }
}

/// The acquire/release delta for one step of a [`SwapPlanner`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwapTransition {
    /// Partitions to load: needed now, not resident (sorted).
    pub acquire: Vec<PartitionKey>,
    /// Partitions the buffer evicts: resident, not needed, over
    /// capacity (sorted).
    pub release: Vec<PartitionKey>,
}

/// Incremental swap planning over an evolving resident set — a
/// [`PartitionBuffer`] fed one bucket at a time.
///
/// Feed it each bucket's needed set as the bucket is discovered;
/// [`SwapPlanner::step`] returns what to load and what the buffer
/// evicts. This is the online counterpart of [`EpochPlan`] for consumers
/// that learn their bucket sequence one step at a time (the cluster
/// simulator's machines).
///
/// Residency is lazy: partitions stay buffered until capacity forces
/// them out. Callers whose residency implies *exclusive ownership* of
/// unlocked state (the networked rank's fenced checkouts) must call
/// [`SwapPlanner::evict_unneeded`] after each step to restore the
/// classic swap-everything-unneeded behavior.
#[derive(Debug, Clone)]
pub struct SwapPlanner {
    buffer: PartitionBuffer,
}

impl SwapPlanner {
    /// Creates a planner with the paper's two-slot buffer.
    pub fn new() -> Self {
        SwapPlanner::with_capacity(DEFAULT_CAPACITY)
    }

    /// Creates a planner over a buffer of `capacity` partition slots.
    pub fn with_capacity(capacity: usize) -> Self {
        SwapPlanner {
            buffer: PartitionBuffer::new(capacity),
        }
    }

    /// The underlying buffer capacity.
    pub fn capacity(&self) -> usize {
        self.buffer.capacity()
    }

    /// The partitions currently planned as resident (LRU first).
    pub fn resident(&self) -> &[PartitionKey] {
        self.buffer.resident()
    }

    /// Total loads planned since creation.
    pub fn loads(&self) -> u64 {
        self.buffer.loads()
    }

    /// Advances to a bucket needing `needed`; returns the load/evict
    /// delta decided by the buffer.
    pub fn step(&mut self, needed: &HashSet<PartitionKey>) -> SwapTransition {
        let t = self.buffer.request(needed);
        SwapTransition {
            acquire: t.load,
            release: t.evict,
        }
    }

    /// Evicts every resident partition not in `needed`, regardless of
    /// capacity; returns them sorted. Restores eager pairwise-swap
    /// semantics for callers that cannot cache partitions they do not
    /// hold locks on.
    pub fn evict_unneeded(&mut self, needed: &HashSet<PartitionKey>) -> Vec<PartitionKey> {
        let extra: Vec<PartitionKey> = self
            .buffer
            .resident()
            .iter()
            .copied()
            .filter(|k| !needed.contains(k))
            .collect();
        self.buffer.forget(&extra);
        sorted(extra)
    }

    /// Drops `keys` from the resident set without a full transition
    /// (used when a caller releases early, e.g. at the end of a pass).
    pub fn forget(&mut self, keys: &[PartitionKey]) {
        self.buffer.forget(keys);
    }

    /// Releases everything still resident (end of epoch / lock wait).
    pub fn finish(&mut self) -> Vec<PartitionKey> {
        self.buffer.flush()
    }
}

impl Default for SwapPlanner {
    fn default() -> Self {
        SwapPlanner::new()
    }
}

fn sorted(keys: impl IntoIterator<Item = PartitionKey>) -> Vec<PartitionKey> {
    let mut v: Vec<PartitionKey> = keys.into_iter().collect();
    v.sort_unstable();
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(p: u32) -> PartitionKey {
        PartitionKey::new(0u32, p)
    }

    /// needed-set function for a homogeneous P×P grid: {src, dst}.
    fn grid_needed(b: BucketId) -> HashSet<PartitionKey> {
        [key(b.src.0), key(b.dst.0)].into_iter().collect()
    }

    fn row_major(p: u32) -> Vec<BucketId> {
        (0..p)
            .flat_map(|s| (0..p).map(move |d| BucketId::new(s, d)))
            .collect()
    }

    #[test]
    fn plan_first_step_acquires_everything_it_needs() {
        let plan = EpochPlan::new(&row_major(3), grid_needed);
        let first = &plan.steps()[0];
        assert_eq!(first.acquire, first.needed);
    }

    #[test]
    fn plan_prefetch_is_disjoint_from_current_bucket() {
        for capacity in [2, 3, 4, 8] {
            let plan = EpochPlan::with_capacity(&row_major(4), grid_needed, capacity);
            for step in plan.steps() {
                for k in &step.prefetch {
                    assert!(
                        !step.needed.contains(k),
                        "B={capacity}: prefetch {k:?} collides with bucket {} partitions",
                        step.bucket
                    );
                }
            }
        }
    }

    #[test]
    fn plan_releases_everything_by_the_end() {
        for capacity in [2, 3, 4, 8] {
            let plan = EpochPlan::with_capacity(&row_major(3), grid_needed, capacity);
            let mut resident: HashSet<PartitionKey> = HashSet::new();
            for step in plan.steps() {
                for &k in &step.acquire {
                    assert!(resident.insert(k), "{k:?} acquired while resident");
                }
                for &k in &step.needed {
                    assert!(resident.contains(&k), "{k:?} needed but not resident");
                }
                for &k in &step.release {
                    assert!(resident.remove(&k), "{k:?} released but not resident");
                }
            }
            assert!(resident.is_empty(), "B={capacity} leaked: {resident:?}");
        }
    }

    #[test]
    fn plan_prefetch_matches_next_acquire() {
        // at B=2 the lookahead is one bucket: whatever step i prefetches
        // is exactly what step i+1 acquires
        let plan = EpochPlan::new(&row_major(4), grid_needed);
        for pair in plan.steps().windows(2) {
            assert_eq!(
                pair[0].prefetch, pair[1].acquire,
                "prefetch at step for {} must equal acquire at {}",
                pair[0].bucket, pair[1].bucket
            );
            assert!(pair[0].prefetch_depth.iter().all(|&d| d == 1));
        }
    }

    #[test]
    fn plan_on_diagonal_reuses_partitions() {
        // order (0,0) -> (0,1): partition 0 stays resident
        let order = vec![BucketId::new(0u32, 0u32), BucketId::new(0u32, 1u32)];
        let plan = EpochPlan::new(&order, grid_needed);
        assert_eq!(plan.steps()[0].release, vec![]);
        assert_eq!(plan.steps()[0].prefetch, vec![key(1)]);
        assert_eq!(plan.steps()[1].acquire, vec![key(1)]);
        assert_eq!(plan.steps()[1].release, vec![key(0), key(1)]);
    }

    #[test]
    fn bigger_buffer_plans_fewer_acquires() {
        // inside-out revisits partitions; a B=4 buffer keeps them
        let order: Vec<BucketId> = pbg_graph::ordering::BucketOrdering::InsideOut.order(
            6,
            6,
            &mut pbg_tensor::rng::Xoshiro256::seed_from_u64(0),
        );
        let small = EpochPlan::with_capacity(&order, grid_needed, 2);
        let big = EpochPlan::with_capacity(&order, grid_needed, 4);
        assert!(
            big.total_acquires() < small.total_acquires(),
            "B=4 {} vs B=2 {}",
            big.total_acquires(),
            small.total_acquires()
        );
    }

    #[test]
    fn deep_prefetch_never_precedes_eviction() {
        for capacity in [2, 4, 8] {
            let plan = EpochPlan::with_capacity(&row_major(5), grid_needed, capacity);
            let mut released: HashMap<PartitionKey, usize> = HashMap::new();
            let mut announced: HashMap<PartitionKey, usize> = HashMap::new();
            for (i, step) in plan.steps().iter().enumerate() {
                for (&k, &d) in step.prefetch.iter().zip(&step.prefetch_depth) {
                    assert!(d >= 1 && (d as usize) < capacity.max(2), "depth {d}");
                    if let Some(&j) = released.get(&k) {
                        assert!(i > j, "prefetch of {k:?} at {i} races release at {j}");
                    }
                    announced.insert(k, i + d as usize);
                }
                for &k in &step.acquire {
                    if let Some(&at) = announced.get(&k) {
                        assert_eq!(at, i, "{k:?} acquired at {i}, announced for {at}");
                    }
                }
                for &k in &step.release {
                    released.insert(k, i);
                }
            }
        }
    }

    #[test]
    fn swap_planner_tracks_resident_set() {
        let mut p = SwapPlanner::new();
        let t1 = p.step(&[key(0), key(1)].into_iter().collect());
        assert_eq!(t1.acquire, vec![key(0), key(1)]);
        assert_eq!(t1.release, vec![]);
        let t2 = p.step(&[key(1), key(2)].into_iter().collect());
        assert_eq!(t2.acquire, vec![key(2)]);
        assert_eq!(t2.release, vec![key(0)]);
        assert_eq!(p.finish(), vec![key(1), key(2)]);
        assert!(p.resident().is_empty());
    }

    #[test]
    fn swap_planner_with_capacity_keeps_extra_partitions() {
        let mut p = SwapPlanner::with_capacity(3);
        p.step(&[key(0), key(1)].into_iter().collect());
        let t = p.step(&[key(1), key(2)].into_iter().collect());
        assert_eq!(t.acquire, vec![key(2)]);
        assert_eq!(t.release, vec![], "B=3 keeps partition 0");
        assert_eq!(p.loads(), 3);
    }

    #[test]
    fn evict_unneeded_restores_eager_semantics() {
        let mut p = SwapPlanner::new();
        p.step(&[key(0), key(1)].into_iter().collect());
        // diagonal bucket: lazy residency would keep partition 0
        let needed: HashSet<PartitionKey> = [key(1)].into_iter().collect();
        let t = p.step(&needed);
        assert_eq!(t.acquire, vec![]);
        assert_eq!(t.release, vec![], "lazy buffer keeps partition 0");
        assert_eq!(p.evict_unneeded(&needed), vec![key(0)]);
        assert_eq!(p.resident(), &[key(1)]);
    }

    #[test]
    fn empty_plan() {
        let plan = EpochPlan::new(&[], grid_needed);
        assert!(plan.is_empty());
        assert_eq!(plan.total_acquires(), 0);
    }
}
