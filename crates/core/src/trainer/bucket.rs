//! Multi-threaded training of one edge bucket.
//!
//! A bucket's edges are "loaded and subdivided among the threads for
//! training" with no inter-thread synchronization (§4.1, Recht et al.
//! 2011). Each thread cuts its share into relation-grouped batches and
//! chunks, and runs [`crate::trainer::step::train_chunk`] against the
//! shared partition data.

use crate::model::Model;
use crate::stats::BucketStats;
use crate::storage::{PartitionData, PartitionKey, PartitionStore};
use crate::trainer::step::{
    train_chunk_with_scratch, ChunkContext, ParamGradAccum, PhaseClock, PhaseTotals, StepScratch,
};
use crate::{batch, config::NegativeMode};
use pbg_graph::bucket::BucketId;
use pbg_graph::edges::EdgeList;
use pbg_graph::ids::{EntityTypeId, Partition};
use pbg_graph::partition::EntityPartitioning;
use pbg_graph::RelationTypeId;
use pbg_telemetry::metrics::names as metric;
use pbg_telemetry::trace::names as span_name;
use pbg_telemetry::Registry;
use pbg_tensor::rng::Xoshiro256;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// The partition keys a bucket needs resident, given the schema.
pub fn needed_keys(model: &Model, bucket: BucketId) -> HashSet<PartitionKey> {
    let schema = model.schema();
    let mut keys = HashSet::new();
    for r in schema.relation_types() {
        let src_def = schema.entity_type(r.source_type());
        let dst_def = schema.entity_type(r.dest_type());
        keys.insert(PartitionKey {
            entity_type: r.source_type(),
            partition: if src_def.is_partitioned() {
                bucket.src
            } else {
                Partition(0)
            },
        });
        keys.insert(PartitionKey {
            entity_type: r.dest_type(),
            partition: if dst_def.is_partitioned() {
                bucket.dst
            } else {
                Partition(0)
            },
        });
    }
    keys
}

/// Per-entity-type partitioning lookup table.
pub fn partitionings(model: &Model) -> Vec<EntityPartitioning> {
    model
        .schema()
        .entity_types()
        .iter()
        .map(|def| EntityPartitioning::new(def.num_entities(), def.num_partitions()))
        .collect()
}

/// Trains one bucket with `config.threads` HOGWILD threads; returns
/// aggregate stats. Loads (and leaves loaded) the partitions the bucket
/// needs — the caller decides when to release them.
///
/// When tracing is enabled on `telemetry`, records a `bucket_train` span
/// whose duration is the *same* measurement as the returned
/// [`BucketStats::seconds`], carrying the per-phase breakdown (compute /
/// sampling / optimizer, CPU-time summed over threads). The partition
/// `load`s happen on the calling thread before the workers spawn, so a
/// store's `swap_wait` spans nest inside this bucket's span.
pub fn train_bucket(
    model: &Model,
    store: &dyn PartitionStore,
    bucket: BucketId,
    edges: &EdgeList,
    seed: u64,
    telemetry: &Registry,
) -> BucketStats {
    let t0 = telemetry.now_ns();
    if edges.is_empty() {
        return BucketStats {
            edges: 0,
            loss: 0.0,
            seconds: telemetry.now_ns().saturating_sub(t0) as f64 * 1e-9,
        };
    }
    let tracing = telemetry.tracing();
    let config = model.config();
    // resident set for this bucket
    let mut resident: HashMap<PartitionKey, Arc<PartitionData>> = HashMap::new();
    for key in needed_keys(model, bucket) {
        resident.insert(key, store.load(key));
        // HOGWILD threads write embeddings and Adagrad state in place:
        // the eventual release must persist this partition.
        store.mark_dirty(key);
    }
    let parts = partitionings(model);
    let schema = model.schema();
    let thread_chunks = edges.chunks(config.threads);
    let results: Vec<(f64, PhaseTotals)> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = thread_chunks
            .iter()
            .enumerate()
            .map(|(tid, thread_edges)| {
                let resident = &resident;
                let parts = &parts;
                scope.spawn(move |_| {
                    if config.pin_cores {
                        // Best-effort: affinity changes placement only,
                        // never results; a rejected mask trains unpinned.
                        let plan = pbg_tensor::affinity::CorePlan::detect();
                        if let Err(e) =
                            pbg_tensor::affinity::pin_current_thread(plan.worker_core(tid))
                        {
                            eprintln!("pbg-core: worker {tid} not pinned: {e}");
                        }
                    }
                    let phases = if tracing {
                        Some(PhaseClock::new())
                    } else {
                        None
                    };
                    let mut rng = Xoshiro256::seed_from_u64(
                        seed.wrapping_mul(0x2545F4914F6CDD1D)
                            .wrapping_add(tid as u64),
                    );
                    let mut loss = 0.0f64;
                    let effective_chunk = match config.negative_mode {
                        NegativeMode::Batched => config.chunk_size,
                        // unbatched processes edges one at a time
                        NegativeMode::Unbatched => 1,
                    };
                    // Thread-local scratch: batch order, chunk offset
                    // triples, and the negative-sampling buffers all live
                    // here, so the steady-state epoch loop performs no
                    // cross-thread allocator traffic.
                    let mut batch_scratch = batch::BatchScratch::new();
                    let mut step_scratch = StepScratch::new();
                    let mut src_off: Vec<u32> = Vec::new();
                    let mut dst_off: Vec<u32> = Vec::new();
                    let mut weights: Vec<f32> = Vec::new();
                    for b in batch::relation_batches_in(
                        thread_edges,
                        config.batch_size,
                        &mut batch_scratch,
                    ) {
                        let rel_id = RelationTypeId(b.rel);
                        let rdef = schema.relation_type(rel_id);
                        let src_et = rdef.source_type();
                        let dst_et = rdef.dest_type();
                        let src_key = resolve_key(schema, src_et, bucket.src);
                        let dst_key = resolve_key(schema, dst_et, bucket.dst);
                        let src_data = &resident[&src_key];
                        let dst_data = &resident[&dst_key];
                        let src_part = &parts[src_et.index()];
                        let dst_part = &parts[dst_et.index()];
                        let ctx = ChunkContext {
                            config,
                            relation: model.relation(rel_id),
                            src_data,
                            dst_data,
                            src_partition_size: src_part.partition_size(src_key.partition) as usize,
                            dst_partition_size: dst_part.partition_size(dst_key.partition) as usize,
                            phases: phases.as_ref(),
                        };
                        let rel_weight = model.relation(rel_id).weight();
                        let mut param_grads = ParamGradAccum::for_relation(model.relation(rel_id));
                        for chunk in batch::chunks_of(b.indices, effective_chunk) {
                            src_off.clear();
                            dst_off.clear();
                            weights.clear();
                            for &i in chunk {
                                let e = thread_edges.get(i);
                                src_off.push(src_part.offset_of(e.src));
                                dst_off.push(dst_part.offset_of(e.dst));
                                weights.push(rel_weight * thread_edges.weight(i));
                            }
                            let mut step = || {
                                train_chunk_with_scratch(
                                    &ctx,
                                    &src_off,
                                    &dst_off,
                                    &weights,
                                    &mut param_grads,
                                    &mut rng,
                                    &mut step_scratch,
                                )
                            };
                            loss += match &phases {
                                Some(clock) => clock.chunk(step),
                                None => step(),
                            };
                        }
                        // shared parameters update once per batch (§4.3's
                        // relation-grouped batches make this one fetch/update)
                        match &phases {
                            Some(clock) => {
                                clock.optimizer(|| param_grads.apply(model.relation(rel_id)));
                            }
                            None => param_grads.apply(model.relation(rel_id)),
                        }
                    }
                    (loss, phases.map(|clock| clock.totals()).unwrap_or_default())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("trainer thread panicked"))
            .collect()
    })
    .expect("trainer scope panicked");
    let total_loss: f64 = results.iter().map(|(loss, _)| loss).sum();
    let mut phase_totals = PhaseTotals::default();
    for (_, totals) in &results {
        phase_totals.merge(totals);
    }
    telemetry
        .counter(metric::TRAINER_EDGES)
        .add(edges.len() as u64);
    telemetry.counter(metric::TRAINER_BUCKETS).inc();
    // one measurement for both the span and the returned stats, so the
    // trace timeline reconciles with EpochStats.seconds
    let dur_ns = telemetry.now_ns().saturating_sub(t0);
    // Always-on per-bucket rate gauges: cheap (three atomics per bucket,
    // not per edge) and visible mid-run through the /metrics server.
    if dur_ns > 0 {
        let secs = dur_ns as f64 * 1e-9;
        telemetry
            .gauge(metric::TRAINER_EDGES_PER_SEC)
            .set((edges.len() as f64 / secs) as u64);
        // flops_executed() is process-wide; the published total doubles
        // as the watermark for this bucket's delta
        let flops = pbg_tensor::kernels::flops_executed();
        let flop_gauge = telemetry.gauge(metric::TRAINER_FLOPS_TOTAL);
        let flop_delta = flops.saturating_sub(flop_gauge.get());
        flop_gauge.set(flops);
        telemetry
            .gauge(metric::TRAINER_MFLOPS)
            .set((flop_delta as f64 / secs / 1e6) as u64);
    }
    let (hits, swaps) = (store.prefetch_hits() as u64, store.swap_ins() as u64);
    if let Some(hit_bp) = (hits * 10_000).checked_div(hits + swaps) {
        telemetry.gauge(metric::TRAINER_BUFFER_HIT_BP).set(hit_bp);
    }
    if tracing {
        telemetry.record_span(
            span_name::BUCKET_TRAIN,
            t0,
            dur_ns,
            vec![
                ("src", bucket.src.0.into()),
                ("dst", bucket.dst.0.into()),
                ("edges", (edges.len() as u64).into()),
                ("loss", total_loss.into()),
                ("compute_ns", phase_totals.compute_ns.into()),
                ("sampling_ns", phase_totals.sampling_ns.into()),
                ("optimizer_ns", phase_totals.optimizer_ns.into()),
            ],
        );
    }
    BucketStats {
        edges: edges.len(),
        loss: total_loss,
        seconds: dur_ns as f64 * 1e-9,
    }
}

fn resolve_key(
    schema: &pbg_graph::schema::GraphSchema,
    et: EntityTypeId,
    part: Partition,
) -> PartitionKey {
    PartitionKey {
        entity_type: et,
        partition: if schema.entity_type(et).is_partitioned() {
            part
        } else {
            Partition(0)
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PbgConfig;
    use crate::storage::InMemoryStore;
    use pbg_graph::edges::Edge;
    use pbg_graph::schema::{EntityTypeDef, GraphSchema, RelationTypeDef};

    fn small_model(p: u32, threads: usize) -> Model {
        let schema = GraphSchema::homogeneous(64, p).unwrap();
        let config = PbgConfig::builder()
            .dim(8)
            .batch_size(16)
            .chunk_size(4)
            .uniform_negatives(4)
            .threads(threads)
            .build()
            .unwrap();
        Model::new(schema, config).unwrap()
    }

    fn ring_edges(n: u32) -> EdgeList {
        (0..n).map(|i| Edge::new(i, 0u32, (i + 1) % n)).collect()
    }

    #[test]
    fn needed_keys_partitioned() {
        let model = small_model(4, 1);
        let keys = needed_keys(&model, BucketId::new(1u32, 3u32));
        assert_eq!(keys.len(), 2);
        assert!(keys.contains(&PartitionKey::new(0u32, 1u32)));
        assert!(keys.contains(&PartitionKey::new(0u32, 3u32)));
        // diagonal bucket needs one partition
        let keys = needed_keys(&model, BucketId::new(2u32, 2u32));
        assert_eq!(keys.len(), 1);
    }

    #[test]
    fn needed_keys_unpartitioned_dst() {
        let schema = GraphSchema::builder()
            .entity_type(EntityTypeDef::new("user", 64).with_partitions(4))
            .entity_type(EntityTypeDef::new("item", 8))
            .relation_type(RelationTypeDef::new("buys", 0u32, 1u32))
            .build()
            .unwrap();
        let config = PbgConfig::builder()
            .dim(4)
            .batch_size(8)
            .chunk_size(4)
            .build()
            .unwrap();
        let model = Model::new(schema, config).unwrap();
        let keys = needed_keys(&model, BucketId::new(2u32, 0u32));
        assert!(keys.contains(&PartitionKey::new(0u32, 2u32)));
        assert!(
            keys.contains(&PartitionKey::new(1u32, 0u32)),
            "item type pins partition 0"
        );
    }

    #[test]
    fn bucket_training_reduces_loss_single_thread() {
        let model = small_model(1, 1);
        let store = InMemoryStore::new(model.store_layout());
        let edges = ring_edges(64);
        let bucket = BucketId::new(0u32, 0u32);
        let first = train_bucket(&model, &store, bucket, &edges, 1, Registry::disabled());
        let mut last = first;
        for s in 2..20 {
            last = train_bucket(&model, &store, bucket, &edges, s, Registry::disabled());
        }
        assert_eq!(first.edges, 64);
        assert!(
            last.loss < first.loss,
            "loss did not fall: {} -> {}",
            first.loss,
            last.loss
        );
    }

    #[test]
    fn bucket_training_works_multithreaded() {
        let model = small_model(1, 4);
        let store = InMemoryStore::new(model.store_layout());
        let edges = ring_edges(64);
        let bucket = BucketId::new(0u32, 0u32);
        let first = train_bucket(&model, &store, bucket, &edges, 1, Registry::disabled());
        let mut last = first;
        for s in 2..20 {
            last = train_bucket(&model, &store, bucket, &edges, s, Registry::disabled());
        }
        assert!(
            last.loss < first.loss,
            "HOGWILD loss did not fall: {} -> {}",
            first.loss,
            last.loss
        );
    }

    #[test]
    fn traced_bucket_records_span_with_phase_breakdown() {
        let model = small_model(1, 2);
        let store = InMemoryStore::new(model.store_layout());
        let reg = Registry::new();
        reg.set_tracing(true);
        let stats = train_bucket(
            &model,
            &store,
            BucketId::new(0u32, 0u32),
            &ring_edges(64),
            1,
            &reg,
        );
        let events = reg.drain();
        let span = events
            .iter()
            .find(|e| e.name == span_name::BUCKET_TRAIN)
            .expect("bucket span recorded");
        assert_eq!(span.field_u64("edges"), Some(64));
        assert_eq!(span.field_u64("src"), Some(0));
        let dur_s = span.dur_ns as f64 * 1e-9;
        assert!(
            (dur_s - stats.seconds).abs() < 1e-12,
            "span duration is the same measurement as BucketStats.seconds"
        );
        let phases = span.field_u64("compute_ns").unwrap()
            + span.field_u64("sampling_ns").unwrap()
            + span.field_u64("optimizer_ns").unwrap();
        assert!(phases > 0, "phase clock accumulated time");
        assert_eq!(reg.snapshot().counter(metric::TRAINER_EDGES), 64);
    }

    #[test]
    fn untraced_bucket_records_no_events() {
        let model = small_model(1, 1);
        let store = InMemoryStore::new(model.store_layout());
        let reg = Registry::new();
        train_bucket(
            &model,
            &store,
            BucketId::new(0u32, 0u32),
            &ring_edges(64),
            1,
            &reg,
        );
        assert!(reg.drain().is_empty(), "tracing off: no span events");
        assert_eq!(
            reg.snapshot().counter(metric::TRAINER_EDGES),
            64,
            "metrics stay on"
        );
    }

    #[test]
    fn empty_bucket_is_fine() {
        let model = small_model(2, 2);
        let store = InMemoryStore::new(model.store_layout());
        let stats = train_bucket(
            &model,
            &store,
            BucketId::new(0u32, 1u32),
            &EdgeList::new(),
            1,
            Registry::disabled(),
        );
        assert_eq!(stats.edges, 0);
        assert_eq!(stats.loss, 0.0);
    }

    #[test]
    fn partitioned_bucket_uses_offsets_correctly() {
        // edges constrained to bucket (0, 1) under id%2 partitioning
        let model = small_model(2, 2);
        let store = InMemoryStore::new(model.store_layout());
        let mut edges = EdgeList::new();
        for i in 0..16u32 {
            let src = i * 2 % 64; // even -> partition 0
            let dst = (i * 2 + 1) % 64; // odd -> partition 1
            edges.push(Edge::new(src, 0u32, dst));
        }
        let stats = train_bucket(
            &model,
            &store,
            BucketId::new(0u32, 1u32),
            &edges,
            3,
            Registry::disabled(),
        );
        assert_eq!(stats.edges, 16);
        assert!(stats.loss.is_finite());
    }
}
