//! Shared-parameter optimizer for relation operators and other global
//! parameters.
//!
//! Relation parameters are "global and thus cannot be partitioned" (§4.2);
//! on one machine every HOGWILD thread updates them concurrently, and in
//! distributed mode they sync through the parameter server. Unlike node
//! embeddings (row-summed accumulator), these small parameter vectors get
//! full per-element Adagrad, stored lock-free.

use pbg_tensor::hogwild::HogwildArray;

/// Per-element Adagrad over a lock-free shared parameter vector.
#[derive(Debug)]
pub struct HogwildAdagradDense {
    /// Parameter values; a 1-element placeholder when `len == 0` so the
    /// backing array is never zero-sized.
    params: HogwildArray,
    acc: HogwildArray,
    len: usize,
    lr: f32,
    eps: f32,
}

impl HogwildAdagradDense {
    /// Wraps initial parameter values.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not finite and positive.
    pub fn new(init: Vec<f32>, lr: f32) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        let len = init.len();
        let stored = if len == 0 { vec![0.0] } else { init };
        HogwildAdagradDense {
            params: HogwildArray::from_vec(1, stored.len(), stored),
            acc: HogwildArray::zeros(1, len.max(1)),
            len,
            lr,
            eps: 1e-8,
        }
    }

    /// Number of parameters (0 for parameterless operators).
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the operator has no parameters.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Copies the current parameter values into `buf`.
    ///
    /// # Panics
    ///
    /// Panics if `buf.len() != len()`.
    pub fn read_into(&self, buf: &mut [f32]) {
        assert_eq!(buf.len(), self.len, "read_into: length mismatch");
        if !buf.is_empty() {
            self.params.read_row_into(0, buf);
        }
    }

    /// Snapshot of the current parameters.
    pub fn snapshot(&self) -> Vec<f32> {
        if self.is_empty() {
            Vec::new()
        } else {
            self.params.to_vec()
        }
    }

    /// Snapshot of the Adagrad accumulators.
    pub fn accumulator_snapshot(&self) -> Vec<f32> {
        if self.is_empty() {
            Vec::new()
        } else {
            self.acc.to_vec()
        }
    }

    /// Overwrites parameters and accumulators (checkpoint restore, or a
    /// parameter-server pull).
    ///
    /// # Panics
    ///
    /// Panics if lengths disagree.
    pub fn restore(&self, params: &[f32], acc: &[f32]) {
        assert_eq!(params.len(), self.len, "restore: params length");
        assert_eq!(acc.len(), self.len, "restore: acc length");
        if !params.is_empty() {
            self.params.copy_from_slice(params);
            self.acc.copy_from_slice(acc);
        }
    }

    /// Applies one Adagrad step for `grad` (relaxed, HOGWILD-style:
    /// concurrent updates may interleave).
    ///
    /// # Panics
    ///
    /// Panics if `grad.len() != len()`.
    pub fn apply_grad(&self, grad: &[f32]) {
        assert_eq!(grad.len(), self.len, "apply_grad: length mismatch");
        for (k, &g) in grad.iter().enumerate() {
            if g == 0.0 {
                continue;
            }
            let prev = self.acc.fetch_add(0, k, g * g);
            let acc = prev + g * g;
            let step = self.lr / (acc.sqrt() + self.eps) * g;
            let cur = self.params.get(0, k);
            self.params.set(0, k, cur - step);
        }
    }

    /// Resident bytes of parameters + optimizer state.
    pub fn bytes(&self) -> usize {
        if self.is_empty() {
            0
        } else {
            self.params.bytes() + self.acc.bytes()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_grad_moves_against_gradient() {
        let opt = HogwildAdagradDense::new(vec![1.0, 1.0], 0.5);
        opt.apply_grad(&[1.0, -1.0]);
        let snap = opt.snapshot();
        assert!(snap[0] < 1.0);
        assert!(snap[1] > 1.0);
    }

    #[test]
    fn steps_shrink_like_adagrad() {
        let opt = HogwildAdagradDense::new(vec![0.0], 0.1);
        opt.apply_grad(&[1.0]);
        let p1 = opt.snapshot()[0];
        opt.apply_grad(&[1.0]);
        let p2 = opt.snapshot()[0];
        let step1 = -p1;
        let step2 = p1 - p2;
        assert!(step2 < step1, "{step2} !< {step1}");
        assert!(step2 > 0.0);
    }

    #[test]
    fn zero_grad_elements_skipped() {
        let opt = HogwildAdagradDense::new(vec![5.0, 5.0], 0.1);
        opt.apply_grad(&[0.0, 1.0]);
        let snap = opt.snapshot();
        assert_eq!(snap[0], 5.0);
        assert_ne!(snap[1], 5.0);
    }

    #[test]
    fn empty_params_are_inert() {
        let opt = HogwildAdagradDense::new(Vec::new(), 0.1);
        assert!(opt.is_empty());
        assert_eq!(opt.len(), 0);
        opt.apply_grad(&[]);
        assert!(opt.snapshot().is_empty());
        assert_eq!(opt.bytes(), 0);
    }

    #[test]
    fn read_into_matches_snapshot() {
        let opt = HogwildAdagradDense::new(vec![1.5, 2.5, 3.5], 0.1);
        let mut buf = [0.0f32; 3];
        opt.read_into(&mut buf);
        assert_eq!(buf.to_vec(), opt.snapshot());
    }

    #[test]
    fn restore_roundtrip() {
        let opt = HogwildAdagradDense::new(vec![0.0, 0.0], 0.1);
        opt.apply_grad(&[1.0, 2.0]);
        let p = opt.snapshot();
        let a = opt.accumulator_snapshot();
        let opt2 = HogwildAdagradDense::new(vec![9.0, 9.0], 0.1);
        opt2.restore(&p, &a);
        assert_eq!(opt2.snapshot(), p);
        assert_eq!(opt2.accumulator_snapshot(), a);
    }

    #[test]
    fn concurrent_updates_converge() {
        use std::sync::Arc;
        let opt = Arc::new(HogwildAdagradDense::new(vec![10.0], 0.5));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let opt = Arc::clone(&opt);
                std::thread::spawn(move || {
                    for _ in 0..200 {
                        // gradient pointing toward 0
                        let p = opt.snapshot()[0];
                        opt.apply_grad(&[p.signum()]);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let final_p = opt.snapshot()[0].abs();
        assert!(final_p < 10.0, "no progress made: {final_p}");
    }
}
