//! Relation operators `g(x, θ_r)` — forward and backward.
//!
//! The operator kinds (§3.1) cover the classic multi-relation models:
//! identity (plain factorization), translation (TransE), diagonal
//! (DistMult), linear (RESCAL), and complex-diagonal (ComplEx). Operators
//! act on *batches*: a `C × d` matrix of embeddings transforms in one shot,
//! which for the linear operator is a single matmul — the optimization §4.3
//! calls out for relation-grouped batches.

use pbg_graph::schema::OperatorKind;
use pbg_tensor::complex::{complex_hadamard, complex_hadamard_conj};
use pbg_tensor::matrix::Matrix;

/// Initial parameter values for `op` at dimension `dim`: every operator
/// starts as (near) identity so early training is stable.
///
/// # Panics
///
/// Panics if `op` is `ComplexDiagonal` and `dim` is odd.
pub fn init_params(op: OperatorKind, dim: usize) -> Vec<f32> {
    match op {
        OperatorKind::Identity => Vec::new(),
        OperatorKind::Translation => vec![0.0; dim],
        OperatorKind::Diagonal => vec![1.0; dim],
        OperatorKind::ComplexDiagonal => {
            assert!(dim.is_multiple_of(2), "complex operator needs even dim");
            let mut p = vec![0.0; dim];
            for i in (0..dim).step_by(2) {
                p[i] = 1.0; // 1 + 0i
            }
            p
        }
        OperatorKind::Linear => {
            let mut p = vec![0.0; dim * dim];
            for i in 0..dim {
                p[i * dim + i] = 1.0;
            }
            p
        }
    }
}

/// Applies `g(·, params)` to every row of `input` (`C × d`).
///
/// # Panics
///
/// Panics if `params.len() != op.param_count(input.cols())`.
pub fn apply(op: OperatorKind, params: &[f32], input: &Matrix) -> Matrix {
    let d = input.cols();
    assert_eq!(
        params.len(),
        op.param_count(d),
        "operator {op} expects {} params for dim {d}, got {}",
        op.param_count(d),
        params.len()
    );
    match op {
        OperatorKind::Identity => input.clone(),
        OperatorKind::Translation => {
            let mut out = input.clone();
            for i in 0..out.rows() {
                pbg_tensor::vecmath::axpy(1.0, params, out.row_mut(i));
            }
            out
        }
        OperatorKind::Diagonal => {
            let mut out = Matrix::zeros(input.rows(), d);
            for i in 0..input.rows() {
                pbg_tensor::vecmath::hadamard(input.row(i), params, out.row_mut(i));
            }
            out
        }
        OperatorKind::ComplexDiagonal => {
            let mut out = Matrix::zeros(input.rows(), d);
            for i in 0..input.rows() {
                complex_hadamard(input.row(i), params, out.row_mut(i));
            }
            out
        }
        OperatorKind::Linear => {
            // params is A (d×d, row-major); row-vector form: out = x · Aᵀ
            let a = Matrix::from_vec(d, d, params.to_vec());
            input.matmul_nt(&a)
        }
    }
}

/// Backpropagates through the operator: given `input` (`C × d`) and the
/// loss gradient w.r.t. the operator output (`C × d`), returns the
/// gradient w.r.t. `input` and w.r.t. the parameters.
///
/// # Panics
///
/// Panics if shapes are inconsistent with `op`.
pub fn backward(
    op: OperatorKind,
    params: &[f32],
    input: &Matrix,
    grad_out: &Matrix,
) -> (Matrix, Vec<f32>) {
    let d = input.cols();
    assert_eq!(grad_out.rows(), input.rows(), "backward: row mismatch");
    assert_eq!(grad_out.cols(), d, "backward: col mismatch");
    assert_eq!(params.len(), op.param_count(d), "backward: param mismatch");
    match op {
        OperatorKind::Identity => (grad_out.clone(), Vec::new()),
        OperatorKind::Translation => {
            // out = x + θ: grad_x = grad_out, grad_θ = Σ_rows grad_out
            let mut grad_params = vec![0.0; d];
            for i in 0..grad_out.rows() {
                pbg_tensor::vecmath::axpy(1.0, grad_out.row(i), &mut grad_params);
            }
            (grad_out.clone(), grad_params)
        }
        OperatorKind::Diagonal => {
            // out = x ⊙ θ: grad_x = g ⊙ θ, grad_θ = Σ g ⊙ x
            let mut grad_in = Matrix::zeros(input.rows(), d);
            let mut grad_params = vec![0.0; d];
            let mut tmp = vec![0.0; d];
            for i in 0..input.rows() {
                pbg_tensor::vecmath::hadamard(grad_out.row(i), params, grad_in.row_mut(i));
                pbg_tensor::vecmath::hadamard(grad_out.row(i), input.row(i), &mut tmp);
                pbg_tensor::vecmath::axpy(1.0, &tmp, &mut grad_params);
            }
            (grad_in, grad_params)
        }
        OperatorKind::ComplexDiagonal => {
            // out = x ⊙c θ: grad_x = g ⊙c conj(θ), grad_θ = Σ g ⊙c conj(x)
            let mut grad_in = Matrix::zeros(input.rows(), d);
            let mut grad_params = vec![0.0; d];
            let mut tmp = vec![0.0; d];
            for i in 0..input.rows() {
                complex_hadamard_conj(grad_out.row(i), params, grad_in.row_mut(i));
                complex_hadamard_conj(grad_out.row(i), input.row(i), &mut tmp);
                pbg_tensor::vecmath::axpy(1.0, &tmp, &mut grad_params);
            }
            (grad_in, grad_params)
        }
        OperatorKind::Linear => {
            // out = x · Aᵀ: grad_x = g · A, grad_A = gᵀ · x
            let a = Matrix::from_vec(d, d, params.to_vec());
            let grad_in = grad_out.matmul(&a);
            let grad_a = grad_out.transpose().matmul(input);
            (grad_in, grad_a.into_vec())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbg_tensor::rng::Xoshiro256;

    const OPS: [OperatorKind; 5] = [
        OperatorKind::Identity,
        OperatorKind::Translation,
        OperatorKind::Diagonal,
        OperatorKind::ComplexDiagonal,
        OperatorKind::Linear,
    ];

    fn random_matrix(rows: usize, cols: usize, rng: &mut Xoshiro256) -> Matrix {
        let mut m = Matrix::zeros(rows, cols);
        m.fill_with(|_, _| rng.gen_normal() * 0.5);
        m
    }

    fn random_params(op: OperatorKind, dim: usize, rng: &mut Xoshiro256) -> Vec<f32> {
        (0..op.param_count(dim))
            .map(|_| rng.gen_normal() * 0.5)
            .collect()
    }

    /// Scalar objective for gradient checking: sum of (out ⊙ probe).
    fn objective(op: OperatorKind, params: &[f32], input: &Matrix, probe: &Matrix) -> f64 {
        let out = apply(op, params, input);
        let mut total = 0.0f64;
        for i in 0..out.rows() {
            total += pbg_tensor::vecmath::dot(out.row(i), probe.row(i)) as f64;
        }
        total
    }

    #[test]
    fn identity_init_is_noop_for_all_ops() {
        let mut rng = Xoshiro256::seed_from_u64(1);
        let x = random_matrix(3, 4, &mut rng);
        for op in OPS {
            let params = init_params(op, 4);
            let out = apply(op, &params, &x);
            for i in 0..3 {
                for j in 0..4 {
                    assert!(
                        (out.row(i)[j] - x.row(i)[j]).abs() < 1e-6,
                        "{op} init is not identity"
                    );
                }
            }
        }
    }

    #[test]
    fn input_gradients_match_finite_differences() {
        let mut rng = Xoshiro256::seed_from_u64(2);
        for op in OPS {
            let x = random_matrix(3, 4, &mut rng);
            let params = random_params(op, 4, &mut rng);
            let probe = random_matrix(3, 4, &mut rng);
            let (grad_in, _) = backward(op, &params, &x, &probe);
            let eps = 1e-3f32;
            for i in 0..3 {
                for j in 0..4 {
                    let mut xp = x.clone();
                    xp.row_mut(i)[j] += eps;
                    let mut xm = x.clone();
                    xm.row_mut(i)[j] -= eps;
                    let fd = (objective(op, &params, &xp, &probe)
                        - objective(op, &params, &xm, &probe))
                        / (2.0 * eps as f64);
                    let an = grad_in.row(i)[j] as f64;
                    assert!(
                        (fd - an).abs() < 1e-2 * (1.0 + an.abs()),
                        "{op} grad_in[{i}][{j}]: fd={fd} analytic={an}"
                    );
                }
            }
        }
    }

    #[test]
    fn param_gradients_match_finite_differences() {
        let mut rng = Xoshiro256::seed_from_u64(3);
        for op in OPS {
            let n_params = op.param_count(4);
            if n_params == 0 {
                continue;
            }
            let x = random_matrix(3, 4, &mut rng);
            let params = random_params(op, 4, &mut rng);
            let probe = random_matrix(3, 4, &mut rng);
            let (_, grad_params) = backward(op, &params, &x, &probe);
            assert_eq!(grad_params.len(), n_params);
            let eps = 1e-3f32;
            for k in 0..n_params {
                let mut pp = params.clone();
                pp[k] += eps;
                let mut pm = params.clone();
                pm[k] -= eps;
                let fd = (objective(op, &pp, &x, &probe) - objective(op, &pm, &x, &probe))
                    / (2.0 * eps as f64);
                let an = grad_params[k] as f64;
                assert!(
                    (fd - an).abs() < 1e-2 * (1.0 + an.abs()),
                    "{op} grad_params[{k}]: fd={fd} analytic={an}"
                );
            }
        }
    }

    #[test]
    fn translation_shifts_rows() {
        let x = Matrix::from_rows(&[&[1.0, 2.0]]);
        let out = apply(OperatorKind::Translation, &[10.0, 20.0], &x);
        assert_eq!(out.row(0), &[11.0, 22.0]);
    }

    #[test]
    fn linear_applies_matrix() {
        // A = [[0, 1], [1, 0]] swaps coordinates (A x in column form)
        let x = Matrix::from_rows(&[&[3.0, 4.0]]);
        let out = apply(OperatorKind::Linear, &[0.0, 1.0, 1.0, 0.0], &x);
        assert_eq!(out.row(0), &[4.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "params")]
    fn wrong_param_count_panics() {
        let x = Matrix::zeros(1, 4);
        let _ = apply(OperatorKind::Translation, &[0.0; 3], &x);
    }

    #[test]
    #[should_panic(expected = "even dim")]
    fn complex_odd_dim_panics() {
        let _ = init_params(OperatorKind::ComplexDiagonal, 5);
    }
}
