//! The multi-relation embedding model: relation parameters and trained
//! snapshots.
//!
//! A model pairs the schema's relation types with live, shared operator
//! parameters ([`RelationParams`]) updated HOGWILD-style, and optional
//! *reciprocal* parameters used when ranking corrupted sources (§5.4.1's
//! "separate relation embeddings for source negatives and destination
//! negatives"). Entity embeddings live in a
//! [`crate::storage::PartitionStore`], not here — that separation is what
//! lets the same model run in-memory, disk-swapped, or distributed.

use crate::config::PbgConfig;
use crate::error::{PbgError, Result};
use crate::operator;
use crate::optimizer::HogwildAdagradDense;
use crate::similarity::score_pairs;
use crate::storage::{PartitionStore, StoreLayout};
use pbg_graph::ids::RelationTypeId;
use pbg_graph::schema::{GraphSchema, OperatorKind};
use pbg_tensor::matrix::Matrix;

/// Live (shared, lock-free) parameters of one relation type.
#[derive(Debug)]
pub struct RelationParams {
    op: OperatorKind,
    weight: f32,
    /// Operator parameters applied to the source embedding.
    pub forward: HogwildAdagradDense,
    /// Reciprocal parameters (applied to the destination embedding when
    /// ranking corrupted sources); `None` unless
    /// [`PbgConfig::reciprocal_relations`] is set.
    pub reciprocal: Option<HogwildAdagradDense>,
}

impl RelationParams {
    /// The relation operator.
    pub fn op(&self) -> OperatorKind {
        self.op
    }

    /// The per-relation edge weight.
    pub fn weight(&self) -> f32 {
        self.weight
    }
}

/// A multi-relation embedding model (relation side only; see module docs).
#[derive(Debug)]
pub struct Model {
    config: PbgConfig,
    schema: GraphSchema,
    relations: Vec<RelationParams>,
}

impl Model {
    /// Builds a model, validating config/schema compatibility.
    ///
    /// # Errors
    ///
    /// Returns [`PbgError::Config`] when a relation uses the complex
    /// operator with an odd embedding dimension, or when the config
    /// itself is invalid.
    pub fn new(schema: GraphSchema, config: PbgConfig) -> Result<Self> {
        config.validate()?;
        for r in schema.relation_types() {
            if r.operator() == OperatorKind::ComplexDiagonal && !config.dim.is_multiple_of(2) {
                return Err(PbgError::Config(format!(
                    "relation `{}` uses the complex operator; dim must be even, got {}",
                    r.name(),
                    config.dim
                )));
            }
        }
        let relations = schema
            .relation_types()
            .iter()
            .map(|r| {
                let init = operator::init_params(r.operator(), config.dim);
                RelationParams {
                    op: r.operator(),
                    weight: r.weight(),
                    forward: HogwildAdagradDense::new(init.clone(), config.learning_rate),
                    reciprocal: config
                        .reciprocal_relations
                        .then(|| HogwildAdagradDense::new(init, config.learning_rate)),
                }
            })
            .collect();
        Ok(Model {
            config,
            schema,
            relations,
        })
    }

    /// The training configuration.
    pub fn config(&self) -> &PbgConfig {
        &self.config
    }

    /// The graph schema.
    pub fn schema(&self) -> &GraphSchema {
        &self.schema
    }

    /// Live parameters of relation `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn relation(&self, r: RelationTypeId) -> &RelationParams {
        &self.relations[r.index()]
    }

    /// Number of relation types.
    pub fn num_relations(&self) -> usize {
        self.relations.len()
    }

    /// Total bytes of relation parameters + their optimizer state.
    pub fn relation_bytes(&self) -> usize {
        self.relations
            .iter()
            .map(|r| r.forward.bytes() + r.reciprocal.as_ref().map_or(0, |p| p.bytes()))
            .sum()
    }

    /// The storage layout implied by this model's schema and config,
    /// including the configured swap precision.
    pub fn store_layout(&self) -> StoreLayout {
        StoreLayout::from_schema(
            &self.schema,
            self.config.dim,
            self.config.learning_rate,
            self.config.init_scale,
            self.config.seed,
        )
        .with_precision(self.config.precision)
    }

    /// Snapshots the full model (entity embeddings gathered from `store`
    /// into dense per-type matrices, plus relation parameters) for
    /// evaluation or checkpointing.
    ///
    /// Partitions are streamed one at a time (load, copy, release) so a
    /// disk-swapped or remote store's peak-memory accounting reflects
    /// training, not the snapshot.
    pub fn snapshot(&self, store: &dyn PartitionStore) -> TrainedEmbeddings {
        let dim = self.config.dim;
        let mut embeddings = Vec::new();
        for (t, def) in self.schema.entity_types().iter().enumerate() {
            let partitioning = pbg_graph::partition::EntityPartitioning::new(
                def.num_entities(),
                def.num_partitions(),
            );
            let mut m = Matrix::zeros(def.num_entities() as usize, dim);
            for p in partitioning.partitions() {
                let key = crate::storage::PartitionKey::new(t as u32, p);
                let data = store.load(key);
                let size = partitioning.partition_size(p);
                let mut buf = vec![0.0f32; dim];
                for off in 0..size {
                    data.embeddings.read_row_into(off as usize, &mut buf);
                    let global = partitioning.global_of(p, off);
                    m.row_mut(global.index()).copy_from_slice(&buf);
                }
                drop(data);
                store.release(key);
            }
            embeddings.push(m);
        }
        let relations = self
            .relations
            .iter()
            .map(|r| RelationSnapshot {
                op: r.op,
                weight: r.weight,
                forward: r.forward.snapshot(),
                reciprocal: r.reciprocal.as_ref().map(|p| p.snapshot()),
            })
            .collect();
        TrainedEmbeddings {
            dim,
            similarity: self.config.similarity,
            schema: self.schema.clone(),
            embeddings,
            relations,
        }
    }

    /// Restores a trained snapshot into this model and `store` — the
    /// inverse of [`Model::snapshot`], used by checkpoint resume. Entity
    /// embeddings are scattered back to their partitions one at a time
    /// (load, overwrite, release); relation parameters overwrite the live
    /// values. Adagrad accumulators are not part of the snapshot format
    /// and keep whatever values they currently have.
    ///
    /// # Errors
    ///
    /// Returns [`PbgError::Checkpoint`] when the snapshot's schema or
    /// shapes disagree with this model.
    pub fn restore(&self, snap: &TrainedEmbeddings, store: &dyn PartitionStore) -> Result<()> {
        if snap.schema != self.schema {
            return Err(PbgError::Checkpoint(
                "checkpoint schema does not match the model schema".into(),
            ));
        }
        if snap.dim != self.config.dim {
            return Err(PbgError::Checkpoint(format!(
                "checkpoint dim {} != config dim {}",
                snap.dim, self.config.dim
            )));
        }
        if snap.relations.len() != self.relations.len() {
            return Err(PbgError::Checkpoint(format!(
                "checkpoint has {} relations, model has {}",
                snap.relations.len(),
                self.relations.len()
            )));
        }
        for (t, def) in self.schema.entity_types().iter().enumerate() {
            let m = &snap.embeddings[t];
            if m.rows() != def.num_entities() as usize || m.cols() != snap.dim {
                return Err(PbgError::Checkpoint(format!(
                    "checkpoint embeddings for type {t} are {}x{}, expected {}x{}",
                    m.rows(),
                    m.cols(),
                    def.num_entities(),
                    snap.dim
                )));
            }
            let partitioning = pbg_graph::partition::EntityPartitioning::new(
                def.num_entities(),
                def.num_partitions(),
            );
            for p in partitioning.partitions() {
                let key = crate::storage::PartitionKey::new(t as u32, p);
                let data = store.load(key);
                for off in 0..partitioning.partition_size(p) {
                    let global = partitioning.global_of(p, off);
                    data.embeddings
                        .write_row(off as usize, m.row(global.index()));
                }
                drop(data);
                store.mark_dirty(key);
                store.release(key);
            }
        }
        for (r, rs) in self.relations.iter().zip(&snap.relations) {
            if rs.forward.len() != r.forward.len() {
                return Err(PbgError::Checkpoint(
                    "relation parameter length mismatch".into(),
                ));
            }
            r.forward
                .restore(&rs.forward, &r.forward.accumulator_snapshot());
            match (&r.reciprocal, &rs.reciprocal) {
                (Some(live), Some(saved)) => {
                    if saved.len() != live.len() {
                        return Err(PbgError::Checkpoint(
                            "reciprocal parameter length mismatch".into(),
                        ));
                    }
                    live.restore(saved, &live.accumulator_snapshot());
                }
                (None, None) => {}
                _ => {
                    return Err(PbgError::Checkpoint(
                        "reciprocal parameter presence mismatch".into(),
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Immutable snapshot of one relation's parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct RelationSnapshot {
    /// Operator kind.
    pub op: OperatorKind,
    /// Edge weight.
    pub weight: f32,
    /// Forward operator parameters.
    pub forward: Vec<f32>,
    /// Reciprocal parameters, when trained.
    pub reciprocal: Option<Vec<f32>>,
}

/// A fully materialized trained model: dense embeddings per entity type
/// plus relation parameters. This is what evaluation and downstream tasks
/// consume.
#[derive(Debug, Clone)]
pub struct TrainedEmbeddings {
    /// Embedding dimension.
    pub dim: usize,
    /// Similarity the model was trained with (used for scoring).
    pub similarity: crate::config::SimilarityKind,
    /// The schema.
    pub schema: GraphSchema,
    /// One `num_entities × dim` matrix per entity type, global-id indexed.
    pub embeddings: Vec<Matrix>,
    /// Relation parameter snapshots.
    pub relations: Vec<RelationSnapshot>,
}

impl TrainedEmbeddings {
    /// The embedding of entity `id` of type `entity_type`.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    pub fn embedding(&self, entity_type: usize, id: u32) -> &[f32] {
        self.embeddings[entity_type].row(id as usize)
    }

    /// Scores the edge `(src, rel, dst)` exactly as training does:
    /// `sim(g(θ_src, θ_rel), θ_dst)`.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    pub fn score(&self, src: u32, rel: RelationTypeId, dst: u32) -> f32 {
        let r = &self.relations[rel.index()];
        let rdef = self.schema.relation_type(rel);
        let src_emb = self.embedding(rdef.source_type().index(), src);
        let dst_emb = self.embedding(rdef.dest_type().index(), dst);
        let src_m = Matrix::from_rows(&[src_emb]);
        let transformed = operator::apply(r.op, &r.forward, &src_m);
        let dst_m = Matrix::from_rows(&[dst_emb]);
        score_pairs(self.similarity, &transformed, &dst_m)[0]
    }

    /// Scores one source against many destination candidates as a batch
    /// (the evaluation hot path).
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    pub fn score_against_destinations(
        &self,
        src: u32,
        rel: RelationTypeId,
        dst_candidates: &[u32],
    ) -> Vec<f32> {
        let r = &self.relations[rel.index()];
        let rdef = self.schema.relation_type(rel);
        let src_m = Matrix::from_rows(&[self.embedding(rdef.source_type().index(), src)]);
        let transformed = operator::apply(r.op, &r.forward, &src_m);
        let dst_type = rdef.dest_type().index();
        let mut cands = Matrix::zeros(dst_candidates.len(), self.dim);
        for (i, &d) in dst_candidates.iter().enumerate() {
            cands
                .row_mut(i)
                .copy_from_slice(self.embedding(dst_type, d));
        }
        crate::similarity::score_matrix(self.similarity, &transformed, &cands)
            .row(0)
            .to_vec()
    }

    /// Scores one destination against many source candidates. Uses the
    /// reciprocal parameters when present (matching training), otherwise
    /// transforms every candidate source.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    pub fn score_against_sources(
        &self,
        dst: u32,
        rel: RelationTypeId,
        src_candidates: &[u32],
    ) -> Vec<f32> {
        let r = &self.relations[rel.index()];
        let rdef = self.schema.relation_type(rel);
        let src_type = rdef.source_type().index();
        let mut cands = Matrix::zeros(src_candidates.len(), self.dim);
        for (i, &s) in src_candidates.iter().enumerate() {
            cands
                .row_mut(i)
                .copy_from_slice(self.embedding(src_type, s));
        }
        let dst_m = Matrix::from_rows(&[self.embedding(rdef.dest_type().index(), dst)]);
        if let Some(recip) = &r.reciprocal {
            let transformed_dst = operator::apply(r.op, recip, &dst_m);
            crate::similarity::score_matrix(self.similarity, &transformed_dst, &cands)
                .row(0)
                .to_vec()
        } else {
            let transformed_cands = operator::apply(r.op, &r.forward, &cands);
            crate::similarity::score_matrix(self.similarity, &dst_m, &transformed_cands)
                .row(0)
                .to_vec()
        }
    }

    /// Total bytes of the dense snapshot.
    pub fn bytes(&self) -> usize {
        let emb: usize = self.embeddings.iter().map(|m| m.as_slice().len() * 4).sum();
        let rel: usize = self
            .relations
            .iter()
            .map(|r| (r.forward.len() + r.reciprocal.as_ref().map_or(0, |p| p.len())) * 4)
            .sum();
        emb + rel
    }
}

/// A trained model served straight from a memory-mapped checkpoint:
/// relation parameters and schema on the heap, embedding rows read in
/// place from [`crate::storage::MmapPartition`] shards. The scoring API
/// mirrors [`TrainedEmbeddings`] and routes through the same kernels,
/// so a served score is bit-identical to the offline one.
#[derive(Debug)]
pub struct MmapEmbeddings {
    /// Embedding dimension.
    pub dim: usize,
    /// Similarity the model was trained with.
    pub similarity: crate::config::SimilarityKind,
    /// The schema.
    pub schema: GraphSchema,
    /// One mapped shard per entity type, global-id indexed.
    pub shards: Vec<crate::storage::MmapPartition>,
    /// Relation parameter snapshots.
    pub relations: Vec<RelationSnapshot>,
}

impl MmapEmbeddings {
    /// The embedding of entity `id` of type `entity_type`: borrowed
    /// zero-copy from the mapping for f32 shards, decoded to an owned
    /// f32 row for quantized shards.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    pub fn embedding(&self, entity_type: usize, id: u32) -> std::borrow::Cow<'_, [f32]> {
        self.shards[entity_type].row(id as usize)
    }

    /// The operator-transformed query row `g(θ_src, θ_rel)` (one `dim`
    /// vector on the heap — the only per-request allocation).
    fn transformed_query(&self, src: u32, rel: RelationTypeId) -> Matrix {
        let r = &self.relations[rel.index()];
        let rdef = self.schema.relation_type(rel);
        let src_row = self.embedding(rdef.source_type().index(), src);
        let src_m = Matrix::from_rows(&[&src_row]);
        operator::apply(r.op, &r.forward, &src_m)
    }

    /// Scores the edge `(src, rel, dst)` through the batched path.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    pub fn score(&self, src: u32, rel: RelationTypeId, dst: u32) -> f32 {
        self.score_against_destinations(src, rel, &[dst])[0]
    }

    /// Scores one source against the given destination candidates
    /// (gathers only the requested rows; identical float path to
    /// [`TrainedEmbeddings::score_against_destinations`]).
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    pub fn score_against_destinations(
        &self,
        src: u32,
        rel: RelationTypeId,
        dst_candidates: &[u32],
    ) -> Vec<f32> {
        let transformed = self.transformed_query(src, rel);
        let dst_type = self.schema.relation_type(rel).dest_type().index();
        let mut cands = Matrix::zeros(dst_candidates.len(), self.dim);
        for (i, &d) in dst_candidates.iter().enumerate() {
            cands
                .row_mut(i)
                .copy_from_slice(&self.embedding(dst_type, d));
        }
        crate::similarity::score_matrix(self.similarity, &transformed, &cands)
            .row(0)
            .to_vec()
    }

    /// The `k` best destinations for `(src, rel)` over the *entire*
    /// destination shard, streamed block-by-block through the score-only
    /// top-k kernel — the shard is scored in place, never copied, and
    /// only a k-entry heap is kept. Ties resolve to the lower entity id,
    /// matching the offline argmax.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    pub fn top_destinations(&self, src: u32, rel: RelationTypeId, k: usize) -> Vec<(u32, f32)> {
        use pbg_tensor::topk;
        let transformed = self.transformed_query(src, rel);
        let shard = &self.shards[self.schema.relation_type(rel).dest_type().index()];
        let mut acc = topk::TopK::new(k);
        let cosine_q = match self.similarity {
            crate::config::SimilarityKind::Dot => None,
            crate::config::SimilarityKind::Cosine => {
                let mut q = transformed.row(0).to_vec();
                pbg_tensor::vecmath::normalize(&mut q);
                Some(q)
            }
        };
        let score_block = |block: &[f32], base: usize, acc: &mut topk::TopK| match &cosine_q {
            None => topk::accumulate_dot(transformed.row(0), block, self.dim, base, acc),
            Some(q) => topk::accumulate_cosine(q, block, self.dim, base, acc),
        };
        if shard.precision() == pbg_tensor::Precision::F32 {
            score_block(shard.payload().expect("f32 shard payload"), 0, &mut acc);
        } else {
            // quantized shard: decode fixed-size row blocks into one
            // scratch buffer and stream them through the same kernel,
            // so only `QUANT_SCAN_ROWS × dim` floats are ever live
            const QUANT_SCAN_ROWS: usize = 256;
            let mut scratch = vec![0.0f32; QUANT_SCAN_ROWS.min(shard.rows().max(1)) * self.dim];
            let mut base = 0;
            while base < shard.rows() {
                let n = QUANT_SCAN_ROWS.min(shard.rows() - base);
                shard.decode_rows_into(base, n, &mut scratch[..n * self.dim]);
                score_block(&scratch[..n * self.dim], base, &mut acc);
                base += n;
            }
        }
        acc.into_sorted()
            .into_iter()
            .map(|s| (s.index as u32, s.score))
            .collect()
    }

    /// Total bytes of mapped shard files (resident only as far as the
    /// page cache decides) — the number `/healthz` reports.
    pub fn mapped_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.mapped_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimilarityKind;
    use crate::storage::InMemoryStore;
    use pbg_graph::schema::{EntityTypeDef, RelationTypeDef};

    fn schema(op: OperatorKind) -> GraphSchema {
        GraphSchema::builder()
            .entity_type(EntityTypeDef::new("node", 20).with_partitions(2))
            .relation_type(RelationTypeDef::new("r", 0u32, 0u32).with_operator(op))
            .build()
            .unwrap()
    }

    fn config(dim: usize) -> PbgConfig {
        PbgConfig::builder()
            .dim(dim)
            .batch_size(8)
            .chunk_size(4)
            .build()
            .unwrap()
    }

    #[test]
    fn model_builds_and_exposes_relations() {
        let m = Model::new(schema(OperatorKind::Translation), config(8)).unwrap();
        assert_eq!(m.num_relations(), 1);
        assert_eq!(
            m.relation(RelationTypeId(0)).op(),
            OperatorKind::Translation
        );
        assert_eq!(m.relation(RelationTypeId(0)).forward.len(), 8);
        assert!(m.relation(RelationTypeId(0)).reciprocal.is_none());
    }

    #[test]
    fn complex_odd_dim_rejected() {
        let err = Model::new(schema(OperatorKind::ComplexDiagonal), config(7)).unwrap_err();
        assert!(matches!(err, PbgError::Config(_)));
    }

    #[test]
    fn reciprocal_params_created_when_configured() {
        let cfg = PbgConfig::builder()
            .dim(8)
            .batch_size(8)
            .chunk_size(4)
            .reciprocal_relations(true)
            .build()
            .unwrap();
        let m = Model::new(schema(OperatorKind::Diagonal), cfg).unwrap();
        assert!(m.relation(RelationTypeId(0)).reciprocal.is_some());
    }

    #[test]
    fn snapshot_gathers_partitions_by_global_id() {
        let m = Model::new(schema(OperatorKind::Identity), config(4)).unwrap();
        let store = InMemoryStore::new(m.store_layout());
        // mark entity 7 (partition 1, offset 3 under id%2 mapping)
        let key = crate::storage::PartitionKey::new(0u32, 1u32);
        let data = store.load(key);
        data.embeddings.write_row(3, &[1.0, 2.0, 3.0, 4.0]);
        let snap = m.snapshot(&store);
        assert_eq!(snap.embedding(0, 7), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn score_matches_batched_scores() {
        let m = Model::new(schema(OperatorKind::Translation), config(4)).unwrap();
        let store = InMemoryStore::new(m.store_layout());
        let snap = m.snapshot(&store);
        let single = snap.score(1, RelationTypeId(0), 5);
        let batch = snap.score_against_destinations(1, RelationTypeId(0), &[4, 5, 6]);
        assert!((single - batch[1]).abs() < 1e-5);
        let batch_src = snap.score_against_sources(5, RelationTypeId(0), &[0, 1]);
        assert!((single - batch_src[1]).abs() < 1e-5);
    }

    #[test]
    fn cosine_scores_are_bounded_in_snapshot() {
        let cfg = PbgConfig::builder()
            .dim(4)
            .batch_size(8)
            .chunk_size(4)
            .similarity(SimilarityKind::Cosine)
            .build()
            .unwrap();
        let m = Model::new(schema(OperatorKind::Identity), cfg).unwrap();
        let store = InMemoryStore::new(m.store_layout());
        let snap = m.snapshot(&store);
        for d in 0..20u32 {
            assert!(snap.score(0, RelationTypeId(0), d).abs() <= 1.0 + 1e-5);
        }
    }

    #[test]
    fn snapshot_bytes_accounting() {
        let m = Model::new(schema(OperatorKind::Translation), config(4)).unwrap();
        let store = InMemoryStore::new(m.store_layout());
        let snap = m.snapshot(&store);
        // 20 entities * 4 dims * 4 bytes + 4 relation params * 4 bytes
        assert_eq!(snap.bytes(), 20 * 4 * 4 + 4 * 4);
    }
}
