//! Named dataset presets matching the paper's evaluation graphs.
//!
//! Each `*_like` function generates a scaled stand-in for one paper
//! dataset. `scale` multiplies the paper's node and edge counts (use
//! `scale = 1.0` only if you have the paper's hardware and hours); the
//! experiment harness defaults to scales that run in minutes on a laptop
//! while preserving the node/edge ratio and structure.

use crate::community::CommunityModel;
use crate::knowledge::KnowledgeGraphConfig;
use crate::labels::Labels;
use crate::social::SocialGraphConfig;
use pbg_graph::edges::EdgeList;
use pbg_graph::schema::{GraphSchema, OperatorKind};
use pbg_tensor::rng::Xoshiro256;

/// A generated dataset: schema (1 partition; repartition as needed),
/// edges, the generating community model, and optional labels.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Human-readable name, e.g. `"livejournal_like(0.001)"`.
    pub name: String,
    /// Schema with a single partition; use
    /// [`Dataset::schema_with_partitions`] for partitioned variants.
    pub schema: GraphSchema,
    /// All edges (split downstream).
    pub edges: EdgeList,
    /// Community ground truth (for labels / diagnostics).
    pub communities: CommunityModel,
    /// Node labels (present for the YouTube-like preset).
    pub labels: Option<Labels>,
    /// Operator used when re-deriving schemas.
    operator: OperatorKind,
    num_relations: u32,
}

impl Dataset {
    /// Rebuilds the schema with `p` partitions.
    ///
    /// # Panics
    ///
    /// Panics if `p == 0`.
    pub fn schema_with_partitions(&self, p: u32) -> GraphSchema {
        assert!(p > 0, "partitions must be positive");
        if self.num_relations == 1 && self.operator == OperatorKind::Identity {
            GraphSchema::homogeneous(self.schema.total_entities() as u32, p)
                .expect("homogeneous schema is valid")
        } else {
            KnowledgeGraphConfig {
                num_entities: self.schema.total_entities() as u32,
                num_relations: self.num_relations,
                operator: self.operator,
                ..Default::default()
            }
            .schema(p)
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> u32 {
        self.schema.total_entities() as u32
    }
}

fn scaled(base: u64, scale: f64) -> u64 {
    ((base as f64 * scale).round() as u64).max(16)
}

/// LiveJournal stand-in (§5.2): paper size 4,847,571 nodes /
/// 68,993,773 edges, single "follow" relation, strong communities.
pub fn livejournal_like(scale: f64, seed: u64) -> Dataset {
    social_preset("livejournal_like", 4_847_571, 68_993_773, 0.8, scale, seed)
}

/// Twitter stand-in (§5.5): paper size 41,652,230 nodes /
/// 1,468,365,182 edges, single "follow" relation, weaker communities and
/// heavier tail than LiveJournal.
pub fn twitter_like(scale: f64, seed: u64) -> Dataset {
    let num_nodes = scaled(41_652_230, scale) as u32;
    let num_edges = scaled(1_468_365_182, scale) as usize;
    let cfg = SocialGraphConfig {
        num_nodes,
        num_edges,
        num_communities: community_count(num_nodes),
        intra_prob: 0.7,
        zipf_exponent: 1.15,
        seed,
    };
    let (edges, communities) = cfg.generate();
    Dataset {
        name: format!("twitter_like({scale})"),
        schema: cfg.schema(1),
        edges,
        communities,
        labels: None,
        operator: OperatorKind::Identity,
        num_relations: 1,
    }
}

/// YouTube stand-in (§5.3): paper size 1,138,499 nodes / 2,990,443 edges
/// plus multi-label group subscriptions for ~3% of users.
pub fn youtube_like(scale: f64, seed: u64) -> Dataset {
    let mut d = social_preset("youtube_like", 1_138_499, 2_990_443, 0.85, scale, seed);
    let mut rng = Xoshiro256::seed_from_u64(seed ^ 0x9e37_79b9);
    // the real dataset labels ~31k of 1.1M users with 47 groups; we label
    // a larger fraction so scaled-down runs still have enough train data
    d.labels = Some(Labels::from_communities(
        &d.communities,
        0.3,
        0.05,
        &mut rng,
    ));
    d
}

/// FB15k stand-in (§5.4.1): 14,951 entities, 1,345 relations,
/// 592,213 edges. `scale` is normally 1.0 — FB15k already fits anywhere.
/// Communities are fine-grained (~25 entities each): FB15k's entities
/// carry thousands of distinct types, much sharper structure than a
/// social graph.
pub fn fb15k_like(scale: f64, seed: u64) -> Dataset {
    knowledge_preset_with(
        "fb15k_like",
        14_951,
        1_345,
        592_213,
        OperatorKind::ComplexDiagonal,
        scale,
        seed,
        |entities| ((entities / 25).clamp(8, 1024)) as u16,
        0.92,
    )
}

/// Full-Freebase stand-in (§5.4.2): 121,216,723 entities, 25,291
/// relations, 2,725,070,599 edges.
pub fn freebase_like(scale: f64, seed: u64) -> Dataset {
    knowledge_preset(
        "freebase_like",
        121_216_723,
        25_291,
        2_725_070_599,
        OperatorKind::Translation,
        scale,
        seed,
    )
}

fn social_preset(
    name: &str,
    base_nodes: u64,
    base_edges: u64,
    intra_prob: f64,
    scale: f64,
    seed: u64,
) -> Dataset {
    let num_nodes = scaled(base_nodes, scale) as u32;
    let num_edges = scaled(base_edges, scale) as usize;
    let cfg = SocialGraphConfig {
        num_nodes,
        num_edges,
        num_communities: community_count(num_nodes),
        intra_prob,
        zipf_exponent: 1.0,
        seed,
    };
    let (edges, communities) = cfg.generate();
    Dataset {
        name: format!("{name}({scale})"),
        schema: cfg.schema(1),
        edges,
        communities,
        labels: None,
        operator: OperatorKind::Identity,
        num_relations: 1,
    }
}

fn knowledge_preset(
    name: &str,
    base_entities: u64,
    base_relations: u64,
    base_edges: u64,
    operator: OperatorKind,
    scale: f64,
    seed: u64,
) -> Dataset {
    knowledge_preset_with(
        name,
        base_entities,
        base_relations,
        base_edges,
        operator,
        scale,
        seed,
        community_count,
        0.85,
    )
}

#[allow(clippy::too_many_arguments)]
fn knowledge_preset_with(
    name: &str,
    base_entities: u64,
    base_relations: u64,
    base_edges: u64,
    operator: OperatorKind,
    scale: f64,
    seed: u64,
    communities: impl Fn(u32) -> u16,
    intra_prob: f64,
) -> Dataset {
    let num_entities = scaled(base_entities, scale) as u32;
    // relations shrink slower than entities: even tiny Freebase samples
    // keep many relation types
    let num_relations = (scaled(base_relations, scale.sqrt()) as u32).clamp(4, 2_000);
    let num_edges = scaled(base_edges, scale) as usize;
    let cfg = KnowledgeGraphConfig {
        num_entities,
        num_relations,
        num_edges,
        num_communities: communities(num_entities),
        intra_prob,
        zipf_exponent: 0.9,
        relation_skew: 1.0,
        identity_map_prob: 0.7,
        operator,
        seed,
    };
    let (edges, communities) = cfg.generate();
    Dataset {
        name: format!("{name}({scale})"),
        schema: cfg.schema(1),
        edges,
        communities,
        labels: None,
        operator,
        num_relations,
    }
}

/// Community count heuristic: about sqrt(n)/2, clamped to [8, 256].
fn community_count(num_nodes: u32) -> u16 {
    (((num_nodes as f64).sqrt() / 2.0) as u16).clamp(8, 256)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn livejournal_preset_scales() {
        let d = livejournal_like(0.0005, 1);
        assert_eq!(d.num_nodes(), 2424, "4.85M * 0.0005");
        assert_eq!(d.edges.len(), 34_497, "69M * 0.0005");
        assert!(d.labels.is_none());
    }

    #[test]
    fn youtube_preset_has_labels() {
        let d = youtube_like(0.002, 1);
        let labels = d.labels.as_ref().unwrap();
        assert!(!labels.labeled_nodes().is_empty());
        assert_eq!(labels.num_nodes() as u32, d.num_nodes());
    }

    #[test]
    fn fb15k_preset_multi_relation() {
        let d = fb15k_like(0.05, 1);
        assert!(d.schema.num_relation_types() > 4);
        assert_eq!(
            d.schema.relation_type(0u32.into()).operator(),
            OperatorKind::ComplexDiagonal
        );
    }

    #[test]
    fn freebase_preset_keeps_relations_at_tiny_scale() {
        let d = freebase_like(0.00002, 1);
        assert!(d.num_nodes() > 1000);
        assert!(d.schema.num_relation_types() >= 4);
    }

    #[test]
    fn repartitioned_schema_same_totals() {
        let d = livejournal_like(0.0005, 1);
        let s8 = d.schema_with_partitions(8);
        assert_eq!(s8.num_partitions(), 8);
        assert_eq!(s8.total_entities(), d.schema.total_entities());
    }

    #[test]
    fn presets_deterministic() {
        let a = twitter_like(0.00002, 3);
        let b = twitter_like(0.00002, 3);
        assert_eq!(a.edges, b.edges);
    }
}
