//! Single-relation social-network generator (LiveJournal / Twitter /
//! YouTube stand-ins).
//!
//! Edges are drawn from the community model: a Zipf-popular source
//! connects within its community with probability `intra_prob`, otherwise
//! to a globally popular node. Self-loops are rejected; duplicate edges
//! are allowed at low rate (real follow graphs deduplicate, but PBG does
//! not care and dedup at generation scale is needless memory).

use crate::community::CommunityModel;
use pbg_graph::edges::{Edge, EdgeList};
use pbg_graph::schema::GraphSchema;
use pbg_tensor::rng::Xoshiro256;

/// Configuration for the social-network generator.
#[derive(Debug, Clone, PartialEq)]
pub struct SocialGraphConfig {
    /// Node count.
    pub num_nodes: u32,
    /// Edge count.
    pub num_edges: usize,
    /// Number of latent communities.
    pub num_communities: u16,
    /// Probability an edge stays inside the source's community.
    pub intra_prob: f64,
    /// Zipf exponent of the popularity distribution.
    pub zipf_exponent: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SocialGraphConfig {
    fn default() -> Self {
        SocialGraphConfig {
            num_nodes: 10_000,
            num_edges: 100_000,
            num_communities: 64,
            intra_prob: 0.8,
            zipf_exponent: 1.0,
            seed: 0,
        }
    }
}

impl SocialGraphConfig {
    /// Generates the edge list and its community model.
    ///
    /// # Panics
    ///
    /// Panics if `num_nodes < 2` or `intra_prob` is outside `[0, 1]`.
    pub fn generate(&self) -> (EdgeList, CommunityModel) {
        assert!(self.num_nodes >= 2, "need at least two nodes");
        assert!(
            (0.0..=1.0).contains(&self.intra_prob),
            "intra_prob must be a probability"
        );
        let mut rng = Xoshiro256::seed_from_u64(self.seed);
        let model = CommunityModel::new(
            self.num_nodes,
            self.num_communities,
            self.zipf_exponent,
            &mut rng,
        );
        let mut edges = EdgeList::with_capacity(self.num_edges);
        while edges.len() < self.num_edges {
            let src = model.sample_node(&mut rng);
            let dst = if rng.gen_f64() < self.intra_prob {
                model.sample_in_community(model.community_of(src), &mut rng)
            } else {
                model.sample_node(&mut rng)
            };
            if src == dst {
                continue;
            }
            edges.push(Edge::new(src, 0u32, dst));
        }
        (edges, model)
    }

    /// The single-entity-type schema for this graph with `p` partitions.
    ///
    /// # Panics
    ///
    /// Panics if `p == 0`.
    pub fn schema(&self, p: u32) -> GraphSchema {
        GraphSchema::homogeneous(self.num_nodes, p).expect("homogeneous schema is always valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_edge_count() {
        let cfg = SocialGraphConfig {
            num_nodes: 100,
            num_edges: 500,
            ..Default::default()
        };
        let (edges, _) = cfg.generate();
        assert_eq!(edges.len(), 500);
    }

    #[test]
    fn no_self_loops() {
        let cfg = SocialGraphConfig {
            num_nodes: 50,
            num_edges: 2000,
            ..Default::default()
        };
        let (edges, _) = cfg.generate();
        for e in edges.iter() {
            assert_ne!(e.src, e.dst);
        }
    }

    #[test]
    fn endpoints_in_range() {
        let cfg = SocialGraphConfig {
            num_nodes: 77,
            num_edges: 1000,
            ..Default::default()
        };
        let (edges, _) = cfg.generate();
        for e in edges.iter() {
            assert!(e.src.0 < 77 && e.dst.0 < 77);
            assert_eq!(e.rel.0, 0);
        }
    }

    #[test]
    fn mostly_intra_community_when_configured() {
        let cfg = SocialGraphConfig {
            num_nodes: 1000,
            num_edges: 10_000,
            intra_prob: 0.9,
            ..Default::default()
        };
        let (edges, model) = cfg.generate();
        let intra = edges
            .iter()
            .filter(|e| model.community_of(e.src.0) == model.community_of(e.dst.0))
            .count();
        // 0.9 intra + chance the random 0.1 lands in-community anyway
        assert!(
            intra as f64 > 0.85 * edges.len() as f64,
            "intra fraction {} too low",
            intra as f64 / edges.len() as f64
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = SocialGraphConfig {
            num_nodes: 60,
            num_edges: 300,
            seed: 9,
            ..Default::default()
        };
        let (a, _) = cfg.generate();
        let (b, _) = cfg.generate();
        assert_eq!(a, b);
    }

    #[test]
    fn degree_distribution_heavy_tailed() {
        let cfg = SocialGraphConfig {
            num_nodes: 5000,
            num_edges: 50_000,
            ..Default::default()
        };
        let (edges, _) = cfg.generate();
        let deg = edges.degree_counts(5000);
        let mut sorted: Vec<f32> = deg;
        sorted.sort_unstable_by(|a, b| b.partial_cmp(a).unwrap());
        let top: f32 = sorted[..50].iter().sum();
        let total: f32 = sorted.iter().sum();
        assert!(top / total > 0.15, "top-1% degree share {}", top / total);
    }

    #[test]
    fn schema_has_requested_partitions() {
        let cfg = SocialGraphConfig::default();
        assert_eq!(cfg.schema(8).num_partitions(), 8);
    }
}
