//! Synthetic dataset generators for `pbg-rs`.
//!
//! The PBG paper evaluates on LiveJournal, YouTube, Twitter, FB15k and the
//! full Freebase dump — datasets we cannot ship. This crate generates
//! synthetic graphs with the properties those experiments actually
//! exercise:
//!
//! - **heavy-tailed degree distributions** (Zipf popularity), which drive
//!   the data-prevalence negative sampling and the long-tail effects noted
//!   in §5.4.2 of the paper;
//! - **latent community structure** ([`community`]), so link prediction is
//!   *learnable* and MRR/Hits@K react to training quality the way they do
//!   on real graphs;
//! - **multi-relation structure with skewed relation frequencies**
//!   ([`knowledge`]), mapping communities through per-relation
//!   permutations so relation operators (translation, complex
//!   multiplication, …) have something to learn;
//! - **node labels** ([`labels`]) aligned with communities, for the
//!   YouTube-style downstream classification task (Table 1, right).
//!
//! [`presets`] packages these as `*_like` stand-ins for each paper dataset
//! at a configurable scale.
//!
//! # Example
//!
//! ```
//! use pbg_datagen::presets;
//!
//! let dataset = presets::livejournal_like(0.001, 7); // ~4.8k nodes
//! assert!(!dataset.edges.is_empty());
//! ```

pub mod community;
pub mod knowledge;
pub mod labels;
pub mod presets;
pub mod social;

pub use community::CommunityModel;
pub use knowledge::KnowledgeGraphConfig;
pub use labels::Labels;
pub use presets::Dataset;
pub use social::SocialGraphConfig;
