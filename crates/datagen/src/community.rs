//! Latent community structure shared by all generators.
//!
//! Nodes get (a) a Zipf popularity rank and (b) a community assignment.
//! Edges preferentially connect nodes whose communities match (possibly
//! through a per-relation community map). Embedding models can represent
//! both popularity (vector norm) and community (direction), which is what
//! makes link prediction on these graphs learnable — mirroring how real
//! social graphs mix degree and homophily.

use pbg_tensor::rng::Xoshiro256;
use pbg_tensor::zipf::Zipf;

/// Popularity + community model over `n` nodes.
#[derive(Debug, Clone)]
pub struct CommunityModel {
    /// `community[node] = community index`.
    community: Vec<u16>,
    /// Nodes of each community, ordered by increasing popularity rank
    /// (rank 0 = most popular) so Zipf draws stay heavy-tailed inside a
    /// community.
    members: Vec<Vec<u32>>,
    /// `rank_to_node[rank] = node id` (a fixed permutation, so node ids
    /// and popularity are uncorrelated, like real datasets).
    rank_to_node: Vec<u32>,
    zipf: Zipf,
}

impl CommunityModel {
    /// Builds a model with `n` nodes, `num_communities` communities, and
    /// Zipf exponent `zipf_s` for popularity.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `num_communities == 0`.
    pub fn new(n: u32, num_communities: u16, zipf_s: f64, rng: &mut Xoshiro256) -> Self {
        assert!(n > 0, "need at least one node");
        assert!(num_communities > 0, "need at least one community");
        let num_communities = num_communities.min(n.min(u16::MAX as u32) as u16);
        // random popularity permutation
        let mut rank_to_node: Vec<u32> = (0..n).collect();
        for i in (1..n as usize).rev() {
            let j = rng.gen_index(i + 1);
            rank_to_node.swap(i, j);
        }
        // assign communities uniformly
        let mut community = vec![0u16; n as usize];
        for c in community.iter_mut() {
            *c = rng.gen_index(num_communities as usize) as u16;
        }
        // member lists in popularity order
        let mut members = vec![Vec::new(); num_communities as usize];
        for &node in &rank_to_node {
            members[community[node as usize] as usize].push(node);
        }
        // ensure no community is empty (steal from the largest)
        for c in 0..num_communities as usize {
            if members[c].is_empty() {
                let largest = (0..num_communities as usize)
                    .max_by_key(|&k| members[k].len())
                    .expect("at least one community");
                if members[largest].len() > 1 {
                    let node = members[largest].pop().expect("nonempty");
                    community[node as usize] = c as u16;
                    members[c].push(node);
                }
            }
        }
        CommunityModel {
            community,
            members,
            rank_to_node,
            zipf: Zipf::new(n as u64, zipf_s),
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> u32 {
        self.community.len() as u32
    }

    /// Number of communities.
    pub fn num_communities(&self) -> u16 {
        self.members.len() as u16
    }

    /// Community of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn community_of(&self, node: u32) -> u16 {
        self.community[node as usize]
    }

    /// Draws a node by global Zipf popularity.
    pub fn sample_node(&self, rng: &mut Xoshiro256) -> u32 {
        self.rank_to_node[self.zipf.sample(rng) as usize]
    }

    /// Draws a node from community `c`, heavy-tailed within the community.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn sample_in_community(&self, c: u16, rng: &mut Xoshiro256) -> u32 {
        let members = &self.members[c as usize];
        debug_assert!(!members.is_empty(), "community {c} is empty");
        if members.len() == 1 {
            return members[0];
        }
        // within-community rank drawn from the same Zipf shape, rescaled
        let rank = self.zipf.sample(rng) as usize;
        members[rank % members.len()]
    }

    /// Nodes of community `c` (popularity order).
    pub fn members(&self, c: u16) -> &[u32] {
        &self.members[c as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_nodes_assigned() {
        let mut rng = Xoshiro256::seed_from_u64(1);
        let m = CommunityModel::new(1000, 10, 1.0, &mut rng);
        let total: usize = (0..10).map(|c| m.members(c).len()).sum();
        assert_eq!(total, 1000);
        for node in 0..1000 {
            let c = m.community_of(node);
            assert!(m.members(c).contains(&node));
        }
    }

    #[test]
    fn no_empty_communities() {
        let mut rng = Xoshiro256::seed_from_u64(2);
        let m = CommunityModel::new(50, 20, 1.0, &mut rng);
        for c in 0..m.num_communities() {
            assert!(!m.members(c).is_empty(), "community {c} empty");
        }
    }

    #[test]
    fn more_communities_than_nodes_is_clamped() {
        let mut rng = Xoshiro256::seed_from_u64(3);
        let m = CommunityModel::new(5, 100, 1.0, &mut rng);
        assert!(m.num_communities() <= 5);
    }

    #[test]
    fn sample_in_community_returns_member() {
        let mut rng = Xoshiro256::seed_from_u64(4);
        let m = CommunityModel::new(200, 8, 1.0, &mut rng);
        for _ in 0..1000 {
            let c = rng.gen_index(8) as u16;
            let node = m.sample_in_community(c, &mut rng);
            assert_eq!(m.community_of(node), c);
        }
    }

    #[test]
    fn sampling_is_heavy_tailed() {
        let mut rng = Xoshiro256::seed_from_u64(5);
        let m = CommunityModel::new(10_000, 10, 1.1, &mut rng);
        let mut counts = vec![0u32; 10_000];
        for _ in 0..100_000 {
            counts[m.sample_node(&mut rng) as usize] += 1;
        }
        let mut sorted = counts.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        // top 1% of nodes should carry a large share of draws
        let top: u32 = sorted[..100].iter().sum();
        assert!(
            top as f64 > 0.3 * 100_000.0,
            "top-1% share too small: {top}"
        );
    }

    #[test]
    fn deterministic_for_seed() {
        let mut r1 = Xoshiro256::seed_from_u64(6);
        let mut r2 = Xoshiro256::seed_from_u64(6);
        let m1 = CommunityModel::new(100, 5, 1.0, &mut r1);
        let m2 = CommunityModel::new(100, 5, 1.0, &mut r2);
        for n in 0..100 {
            assert_eq!(m1.community_of(n), m2.community_of(n));
        }
    }
}
