//! Multi-relation knowledge-graph generator (FB15k / full-Freebase
//! stand-ins).
//!
//! Entities carry communities; each relation type `r` is a random map
//! `π_r` over communities, and an edge `(s, r, d)` is generated with
//! `community(d) = π_r(community(s))` with probability `intra_prob` —
//! so relation operators have actual structure to learn (a translation
//! or complex rotation can encode "community shift"). Relation
//! frequencies are Zipf-skewed, like Freebase's 25k relations where a
//! handful dominate.

use crate::community::CommunityModel;
use pbg_graph::edges::{Edge, EdgeList};
use pbg_graph::schema::{EntityTypeDef, GraphSchema, OperatorKind, RelationTypeDef};
use pbg_tensor::alias::AliasTable;
use pbg_tensor::rng::Xoshiro256;

/// Configuration for the knowledge-graph generator.
#[derive(Debug, Clone, PartialEq)]
pub struct KnowledgeGraphConfig {
    /// Entity count.
    pub num_entities: u32,
    /// Relation type count.
    pub num_relations: u32,
    /// Edge count.
    pub num_edges: usize,
    /// Number of latent communities.
    pub num_communities: u16,
    /// Probability an edge follows its relation's community map.
    pub intra_prob: f64,
    /// Zipf exponent of entity popularity.
    pub zipf_exponent: f64,
    /// Zipf exponent of relation frequency skew.
    pub relation_skew: f64,
    /// Probability a relation's community map fixes a community in place
    /// (real knowledge-graph relations mostly connect entities of the
    /// same domain; fully random permutations are unrepresentable by
    /// translation-style operators).
    pub identity_map_prob: f64,
    /// Relation operator recorded in the generated schema.
    pub operator: OperatorKind,
    /// RNG seed.
    pub seed: u64,
}

impl Default for KnowledgeGraphConfig {
    fn default() -> Self {
        KnowledgeGraphConfig {
            num_entities: 15_000,
            num_relations: 100,
            num_edges: 300_000,
            num_communities: 64,
            intra_prob: 0.85,
            zipf_exponent: 0.9,
            relation_skew: 1.0,
            identity_map_prob: 0.7,
            operator: OperatorKind::ComplexDiagonal,
            seed: 0,
        }
    }
}

impl KnowledgeGraphConfig {
    /// Generates the edge list and community model.
    ///
    /// # Panics
    ///
    /// Panics if `num_entities < 2`, `num_relations == 0`, or
    /// `intra_prob` is outside `[0, 1]`.
    pub fn generate(&self) -> (EdgeList, CommunityModel) {
        assert!(self.num_entities >= 2, "need at least two entities");
        assert!(self.num_relations >= 1, "need at least one relation");
        assert!(
            (0.0..=1.0).contains(&self.intra_prob),
            "intra_prob must be a probability"
        );
        let mut rng = Xoshiro256::seed_from_u64(self.seed);
        let model = CommunityModel::new(
            self.num_entities,
            self.num_communities,
            self.zipf_exponent,
            &mut rng,
        );
        let ncom = model.num_communities() as usize;
        // per-relation community maps, identity-biased
        let maps: Vec<Vec<u16>> = (0..self.num_relations)
            .map(|_| {
                (0..ncom)
                    .map(|c| {
                        if rng.gen_f64() < self.identity_map_prob {
                            c as u16
                        } else {
                            rng.gen_index(ncom) as u16
                        }
                    })
                    .collect()
            })
            .collect();
        // Zipf-skewed relation frequencies via an alias table
        let rel_weights: Vec<f32> = (0..self.num_relations)
            .map(|r| 1.0 / ((r + 1) as f32).powf(self.relation_skew as f32))
            .collect();
        let rel_table = AliasTable::new(&rel_weights);
        let mut edges = EdgeList::with_capacity(self.num_edges);
        while edges.len() < self.num_edges {
            let rel = rel_table.sample(&mut rng) as u32;
            let src = model.sample_node(&mut rng);
            let dst = if rng.gen_f64() < self.intra_prob {
                let target_com = maps[rel as usize][model.community_of(src) as usize];
                model.sample_in_community(target_com, &mut rng)
            } else {
                model.sample_node(&mut rng)
            };
            if src == dst {
                continue;
            }
            edges.push(Edge::new(src, rel, dst));
        }
        (edges, model)
    }

    /// The single-entity-type, multi-relation schema with `p` partitions.
    ///
    /// # Panics
    ///
    /// Panics if `p == 0`.
    pub fn schema(&self, p: u32) -> GraphSchema {
        let mut builder = GraphSchema::builder()
            .entity_type(EntityTypeDef::new("entity", self.num_entities).with_partitions(p));
        for r in 0..self.num_relations {
            builder = builder.relation_type(
                RelationTypeDef::new(format!("rel_{r}"), 0u32, 0u32).with_operator(self.operator),
            );
        }
        builder.build().expect("generated schema is always valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> KnowledgeGraphConfig {
        KnowledgeGraphConfig {
            num_entities: 200,
            num_relations: 10,
            num_edges: 3000,
            ..Default::default()
        }
    }

    #[test]
    fn generates_requested_counts() {
        let (edges, _) = small().generate();
        assert_eq!(edges.len(), 3000);
    }

    #[test]
    fn relations_in_range_and_skewed() {
        let (edges, _) = small().generate();
        let mut counts = [0usize; 10];
        for e in edges.iter() {
            counts[e.rel.index()] += 1;
        }
        assert!(counts[0] > counts[9], "relation frequencies not skewed");
    }

    #[test]
    fn edges_follow_relation_community_maps() {
        let cfg = KnowledgeGraphConfig {
            intra_prob: 1.0,
            ..small()
        };
        let (edges, model) = cfg.generate();
        // With intra_prob = 1, for a fixed relation the destination
        // community is a function of the source community.
        use std::collections::HashMap;
        let mut seen: HashMap<(u32, u16), u16> = HashMap::new();
        for e in edges.iter() {
            let key = (e.rel.0, model.community_of(e.src.0));
            let dcom = model.community_of(e.dst.0);
            if let Some(&prev) = seen.get(&key) {
                assert_eq!(prev, dcom, "community map not deterministic");
            } else {
                seen.insert(key, dcom);
            }
        }
    }

    #[test]
    fn schema_matches_config() {
        let cfg = small();
        let s = cfg.schema(4);
        assert_eq!(s.num_relation_types(), 10);
        assert_eq!(s.num_partitions(), 4);
        assert_eq!(
            s.relation_type(0u32.into()).operator(),
            OperatorKind::ComplexDiagonal
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let (a, _) = small().generate();
        let (b, _) = small().generate();
        assert_eq!(a, b);
    }
}
