//! Multi-label node annotations for downstream classification.
//!
//! The YouTube experiment (§5.3, Table 1 right) trains a one-vs-rest
//! logistic regression on the embeddings to predict users' group
//! subscriptions — a multi-label task. We derive labels from the
//! community model: every node is labeled with its community, plus extra
//! labels with small probability (real users subscribe to several
//! groups), and only a subset of nodes is labeled at all (as in the real
//! dataset).

use crate::community::CommunityModel;
use pbg_tensor::rng::Xoshiro256;

/// Sparse multi-label assignment: `labels[i]` is the (possibly empty)
/// sorted label set of node `i`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Labels {
    labels: Vec<Vec<u16>>,
    num_classes: u16,
}

impl Labels {
    /// Derives labels from `model`.
    ///
    /// `labeled_frac` of nodes receive labels; each labeled node gets its
    /// community label plus each other label independently with
    /// probability `extra_label_prob`.
    ///
    /// # Panics
    ///
    /// Panics if the fractions are not probabilities.
    pub fn from_communities(
        model: &CommunityModel,
        labeled_frac: f64,
        extra_label_prob: f64,
        rng: &mut Xoshiro256,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&labeled_frac) && (0.0..=1.0).contains(&extra_label_prob),
            "fractions must be probabilities"
        );
        let num_classes = model.num_communities();
        let labels = (0..model.num_nodes())
            .map(|node| {
                if rng.gen_f64() >= labeled_frac {
                    return Vec::new();
                }
                let mut set = vec![model.community_of(node)];
                for c in 0..num_classes {
                    if c != model.community_of(node) && rng.gen_f64() < extra_label_prob {
                        set.push(c);
                    }
                }
                set.sort_unstable();
                set
            })
            .collect();
        Labels {
            labels,
            num_classes,
        }
    }

    /// Number of label classes.
    pub fn num_classes(&self) -> u16 {
        self.num_classes
    }

    /// Number of nodes (labeled or not).
    pub fn num_nodes(&self) -> usize {
        self.labels.len()
    }

    /// The label set of `node` (empty when unlabeled).
    pub fn of(&self, node: u32) -> &[u16] {
        &self.labels[node as usize]
    }

    /// Indices of nodes that carry at least one label.
    pub fn labeled_nodes(&self) -> Vec<u32> {
        (0..self.labels.len() as u32)
            .filter(|&n| !self.labels[n as usize].is_empty())
            .collect()
    }

    /// `true` if `node` has label `class`.
    pub fn has(&self, node: u32, class: u16) -> bool {
        self.labels[node as usize].binary_search(&class).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> (CommunityModel, Xoshiro256) {
        let mut rng = Xoshiro256::seed_from_u64(1);
        let m = CommunityModel::new(500, 10, 1.0, &mut rng);
        (m, rng)
    }

    #[test]
    fn labeled_fraction_respected() {
        let (m, mut rng) = model();
        let l = Labels::from_communities(&m, 0.5, 0.0, &mut rng);
        let labeled = l.labeled_nodes().len();
        assert!((150..350).contains(&labeled), "labeled {labeled}");
    }

    #[test]
    fn labeled_nodes_carry_community_label() {
        let (m, mut rng) = model();
        let l = Labels::from_communities(&m, 1.0, 0.0, &mut rng);
        for n in 0..500 {
            assert_eq!(l.of(n), &[m.community_of(n)]);
        }
    }

    #[test]
    fn extra_labels_appear() {
        let (m, mut rng) = model();
        let l = Labels::from_communities(&m, 1.0, 0.3, &mut rng);
        let multi = (0..500).filter(|&n| l.of(n).len() > 1).count();
        assert!(multi > 100, "only {multi} multi-label nodes");
    }

    #[test]
    fn has_checks_membership() {
        let (m, mut rng) = model();
        let l = Labels::from_communities(&m, 1.0, 0.0, &mut rng);
        assert!(l.has(0, m.community_of(0)));
        let other = (m.community_of(0) + 1) % l.num_classes();
        assert!(!l.has(0, other));
    }

    #[test]
    fn zero_fraction_labels_nothing() {
        let (m, mut rng) = model();
        let l = Labels::from_communities(&m, 0.0, 0.5, &mut rng);
        assert!(l.labeled_nodes().is_empty());
    }
}
