//! Differential quantization test battery.
//!
//! Drives random shapes and value distributions through the f16/int8
//! row codec in `pbg_tensor::quant` and checks every decoded element
//! against the committed error contract:
//!
//! - f16: relative error ≤ 2⁻¹¹ in the normal range (round-to-nearest-
//!   even is half an ulp of a 10-bit significand), absolute error
//!   ≤ 2⁻²⁵ in the subnormal range, specials (NaN, ±inf, ±0) preserved,
//!   overflow saturating to ±65504 or rounding to ±inf.
//! - int8: absolute error ≤ scale/2 for finite values, where scale is
//!   the row's absmax/127 over *finite* entries; NaN encodes to 0 and
//!   ±inf clamps to ±127·scale.
//!
//! Everything is seeded (`Xoshiro256`) in the style of `kernel_diff.rs`:
//! a reported failure is a one-line reproducer, and the harness shrinks
//! the failing case (halving rows/cols, simplifying the distribution)
//! before panicking with the minimal one.

use pbg_tensor::quant::{self, Precision};
use pbg_tensor::rng::Xoshiro256;

// ---------------------------------------------------------------------------
// ULP comparator (same construction as kernel_diff.rs)
// ---------------------------------------------------------------------------

/// Monotone integer line over f32 (sign-magnitude → two's-complement).
fn float_ord(x: f32) -> i64 {
    let bits = x.to_bits();
    if bits & 0x8000_0000 != 0 {
        -((bits & 0x7fff_ffff) as i64)
    } else {
        bits as i64
    }
}

/// Distance in units of least precision; NaN anywhere is maximal.
fn ulp_diff(a: f32, b: f32) -> u64 {
    if a.is_nan() || b.is_nan() {
        return u64::MAX;
    }
    if a == b {
        return 0;
    }
    (float_ord(a) - float_ord(b)).unsigned_abs()
}

// f16 error contract constants
const F16_MAX: f32 = 65504.0;
/// Smallest positive normal f16.
const F16_MIN_NORMAL: f32 = 6.103_515_6e-5; // 2^-14
/// Half an ulp of a 10-bit significand, as a relative bound.
const F16_REL: f32 = 1.0 / 2048.0; // 2^-11
/// Half the subnormal step 2^-24.
const F16_SUB_ABS: f32 = 5.960_464_5e-8; // 2^-25

// ---------------------------------------------------------------------------
// Case generation and shrinking
// ---------------------------------------------------------------------------

/// Value distributions the battery sweeps. Lower numbers are "simpler"
/// for the shrinker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dist {
    /// Standard normals — the training regime.
    Normal = 0,
    /// Scaled up toward (and past) f16 overflow.
    Large = 1,
    /// Scaled down into f16-subnormal territory.
    Tiny = 2,
    /// Normals with NaN, ±inf, ±0 and f32 subnormals injected.
    Specials = 3,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Case {
    rows: usize,
    cols: usize,
    dist: Dist,
    seed: u64,
}

impl Case {
    fn random(seed: u64) -> Case {
        let mut rng = Xoshiro256::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        Case {
            rows: rng.gen_index(33),
            cols: rng.gen_index(130), // crosses typical dims and 0
            dist: match rng.gen_index(4) {
                0 => Dist::Normal,
                1 => Dist::Large,
                2 => Dist::Tiny,
                _ => Dist::Specials,
            },
            seed,
        }
    }

    /// Deterministically regenerates this case's value block.
    fn values(&self) -> Vec<f32> {
        let mut rng = Xoshiro256::seed_from_u64(self.seed);
        let n = self.rows * self.cols;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let x = rng.gen_normal();
            out.push(match self.dist {
                Dist::Normal => x,
                Dist::Large => x * 40_000.0,
                Dist::Tiny => x * 1e-5,
                Dist::Specials => match rng.gen_index(8) {
                    0 => f32::NAN,
                    1 => f32::INFINITY,
                    2 => f32::NEG_INFINITY,
                    3 => 0.0,
                    4 => -0.0,
                    5 => x * f32::MIN_POSITIVE, // f32 subnormals
                    _ => x,
                },
            });
        }
        out
    }

    fn shrink_candidates(&self) -> Vec<Case> {
        let mut out = Vec::new();
        for f in [
            |c: &mut Case| c.rows /= 2,
            |c: &mut Case| c.cols /= 2,
            |c: &mut Case| c.rows = c.rows.saturating_sub(1),
            |c: &mut Case| c.cols = c.cols.saturating_sub(1),
            |c: &mut Case| c.dist = Dist::Normal,
        ] {
            let mut cand = self.clone();
            f(&mut cand);
            if cand != *self && cand.rows <= self.rows && cand.cols <= self.cols {
                out.push(cand);
            }
        }
        out
    }
}

/// Greedy shrink: keep applying the first reduction that still fails.
fn shrink(case: &Case, check: &dyn Fn(&Case) -> Option<String>) -> Case {
    let mut cur = case.clone();
    'outer: loop {
        for cand in cur.shrink_candidates() {
            if check(&cand).is_some() {
                cur = cand;
                continue 'outer;
            }
        }
        return cur;
    }
}

/// Runs boundary shapes plus `cases` random cases through `check`; on
/// failure, shrinks and panics with the minimal reproducer.
fn run_property(name: &str, cases: u64, check: impl Fn(&Case) -> Option<String>) {
    let boundary = [(0, 0), (0, 5), (3, 0), (1, 1), (1, 128), (32, 100)];
    for dist in [Dist::Normal, Dist::Large, Dist::Tiny, Dist::Specials] {
        for (idx, &(rows, cols)) in boundary.iter().enumerate() {
            let case = Case {
                rows,
                cols,
                dist,
                seed: 0xb00d + idx as u64,
            };
            if let Some(err) = check(&case) {
                let min = shrink(&case, &check);
                let err = check(&min).unwrap_or(err);
                panic!("{name}: boundary case failed; minimal case {min:?}: {err}");
            }
        }
    }
    for i in 0..cases {
        let case = Case::random(0xdead_0000 + i);
        if let Some(err) = check(&case) {
            let min = shrink(&case, &check);
            let err = check(&min).unwrap_or(err);
            panic!("{name}: random case {case:?} failed; minimal case {min:?}: {err}");
        }
    }
}

// ---------------------------------------------------------------------------
// Per-codec checks
// ---------------------------------------------------------------------------

/// Encodes and decodes the case's block at `precision`, returning the
/// decoded values.
fn roundtrip(case: &Case, precision: Precision) -> Vec<f32> {
    let values = case.values();
    let mut bytes = Vec::new();
    quant::encode_rows(precision, &values, case.rows, case.cols, &mut bytes);
    assert_eq!(
        bytes.len(),
        precision
            .payload_bytes(case.rows, case.cols)
            .expect("no overflow at test sizes"),
        "encoded length must match the closed form"
    );
    quant::decode_rows(precision, &bytes, case.rows, case.cols).expect("self-encoded block decodes")
}

fn check_f16_contract(case: &Case) -> Option<String> {
    let values = case.values();
    let back = roundtrip(case, Precision::F16);
    for (i, (&x, &y)) in values.iter().zip(&back).enumerate() {
        let err = |msg: String| Some(format!("f16 element {i}: {msg}"));
        if x.is_nan() {
            if !y.is_nan() {
                return err(format!("NaN decoded to {y:e}"));
            }
            continue;
        }
        if x.is_infinite() {
            if y != x {
                return err(format!("{x:e} decoded to {y:e}"));
            }
            continue;
        }
        let ax = x.abs();
        if ax > F16_MAX {
            // overflow: saturate to ±65504 or round to ±inf, same sign
            let ok = (y.abs() == F16_MAX || y.is_infinite())
                && (y.is_sign_positive() == x.is_sign_positive());
            if !ok {
                return err(format!("overflowing {x:e} decoded to {y:e}"));
            }
        } else if ax >= F16_MIN_NORMAL {
            if (x - y).abs() > ax * F16_REL {
                return err(format!(
                    "{x:e} decoded to {y:e}, relative error {:e} > 2^-11",
                    (x - y).abs() / ax
                ));
            }
        } else if (x - y).abs() > F16_SUB_ABS {
            return err(format!(
                "subnormal-range {x:e} decoded to {y:e}, absolute error {:e} > 2^-25",
                (x - y).abs()
            ));
        }
        // ±0 must keep its sign (IEEE 754 sign bit survives the trip)
        if x == 0.0 && (y != 0.0 || y.is_sign_positive() != x.is_sign_positive()) {
            return err(format!("signed zero {x:e} decoded to {y:e}"));
        }
    }
    None
}

fn check_int8_contract(case: &Case) -> Option<String> {
    let values = case.values();
    let back = roundtrip(case, Precision::Int8);
    for r in 0..case.rows {
        let row = &values[r * case.cols..(r + 1) * case.cols];
        let scale = quant::int8_scale(row);
        for (j, &x) in row.iter().enumerate() {
            let y = back[r * case.cols + j];
            let err = |msg: String| Some(format!("int8 row {r} col {j} (scale {scale:e}): {msg}"));
            if x.is_nan() {
                if y != 0.0 {
                    return err(format!("NaN decoded to {y:e}, want 0"));
                }
            } else if x.is_infinite() {
                // clamps to the widest finite code
                if (y - x.signum() * 127.0 * scale).abs() > scale * 1e-3 {
                    return err(format!("{x:e} decoded to {y:e}, want ±127·scale"));
                }
            } else if (x - y).abs() > scale / 2.0 + scale * 1e-6 {
                return err(format!(
                    "{x:e} decoded to {y:e}, absolute error {:e} > scale/2",
                    (x - y).abs()
                ));
            }
        }
    }
    None
}

/// Random row access (`decode_row_into`) must agree bit-for-bit with the
/// full-block decode — the mmap serving path depends on it.
fn check_row_access_agrees(case: &Case) -> Option<String> {
    for precision in [Precision::F32, Precision::F16, Precision::Int8] {
        let values = case.values();
        let mut bytes = Vec::new();
        quant::encode_rows(precision, &values, case.rows, case.cols, &mut bytes);
        let block = quant::decode_rows(precision, &bytes, case.rows, case.cols).unwrap();
        let mut row = vec![0.0f32; case.cols];
        for i in 0..case.rows {
            quant::decode_row_into(precision, &bytes, case.rows, case.cols, i, &mut row).unwrap();
            for j in 0..case.cols {
                let (a, b) = (block[i * case.cols + j], row[j]);
                if a.to_bits() != b.to_bits() && !(a.is_nan() && b.is_nan()) {
                    return Some(format!(
                        "{precision:?} row {i} col {j}: block {a:e} vs row {b:e} ({} ulps)",
                        ulp_diff(a, b)
                    ));
                }
            }
        }
    }
    None
}

/// f16 quantization is idempotent: a second trip through the codec is
/// lossless (decoded values are exactly representable).
fn check_f16_idempotent(case: &Case) -> Option<String> {
    let once = roundtrip(case, Precision::F16);
    let twice_case = case.clone();
    let mut bytes = Vec::new();
    quant::encode_rows(Precision::F16, &once, case.rows, case.cols, &mut bytes);
    let twice =
        quant::decode_rows(Precision::F16, &bytes, twice_case.rows, twice_case.cols).unwrap();
    for (i, (&a, &b)) in once.iter().zip(&twice).enumerate() {
        if a.to_bits() != b.to_bits() && !(a.is_nan() && b.is_nan()) {
            return Some(format!(
                "element {i}: first trip {a:e}, second trip {b:e} ({} ulps)",
                ulp_diff(a, b)
            ));
        }
    }
    None
}

// ---------------------------------------------------------------------------
// The properties
// ---------------------------------------------------------------------------

#[test]
fn f16_roundtrip_honors_error_contract() {
    run_property("f16_contract", 48, check_f16_contract);
}

#[test]
fn int8_roundtrip_honors_error_contract() {
    run_property("int8_contract", 48, check_int8_contract);
}

#[test]
fn row_access_agrees_with_block_decode() {
    run_property("row_access", 32, check_row_access_agrees);
}

#[test]
fn f16_quantization_is_idempotent() {
    run_property("f16_idempotent", 32, check_f16_idempotent);
}

/// Length tampering — the codec's only in-band integrity signal — must
/// be rejected for every precision and both decode entry points. (Value
/// bit-flips inside a well-formed block are the checkpoint checksum's
/// and the wire checksum's job; see `hostile_inputs` in
/// `crates/net/tests/codec_props.rs` and the checkpoint tests.)
#[test]
fn tampered_lengths_are_rejected() {
    let case = Case {
        rows: 4,
        cols: 6,
        dist: Dist::Normal,
        seed: 11,
    };
    let values = case.values();
    for precision in [Precision::F32, Precision::F16, Precision::Int8] {
        let mut bytes = Vec::new();
        quant::encode_rows(precision, &values, 4, 6, &mut bytes);
        // truncated and extended blocks
        assert!(quant::decode_rows(precision, &bytes[..bytes.len() - 1], 4, 6).is_err());
        let mut longer = bytes.clone();
        longer.push(0);
        assert!(quant::decode_rows(precision, &longer, 4, 6).is_err());
        // shape lies
        assert!(quant::decode_rows(precision, &bytes, 5, 6).is_err());
        assert!(quant::decode_rows(precision, &bytes, 4, 5).is_err());
        // row access: bad row index and wrong output width
        let mut row = vec![0.0f32; 6];
        assert!(quant::decode_row_into(precision, &bytes, 4, 6, 4, &mut row).is_err());
        let mut short = vec![0.0f32; 5];
        assert!(quant::decode_row_into(precision, &bytes, 4, 6, 0, &mut short).is_err());
        assert!(
            quant::decode_row_into(precision, &bytes[..bytes.len() - 1], 4, 6, 0, &mut row)
                .is_err()
        );
    }
}

/// Every bit of an encoded block is load-bearing: flipping any one bit
/// changes some decoded value (the codecs are injective maps), so
/// upstream checksums — FNV-1a on checkpoint files and wire frames —
/// see every corruption as a content change, never a silent no-op.
#[test]
fn every_encoded_bit_is_observable() {
    let case = Case {
        rows: 3,
        cols: 5,
        dist: Dist::Normal,
        seed: 23,
    };
    let values = case.values();
    for precision in [Precision::F16, Precision::Int8] {
        let mut bytes = Vec::new();
        quant::encode_rows(precision, &values, 3, 5, &mut bytes);
        let clean = quant::decode_rows(precision, &bytes, 3, 5).unwrap();
        for bit in 0..bytes.len() * 8 {
            let mut bad = bytes.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            let decoded = quant::decode_rows(precision, &bad, 3, 5).unwrap();
            let changed = clean
                .iter()
                .zip(&decoded)
                .any(|(a, b)| a.to_bits() != b.to_bits());
            assert!(
                changed,
                "{precision:?}: flipping encoded bit {bit} left the decode unchanged"
            );
        }
    }
}
