//! Differential kernel test harness.
//!
//! Drives random shapes, strides, and contents through the blocked kernels
//! in `pbg_tensor::kernels` and diffs every output element against the
//! naive `kernels::reference` oracle with an ULP-aware comparator. The
//! blocked kernels reassociate floating-point sums (register tiles, packed
//! panels, k-unrolling), so outputs are not bit-identical to the
//! sequential reference — but they must agree to within a small ULP count
//! or a k-scaled absolute epsilon. Anything beyond that is a real bug
//! (wrong element, missed tail, stride confusion), not rounding.
//!
//! Everything is seeded (`Xoshiro256`), so a reported failure is a
//! one-line reproducer. On failure the harness shrinks the case — halving
//! each dimension and dropping stride padding while the failure still
//! reproduces — and panics with the minimal failing case.

use pbg_tensor::kernels::{self, reference, ScoreGrad, Variant};
use pbg_tensor::matrix::Matrix;
use pbg_tensor::rng::Xoshiro256;

// ---------------------------------------------------------------------------
// ULP-aware comparator
// ---------------------------------------------------------------------------

/// Maps an f32 onto a monotone integer line so that adjacent representable
/// floats differ by exactly 1 (the usual sign-magnitude → two's-complement
/// trick, widened to i64 so `-0.0` and `f32::MIN` can't overflow).
fn float_ord(x: f32) -> i64 {
    let bits = x.to_bits();
    if bits & 0x8000_0000 != 0 {
        -((bits & 0x7fff_ffff) as i64)
    } else {
        bits as i64
    }
}

/// Distance between two floats in units of least precision. NaN anywhere
/// is an automatic maximal distance — the kernels must never produce one
/// from finite inputs.
fn ulp_diff(a: f32, b: f32) -> u64 {
    if a.is_nan() || b.is_nan() {
        return u64::MAX;
    }
    if a == b {
        return 0; // covers +0.0 vs -0.0
    }
    (float_ord(a) - float_ord(b)).unsigned_abs()
}

/// Accept bit-equality, a small ULP distance, or — for sums that cancel
/// close to zero, where ULPs blow up — an absolute slack that scales with
/// the reduction length `k` (each reordered partial sum contributes at
/// most O(eps · |term|), and terms here are O(1) normals).
const MAX_ULPS: u64 = 64;

fn within_tolerance(got: f32, want: f32, k: usize) -> bool {
    ulp_diff(got, want) <= MAX_ULPS || (got - want).abs() <= 1e-6 * (k.max(1) as f32).sqrt() * 8.0
}

/// Diffs two strided row-major views; returns the first offending element.
#[allow(clippy::too_many_arguments)]
fn diff_views(
    rows: usize,
    cols: usize,
    got: &[f32],
    ldg: usize,
    want: &[f32],
    ldw: usize,
    k: usize,
    what: &str,
) -> Option<String> {
    for i in 0..rows {
        for j in 0..cols {
            let g = got[i * ldg + j];
            let w = want[i * ldw + j];
            if !within_tolerance(g, w, k) {
                return Some(format!(
                    "{what}[{i}][{j}]: got {g:e} want {w:e} ({} ulps apart)",
                    ulp_diff(g, w)
                ));
            }
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Case generation and shrinking
// ---------------------------------------------------------------------------

/// One property-test case: a shape, per-matrix stride padding, and the
/// seed that deterministically regenerates the contents.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Case {
    m: usize,
    n: usize,
    k: usize,
    /// Extra columns of padding on top of the minimal stride, per matrix.
    pad_a: usize,
    pad_b: usize,
    pad_o: usize,
    seed: u64,
}

impl Case {
    /// Shapes are drawn to straddle the kernel's blocking constants
    /// (MR=4, NR=8, MC=64): remainders in every combination, plus empty
    /// dims, land with useful probability.
    fn random(seed: u64) -> Case {
        let mut rng = Xoshiro256::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        Case {
            m: rng.gen_index(97), // 0..=96 crosses MC=64 and MR=4 remainders
            n: rng.gen_index(41), // 0..=40 crosses NR=8 remainders
            k: rng.gen_index(70),
            pad_a: rng.gen_index(4),
            pad_b: rng.gen_index(4),
            pad_o: rng.gen_index(4),
            seed,
        }
    }

    /// Fills a `rows × cols` buffer with stride `cols + pad`. Padding
    /// lanes are filled with a poison value so a kernel that reads or
    /// writes across a stride boundary produces loud wrong answers
    /// instead of quiet zeros.
    fn alloc(
        &self,
        rng: &mut Xoshiro256,
        rows: usize,
        cols: usize,
        pad: usize,
    ) -> (Vec<f32>, usize) {
        let ld = cols + pad;
        let mut buf = vec![1e30f32; rows * ld];
        for i in 0..rows {
            for j in 0..cols {
                buf[i * ld + j] = rng.gen_normal();
            }
        }
        (buf, ld)
    }

    /// Candidate reductions for shrinking, roughly largest-first.
    fn shrink_candidates(&self) -> Vec<Case> {
        let mut out = Vec::new();
        for f in [
            |c: &mut Case| c.m /= 2,
            |c: &mut Case| c.n /= 2,
            |c: &mut Case| c.k /= 2,
            |c: &mut Case| c.m = c.m.saturating_sub(1),
            |c: &mut Case| c.n = c.n.saturating_sub(1),
            |c: &mut Case| c.k = c.k.saturating_sub(1),
            |c: &mut Case| c.pad_a = 0,
            |c: &mut Case| c.pad_b = 0,
            |c: &mut Case| c.pad_o = 0,
        ] {
            let mut cand = self.clone();
            f(&mut cand);
            // usize division/subtraction can no-op (0/2) or underflow-guard
            if cand != *self && cand.m <= self.m && cand.n <= self.n && cand.k <= self.k {
                out.push(cand);
            }
        }
        out
    }
}

/// Greedy shrink: keep applying the first reduction that still fails.
fn shrink(case: &Case, check: &dyn Fn(&Case) -> Option<String>) -> Case {
    let mut cur = case.clone();
    'outer: loop {
        for cand in cur.shrink_candidates() {
            if check(&cand).is_some() {
                cur = cand;
                continue 'outer;
            }
        }
        return cur;
    }
}

/// Runs `cases` random cases plus a deterministic boundary sweep through
/// `check`; on failure, shrinks and panics with the minimal reproducer.
fn run_property(name: &str, cases: u64, check: impl Fn(&Case) -> Option<String>) {
    // Boundary shapes around the blocking constants, always exercised.
    let boundary = [
        (0, 0, 0),
        (0, 5, 3),
        (4, 0, 3),
        (4, 8, 0),
        (1, 1, 1),
        (4, 8, 16),   // exact register tile
        (5, 9, 17),   // +1 remainders everywhere
        (64, 8, 32),  // exact MC row block
        (65, 15, 33), // MC + 1, NR*2 - 1
        (96, 40, 69), // max of the random sweep
    ];
    for (idx, &(m, n, k)) in boundary.iter().enumerate() {
        for pad in 0..2usize {
            let case = Case {
                m,
                n,
                k,
                pad_a: pad,
                pad_b: pad * 2,
                pad_o: pad * 3,
                seed: 0xb00d + idx as u64,
            };
            if let Some(err) = check(&case) {
                let min = shrink(&case, &check);
                let err = check(&min).unwrap_or(err);
                panic!("{name}: boundary case failed; minimal case {min:?}: {err}");
            }
        }
    }
    for i in 0..cases {
        let case = Case::random(0xdead_0000 + i);
        if let Some(err) = check(&case) {
            let min = shrink(&case, &check);
            let err = check(&min).unwrap_or(err);
            panic!("{name}: random case {case:?} failed; minimal case {min:?}: {err}");
        }
    }
}

// ---------------------------------------------------------------------------
// Per-kernel checks
// ---------------------------------------------------------------------------

fn check_matmul(case: &Case) -> Option<String> {
    let &Case { m, n, k, .. } = case;
    let mut rng = Xoshiro256::seed_from_u64(case.seed);
    let (a, lda) = case.alloc(&mut rng, m, k, case.pad_a);
    let (b, ldb) = case.alloc(&mut rng, k, n, case.pad_b);
    let (mut got, ldo) = case.alloc(&mut rng, m, n, case.pad_o);
    let mut want = got.clone();
    kernels::matmul(m, n, k, &a, lda, &b, ldb, &mut got, ldo);
    reference::matmul(m, n, k, &a, lda, &b, ldb, &mut want, ldo);
    diff_views(m, n, &got, ldo, &want, ldo, k, "matmul out")
}

fn check_matmul_nt(case: &Case) -> Option<String> {
    let &Case { m, n, k, .. } = case;
    let mut rng = Xoshiro256::seed_from_u64(case.seed);
    let (a, lda) = case.alloc(&mut rng, m, k, case.pad_a);
    let (b, ldb) = case.alloc(&mut rng, n, k, case.pad_b);
    let (mut got, ldo) = case.alloc(&mut rng, m, n, case.pad_o);
    let mut want = got.clone();
    kernels::matmul_nt(m, n, k, &a, lda, &b, ldb, &mut got, ldo);
    reference::matmul_nt(m, n, k, &a, lda, &b, ldb, &mut want, ldo);
    diff_views(m, n, &got, ldo, &want, ldo, k, "matmul_nt out")
}

fn check_transpose(case: &Case) -> Option<String> {
    let &Case { m, n, .. } = case;
    let mut rng = Xoshiro256::seed_from_u64(case.seed);
    let (a, lda) = case.alloc(&mut rng, m, n, case.pad_a);
    let (mut got, ldo) = case.alloc(&mut rng, n, m, case.pad_o);
    let mut want = got.clone();
    kernels::transpose(m, n, &a, lda, &mut got, ldo);
    reference::transpose(m, n, &a, lda, &mut want, ldo);
    // Transpose moves values without arithmetic: demand bit-equality.
    for i in 0..n {
        for j in 0..m {
            let (g, w) = (got[i * ldo + j], want[i * ldo + j]);
            if g.to_bits() != w.to_bits() {
                return Some(format!("transpose[{i}][{j}]: got {g:e} want {w:e}"));
            }
        }
    }
    None
}

fn check_score_grads(case: &Case) -> Option<String> {
    let &Case { m, n, k, .. } = case;
    let mut rng = Xoshiro256::seed_from_u64(case.seed);
    let (a, lda) = case.alloc(&mut rng, m, k, case.pad_a);
    let (b, ldb) = case.alloc(&mut rng, n, k, case.pad_b);
    // The fused kernel skips zero gradient entries (masked induced
    // positives produce exact zeros in training) — make them common.
    let (mut g, ldg) = case.alloc(&mut rng, m, n, case.pad_o);
    for i in 0..m {
        for j in 0..n {
            if rng.gen_index(3) == 0 {
                g[i * ldg + j] = 0.0;
            }
        }
    }
    let mut ga_got = vec![f32::NAN; m * k.max(1)];
    let mut gb_got = vec![f32::NAN; n * k.max(1)];
    let mut ga_want = ga_got.clone();
    let mut gb_want = gb_got.clone();
    let (ldga, ldgb) = (k.max(1), k.max(1));
    kernels::score_grads(
        m,
        n,
        k,
        &a,
        lda,
        &b,
        ldb,
        &g,
        ldg,
        &mut ga_got,
        ldga,
        &mut gb_got,
        ldgb,
    );
    reference::score_grads(
        m,
        n,
        k,
        &a,
        lda,
        &b,
        ldb,
        &g,
        ldg,
        &mut ga_want,
        ldga,
        &mut gb_want,
        ldgb,
    );
    // The reductions here are over n (for ga) and m (for gb).
    diff_views(m, k, &ga_got, ldga, &ga_want, ldga, n, "score_grads ga")
        .or_else(|| diff_views(n, k, &gb_got, ldgb, &gb_want, ldgb, m, "score_grads gb"))
}

// ---------------------------------------------------------------------------
// Dispatch-differential checks: the same battery, pinned to one variant
// ---------------------------------------------------------------------------

/// `check_matmul` under an explicit `Variant` via the `_with` entry point.
fn check_matmul_v(v: Variant, case: &Case) -> Option<String> {
    let &Case { m, n, k, .. } = case;
    let mut rng = Xoshiro256::seed_from_u64(case.seed);
    let (a, lda) = case.alloc(&mut rng, m, k, case.pad_a);
    let (b, ldb) = case.alloc(&mut rng, k, n, case.pad_b);
    let (mut got, ldo) = case.alloc(&mut rng, m, n, case.pad_o);
    let mut want = got.clone();
    kernels::matmul_with(v, m, n, k, &a, lda, &b, ldb, &mut got, ldo);
    reference::matmul(m, n, k, &a, lda, &b, ldb, &mut want, ldo);
    diff_views(m, n, &got, ldo, &want, ldo, k, "matmul out")
}

/// `check_matmul_nt` under an explicit `Variant`.
fn check_matmul_nt_v(v: Variant, case: &Case) -> Option<String> {
    let &Case { m, n, k, .. } = case;
    let mut rng = Xoshiro256::seed_from_u64(case.seed);
    let (a, lda) = case.alloc(&mut rng, m, k, case.pad_a);
    let (b, ldb) = case.alloc(&mut rng, n, k, case.pad_b);
    let (mut got, ldo) = case.alloc(&mut rng, m, n, case.pad_o);
    let mut want = got.clone();
    kernels::matmul_nt_with(v, m, n, k, &a, lda, &b, ldb, &mut got, ldo);
    reference::matmul_nt(m, n, k, &a, lda, &b, ldb, &mut want, ldo);
    diff_views(m, n, &got, ldo, &want, ldo, k, "matmul_nt out")
}

/// `check_score_grads` under an explicit `Variant` (same zero-gradient
/// sparsity pattern — the RNG draws are identical to the dispatch check).
fn check_score_grads_v(v: Variant, case: &Case) -> Option<String> {
    let &Case { m, n, k, .. } = case;
    let mut rng = Xoshiro256::seed_from_u64(case.seed);
    let (a, lda) = case.alloc(&mut rng, m, k, case.pad_a);
    let (b, ldb) = case.alloc(&mut rng, n, k, case.pad_b);
    let (mut g, ldg) = case.alloc(&mut rng, m, n, case.pad_o);
    for i in 0..m {
        for j in 0..n {
            if rng.gen_index(3) == 0 {
                g[i * ldg + j] = 0.0;
            }
        }
    }
    let mut ga_got = vec![f32::NAN; m * k.max(1)];
    let mut gb_got = vec![f32::NAN; n * k.max(1)];
    let mut ga_want = ga_got.clone();
    let mut gb_want = gb_got.clone();
    let (ldga, ldgb) = (k.max(1), k.max(1));
    kernels::score_grads_with(
        v,
        m,
        n,
        k,
        &a,
        lda,
        &b,
        ldb,
        &g,
        ldg,
        &mut ga_got,
        ldga,
        &mut gb_got,
        ldgb,
    );
    reference::score_grads(
        m,
        n,
        k,
        &a,
        lda,
        &b,
        ldb,
        &g,
        ldg,
        &mut ga_want,
        ldga,
        &mut gb_want,
        ldgb,
    );
    diff_views(m, k, &ga_got, ldga, &ga_want, ldga, n, "score_grads ga")
        .or_else(|| diff_views(n, k, &gb_got, ldgb, &gb_want, ldgb, m, "score_grads gb"))
}

/// Runs one case through every kernel under two variants and demands the
/// outputs agree to the last bit. Valid only for variant pairs that
/// execute the same per-lane operation sequence (scalar ↔ sse2: both do
/// mul-then-add in the same `k` order; avx2 fuses with FMA and is
/// excluded by construction).
fn check_bit_identical_pair(va: Variant, vb: Variant, case: &Case) -> Option<String> {
    let &Case { m, n, k, .. } = case;
    let run = |v: Variant| {
        let mut rng = Xoshiro256::seed_from_u64(case.seed);
        let (a, lda) = case.alloc(&mut rng, m, k, case.pad_a);
        let (bt, ldbt) = case.alloc(&mut rng, n, k, case.pad_b); // n×k, for nt/grads
        let (b, ldb) = case.alloc(&mut rng, k, n, case.pad_b); // k×n, for matmul
        let (mut o_nt, ldo) = case.alloc(&mut rng, m, n, case.pad_o);
        let mut o_mm = o_nt.clone();
        let (mut g, ldg) = case.alloc(&mut rng, m, n, case.pad_o);
        for i in 0..m {
            for j in 0..n {
                if rng.gen_index(3) == 0 {
                    g[i * ldg + j] = 0.0;
                }
            }
        }
        kernels::matmul_nt_with(v, m, n, k, &a, lda, &bt, ldbt, &mut o_nt, ldo);
        kernels::matmul_with(v, m, n, k, &a, lda, &b, ldb, &mut o_mm, ldo);
        let mut ga = vec![f32::NAN; m * k.max(1)];
        let mut gb = vec![f32::NAN; n * k.max(1)];
        let (ldga, ldgb) = (k.max(1), k.max(1));
        kernels::score_grads_with(
            v, m, n, k, &a, lda, &bt, ldbt, &g, ldg, &mut ga, ldga, &mut gb, ldgb,
        );
        (o_nt, o_mm, ga, gb)
    };
    let (nt_a, mm_a, ga_a, gb_a) = run(va);
    let (nt_b, mm_b, ga_b, gb_b) = run(vb);
    for (name, xs, ys) in [
        ("matmul_nt", &nt_a, &nt_b),
        ("matmul", &mm_a, &mm_b),
        ("score_grads ga", &ga_a, &ga_b),
        ("score_grads gb", &gb_a, &gb_b),
    ] {
        for (i, (x, y)) in xs.iter().zip(ys.iter()).enumerate() {
            if x.to_bits() != y.to_bits() {
                return Some(format!(
                    "{name} flat[{i}]: {va:?} gave {x:e} but {vb:?} gave {y:e} (not bit-identical)"
                ));
            }
        }
    }
    None
}

/// The packed forward path (`ScoreGrad::scores`) against the reference —
/// packing must be a pure layout change.
fn check_packed_forward(case: &Case) -> Option<String> {
    let &Case { m, n, k, .. } = case;
    let mut rng = Xoshiro256::seed_from_u64(case.seed);
    let mut pos = Matrix::zeros(m, k);
    pos.fill_with(|_, _| rng.gen_normal());
    let mut cand = Matrix::zeros(n, k);
    cand.fill_with(|_, _| rng.gen_normal());
    let fused = ScoreGrad::new(&cand);
    let got = fused.scores(&pos);
    let mut want = vec![0.0f32; m * n];
    reference::matmul_nt(
        m,
        n,
        k,
        pos.as_slice(),
        k.max(1),
        cand.as_slice(),
        k.max(1),
        &mut want,
        n.max(1),
    );
    diff_views(
        m,
        n,
        got.as_slice(),
        n.max(1),
        &want,
        n.max(1),
        k,
        "ScoreGrad::scores",
    )
}

// ---------------------------------------------------------------------------
// The properties
// ---------------------------------------------------------------------------

#[test]
fn matmul_matches_reference_over_random_shapes_and_strides() {
    run_property("matmul", 64, check_matmul);
}

#[test]
fn matmul_nt_matches_reference_over_random_shapes_and_strides() {
    run_property("matmul_nt", 64, check_matmul_nt);
}

#[test]
fn transpose_is_bit_exact_over_random_shapes_and_strides() {
    run_property("transpose", 64, check_transpose);
}

#[test]
fn fused_score_grads_matches_reference_over_random_shapes() {
    run_property("score_grads", 64, check_score_grads);
}

#[test]
fn packed_forward_matches_reference_over_random_shapes() {
    run_property("packed_forward", 64, check_packed_forward);
}

// ---------------------------------------------------------------------------
// Dispatch-differential battery
// ---------------------------------------------------------------------------

/// Every seeded shape/stride case in the battery, under every variant
/// this CPU supports, ULP-compared (with shrinking) against the scalar
/// reference oracle. This is the property that makes `PBG_KERNEL` safe to
/// flip in production: no variant may change results beyond reassociation
/// rounding.
#[test]
fn every_supported_variant_passes_the_full_battery() {
    for v in Variant::supported_variants() {
        run_property(&format!("matmul[{}]", v.name()), 48, |c| {
            check_matmul_v(v, c)
        });
        run_property(&format!("matmul_nt[{}]", v.name()), 48, |c| {
            check_matmul_nt_v(v, c)
        });
        run_property(&format!("score_grads[{}]", v.name()), 48, |c| {
            check_score_grads_v(v, c)
        });
    }
}

/// A variant the CPU cannot execute must degrade per call to scalar
/// results — never fault. (On an AVX2 host this exercises the same
/// `for_call` guard by confirming the requested variant and scalar agree
/// on a case; on a non-AVX2 host it proves the degrade path.)
#[test]
fn unsupported_variants_degrade_rather_than_fault() {
    let case = Case {
        m: 33,
        n: 17,
        k: 40,
        pad_a: 1,
        pad_b: 2,
        pad_o: 0,
        seed: 0xfa11_bacc,
    };
    for v in Variant::all() {
        if v.supported() {
            continue;
        }
        // Must run and must match scalar exactly: for_call() rewrites it.
        if let Some(err) = check_bit_identical_pair(v, Variant::Scalar, &case) {
            panic!("unsupported {v:?} did not degrade to scalar: {err}");
        }
    }
}

/// Scalar and SSE2 execute the identical per-lane mul-then-add sequence
/// in the identical order, so they must agree to the last bit across the
/// whole battery — not merely within ULP tolerance. AVX2 uses FMA and is
/// deliberately excluded (fused rounding differs by construction).
#[test]
fn scalar_and_sse2_are_bit_identical_across_the_battery() {
    if !Variant::Sse2.supported() {
        eprintln!("skipping: sse2 not supported on this host");
        return;
    }
    run_property("scalar≡sse2", 48, |c| {
        check_bit_identical_pair(Variant::Scalar, Variant::Sse2, c)
    });
}

/// The exact shapes the committed golden vectors flow through (batch
/// chunk geometry: 50 positives × 100 candidates × d, and the eval-time
/// transposes of those). Golden tests pin `Variant::Scalar`; this
/// assertion is what licenses running the rest of the suite under
/// `PBG_KERNEL=sse2` without regenerating goldens.
#[test]
fn golden_covered_shapes_are_bit_identical_across_non_fma_variants() {
    if !Variant::Sse2.supported() {
        eprintln!("skipping: sse2 not supported on this host");
        return;
    }
    let golden_shapes = [
        (50, 100, 16),  // chunk scoring: positives × candidates × d
        (100, 50, 16),  // backward transposed
        (50, 100, 100), // paper-default d=100
        (7, 100, 16),   // ragged final chunk
        (1, 1, 16),     // single-edge batch
    ];
    for (idx, &(m, n, k)) in golden_shapes.iter().enumerate() {
        for pad in 0..2usize {
            let case = Case {
                m,
                n,
                k,
                pad_a: pad,
                pad_b: pad,
                pad_o: pad,
                seed: 0x601d + idx as u64,
            };
            if let Some(err) = check_bit_identical_pair(Variant::Scalar, Variant::Sse2, &case) {
                panic!("golden shape {m}x{n}x{k} pad={pad}: {err}");
            }
        }
    }
}

/// The shrinker itself: plant a deliberate disagreement and verify the
/// harness reduces it to a minimal case instead of reporting the original
/// large one.
#[test]
fn shrinker_minimizes_planted_failure() {
    // "Fails" whenever all of m, n, k are nonzero — the minimal such case
    // under our reductions is (1, 1, 1) with no padding.
    let planted = |c: &Case| -> Option<String> {
        if c.m > 0 && c.n > 0 && c.k > 0 {
            Some("planted".into())
        } else {
            None
        }
    };
    let start = Case {
        m: 40,
        n: 24,
        k: 9,
        pad_a: 2,
        pad_b: 1,
        pad_o: 3,
        seed: 7,
    };
    let min = shrink(&start, &planted);
    assert_eq!((min.m, min.n, min.k), (1, 1, 1), "shrunk to {min:?}");
    assert_eq!((min.pad_a, min.pad_b, min.pad_o), (0, 0, 0));
}

/// The ULP comparator itself.
#[test]
fn ulp_comparator_sanity() {
    assert_eq!(ulp_diff(1.0, 1.0), 0);
    assert_eq!(ulp_diff(0.0, -0.0), 0);
    assert_eq!(ulp_diff(1.0, f32::from_bits(1.0f32.to_bits() + 1)), 1);
    assert_eq!(
        ulp_diff(f32::MIN_POSITIVE, -f32::MIN_POSITIVE),
        2 * (f32::MIN_POSITIVE.to_bits() as u64)
    );
    assert_eq!(ulp_diff(f32::NAN, 1.0), u64::MAX);
    assert!(ulp_diff(1.0, 2.0) > 1_000_000);
    // tolerance: adjacent floats pass, grossly wrong values don't
    assert!(within_tolerance(
        1.0,
        f32::from_bits(1.0f32.to_bits() + 3),
        16
    ));
    assert!(!within_tolerance(1.0, 1.1, 16));
}
