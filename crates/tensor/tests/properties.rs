//! Property-based tests for the numeric substrate.

use pbg_tensor::alias::AliasTable;
use pbg_tensor::complex;
use pbg_tensor::matrix::Matrix;
use pbg_tensor::rng::Xoshiro256;
use pbg_tensor::vecmath;
use proptest::prelude::*;

fn vec_f32(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-10.0f32..10.0, len)
}

proptest! {
    #[test]
    fn dot_is_commutative(a in vec_f32(16), b in vec_f32(16)) {
        let ab = vecmath::dot(&a, &b);
        let ba = vecmath::dot(&b, &a);
        prop_assert!((ab - ba).abs() <= 1e-3 * (1.0 + ab.abs()));
    }

    #[test]
    fn dot_is_bilinear(a in vec_f32(8), b in vec_f32(8), alpha in -5.0f32..5.0) {
        let scaled: Vec<f32> = a.iter().map(|x| x * alpha).collect();
        let lhs = vecmath::dot(&scaled, &b);
        let rhs = alpha * vecmath::dot(&a, &b);
        prop_assert!((lhs - rhs).abs() <= 1e-2 * (1.0 + rhs.abs()));
    }

    #[test]
    fn cosine_is_bounded(a in vec_f32(12), b in vec_f32(12)) {
        let c = vecmath::cosine(&a, &b);
        prop_assert!((-1.0001..=1.0001).contains(&c), "cosine {c}");
    }

    #[test]
    fn cosine_is_scale_invariant(a in vec_f32(8), b in vec_f32(8), alpha in 0.1f32..10.0) {
        let scaled: Vec<f32> = a.iter().map(|x| x * alpha).collect();
        let c1 = vecmath::cosine(&a, &b);
        let c2 = vecmath::cosine(&scaled, &b);
        prop_assert!((c1 - c2).abs() < 1e-3, "{c1} vs {c2}");
    }

    #[test]
    fn normalize_yields_unit_or_zero(mut a in vec_f32(8)) {
        vecmath::normalize(&mut a);
        let n = vecmath::norm(&a);
        prop_assert!(n == 0.0 || (n - 1.0).abs() < 1e-4, "norm {n}");
    }

    #[test]
    fn matmul_is_associative_with_vector(
        a in proptest::collection::vec(-2.0f32..2.0, 12),
        b in proptest::collection::vec(-2.0f32..2.0, 12),
        x in proptest::collection::vec(-2.0f32..2.0, 4),
    ) {
        // (A * B) * x == A * (B * x) for 3x4, 4x3 shapes
        let a = Matrix::from_vec(3, 4, a);
        let b = Matrix::from_vec(4, 3, b);
        let x = Matrix::from_vec(3, 1, {
            let mut v = x; v.truncate(3); while v.len() < 3 { v.push(0.0); } v
        });
        let lhs = a.matmul(&b).matmul(&x);
        let rhs = a.matmul(&b.matmul(&x));
        for i in 0..3 {
            prop_assert!((lhs.row(i)[0] - rhs.row(i)[0]).abs() < 1e-2);
        }
    }

    #[test]
    fn matmul_nt_entry_is_row_dot(
        a in proptest::collection::vec(-3.0f32..3.0, 6),
        b in proptest::collection::vec(-3.0f32..3.0, 9),
    ) {
        let a = Matrix::from_vec(2, 3, a);
        let b = Matrix::from_vec(3, 3, b);
        let c = a.matmul_nt(&b);
        for i in 0..2 {
            for j in 0..3 {
                let expect = vecmath::dot(a.row(i), b.row(j));
                prop_assert!((c.row(i)[j] - expect).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn complex_hadamard_norm_is_product_of_norms(
        a in vec_f32(8), b in vec_f32(8),
    ) {
        // |a ⊙ b|_k = |a|_k |b|_k per complex element
        let mut out = vec![0.0; 8];
        complex::complex_hadamard(&a, &b, &mut out);
        for k in (0..8).step_by(2) {
            let na = (a[k] * a[k] + a[k+1] * a[k+1]).sqrt();
            let nb = (b[k] * b[k] + b[k+1] * b[k+1]).sqrt();
            let no = (out[k] * out[k] + out[k+1] * out[k+1]).sqrt();
            prop_assert!((no - na * nb).abs() < 1e-2 * (1.0 + na * nb));
        }
    }

    #[test]
    fn alias_table_only_samples_positive_weights(
        weights in proptest::collection::vec(0.0f32..5.0, 1..40),
        seed in 0u64..1000,
    ) {
        let table = AliasTable::new(&weights);
        let total: f32 = weights.iter().sum();
        let mut rng = Xoshiro256::seed_from_u64(seed);
        for _ in 0..200 {
            let i = table.sample(&mut rng);
            prop_assert!(i < weights.len());
            if total > 0.0 {
                prop_assert!(weights[i] > 0.0, "sampled zero-weight index {i}");
            }
        }
    }
}
