//! The telemetry flop counter must be dispatch-invariant.
//!
//! `trainer.mflops` is derived from `kernels::flops_executed()` deltas, so
//! if the SIMD paths counted work differently from scalar the gauge would
//! silently change meaning with `PBG_KERNEL`. Counting happens in the
//! `_with` entry points *above* the variant dispatch, so every variant
//! reports the same exact `2·m·n·k` (matmul) and `4·k·nnz` (score_grads)
//! totals by construction — this binary pins that down.
//!
//! This lives in its own test binary because the counter is process-global:
//! the library's unit tests run kernels concurrently and would pollute the
//! deltas. Tests here run within one binary and measure serially.

use pbg_tensor::kernels::{self, Variant};
use pbg_tensor::rng::Xoshiro256;

/// Runs a fixed workload under `v` and returns the counter delta.
fn flops_for(v: Variant) -> u64 {
    let (m, n, k) = (37, 29, 53);
    let mut rng = Xoshiro256::seed_from_u64(0xf10b);
    let a: Vec<f32> = (0..m * k).map(|_| rng.gen_normal()).collect();
    let bt: Vec<f32> = (0..n * k).map(|_| rng.gen_normal()).collect();
    let b: Vec<f32> = (0..k * n).map(|_| rng.gen_normal()).collect();
    // Same seeded sparsity for every variant: nnz is identical, so the
    // score_grads count must be too.
    let mut g: Vec<f32> = (0..m * n).map(|_| rng.gen_normal()).collect();
    for (i, gv) in g.iter_mut().enumerate() {
        if i % 3 == 0 {
            *gv = 0.0;
        }
    }
    let mut out = vec![0.0f32; m * n];
    let mut ga = vec![0.0f32; m * k];
    let mut gb = vec![0.0f32; n * k];

    let before = kernels::flops_executed();
    kernels::matmul_nt_with(v, m, n, k, &a, k, &bt, k, &mut out, n);
    kernels::matmul_with(v, m, n, k, &a, k, &b, n, &mut out, n);
    kernels::score_grads_with(v, m, n, k, &a, k, &bt, k, &g, n, &mut ga, k, &mut gb, k);
    kernels::flops_executed() - before
}

#[test]
fn flop_counter_is_identical_across_all_variants() {
    let (m, n, k) = (37u64, 29u64, 53u64);
    let nnz = {
        // i % 3 == 0 entries were zeroed and are skipped by the kernel.
        let total = m * n;
        total - total.div_ceil(3)
    };
    let expected = 2 * m * n * k  // matmul_nt
        + 2 * m * n * k           // matmul
        + 4 * k * nnz; // score_grads: dot + two axpys per nonzero

    // Every variant — including ones this CPU can't run, which degrade to
    // scalar per call — must report the exact analytic count.
    for v in Variant::all() {
        let got = flops_for(v);
        assert_eq!(
            got, expected,
            "variant {v:?} reported {got} flops, expected {expected}"
        );
    }
}
