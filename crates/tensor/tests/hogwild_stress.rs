//! Concurrency stress tests for the HOGWILD parameter store and the
//! threaded kernel row-split.
//!
//! [`HogwildArray`] deliberately allows benign data races (Recht et al.,
//! 2011): `add_to_row` is a racy read-modify-write that may *lose*
//! concurrent updates, but because every element is an `AtomicU32` it can
//! never *tear* — a reader always observes some value that was actually
//! written, never a byte-mashup of two writes. These tests pin that
//! boundary down under real contention:
//!
//! - all writers only ever store integer-valued floats, so any observed
//!   non-integer (or out-of-range) value would be a torn read;
//! - lost updates are bounded: the final cell value never exceeds the
//!   total number of increments, and `fetch_add` (a CAS loop) loses none;
//! - the scoped-thread kernel split stays bit-identical to the serial
//!   kernel for every thread count while other threads hammer the source
//!   buffers' sibling cache lines.
//!
//! Thread interleaving is scheduler-dependent, so the *lossiness* itself
//! is not asserted (on a single hardware thread updates may happen to
//! serialize); only the invariants that must hold on every interleaving
//! are.

use std::sync::atomic::{AtomicBool, Ordering};
use std::thread;

use pbg_tensor::affinity::{pin_current_thread, CorePlan};
use pbg_tensor::hogwild::HogwildArray;
use pbg_tensor::kernels::{matmul_nt_packed, matmul_nt_packed_threaded, PackedNt};
use pbg_tensor::rng::Xoshiro256;

const THREADS: usize = 8;
const INCREMENTS: usize = 2_000;

/// A float written by these tests is always a whole number; seeing
/// anything else means a torn read, which `AtomicU32` must prevent.
fn assert_untorn(v: f32, max: f32, what: &str) {
    assert!(
        v.fract() == 0.0 && (0.0..=max).contains(&v),
        "{what}: observed torn/corrupt value {v} (expected integer in [0, {max}])"
    );
}

#[test]
fn fetch_add_under_contention_loses_nothing() {
    let arr = HogwildArray::zeros(2, 4);
    thread::scope(|scope| {
        for _ in 0..THREADS {
            scope.spawn(|| {
                for i in 0..INCREMENTS {
                    arr.fetch_add((i / 4) % 2, i % 4, 1.0);
                }
            });
        }
    });
    // CAS-loop adds are exact: every increment lands.
    let total: f32 = arr.to_vec().iter().sum();
    assert_eq!(total, (THREADS * INCREMENTS) as f32);
    // Per-cell: i cycles through all 8 (row, col) cells, so each received
    // exactly THREADS * INCREMENTS / 8 increments.
    for row in 0..2 {
        for col in 0..4 {
            assert_eq!(arr.get(row, col), (THREADS * INCREMENTS / 8) as f32);
        }
    }
}

#[test]
fn add_to_row_never_tears_and_bounds_lost_updates() {
    let cols = 16;
    let arr = HogwildArray::zeros(1, cols);
    let max = (THREADS * INCREMENTS) as f32;
    let stop = AtomicBool::new(false);
    thread::scope(|outer| {
        // Reader: continuously snapshot the row mid-race until told to stop.
        outer.spawn(|| {
            let mut buf = vec![0.0f32; cols];
            while !stop.load(Ordering::Relaxed) {
                arr.read_row_into(0, &mut buf);
                for &v in &buf {
                    assert_untorn(v, max, "mid-race read_row_into");
                }
            }
        });
        // Writers: racy += 1.0 on every element of the row. Updates may
        // be lost, but no write can tear. The inner scope joins them, and
        // only then is the reader released.
        thread::scope(|inner| {
            for _ in 0..THREADS {
                inner.spawn(|| {
                    let ones = vec![1.0f32; cols];
                    for _ in 0..INCREMENTS {
                        arr.add_to_row(0, 1.0, &ones);
                    }
                });
            }
        });
        stop.store(true, Ordering::Relaxed);
    });
    for col in 0..cols {
        let v = arr.get(0, col);
        assert_untorn(v, max, "final value");
        // At least one thread's final increment survives; with any
        // interleaving the cell can't end below 1.
        assert!(v >= 1.0, "cell {col} lost every single update: {v}");
    }
}

#[test]
fn write_row_elements_are_never_torn() {
    // Each writer stores a row filled with its own tag value; elements of
    // a snapshot may mix tags (write_row is not atomic as a row) but each
    // element must be exactly one of the tags.
    let cols = 8;
    let arr = HogwildArray::from_vec(1, cols, vec![1.0; cols]);
    let tags: Vec<f32> = (1..=THREADS).map(|t| t as f32).collect();
    let arr = &arr;
    thread::scope(|scope| {
        for &tag in &tags {
            scope.spawn(move || {
                let row = vec![tag; cols];
                for _ in 0..INCREMENTS {
                    arr.write_row(0, &row);
                }
            });
        }
        scope.spawn(|| {
            let mut buf = vec![0.0f32; cols];
            for _ in 0..INCREMENTS {
                arr.read_row_into(0, &mut buf);
                for &v in &buf {
                    assert!(
                        v.fract() == 0.0 && v >= 1.0 && v <= THREADS as f32,
                        "observed value {v} was never written by any thread"
                    );
                }
            }
        });
    });
}

/// The HOGWILD invariants under the production affinity layout: every
/// writer pins itself to `CorePlan::worker_core(tid)` exactly as
/// `train_bucket` workers do. Pinning changes placement only — torn reads
/// stay impossible and lost updates stay bounded. Pin failures (restricted
/// sandboxes, shrunk cpusets) degrade to unpinned, matching production.
#[test]
fn pinned_writers_never_tear_and_bound_lost_updates() {
    let cols = 16;
    let arr = HogwildArray::zeros(1, cols);
    let max = (THREADS * INCREMENTS) as f32;
    let plan = CorePlan::detect();
    thread::scope(|scope| {
        for tid in 0..THREADS {
            let arr = &arr;
            scope.spawn(move || {
                if let Err(e) = pin_current_thread(plan.worker_core(tid)) {
                    eprintln!("worker {tid} not pinned ({e}); invariants must hold anyway");
                }
                let ones = vec![1.0f32; cols];
                for _ in 0..INCREMENTS {
                    arr.add_to_row(0, 1.0, &ones);
                }
            });
        }
    });
    for col in 0..cols {
        let v = arr.get(0, col);
        assert_untorn(v, max, "pinned final value");
        assert!(v >= 1.0, "cell {col} lost every single update: {v}");
    }
    // fetch_add stays exact when every contender shares (or fights over)
    // pinned cores: the CAS loop loses nothing regardless of placement.
    let exact = HogwildArray::zeros(1, 4);
    thread::scope(|scope| {
        for tid in 0..THREADS {
            let exact = &exact;
            scope.spawn(move || {
                let _ = pin_current_thread(plan.worker_core(tid));
                for i in 0..INCREMENTS {
                    exact.fetch_add(0, i % 4, 1.0);
                }
            });
        }
    });
    let total: f32 = exact.to_vec().iter().sum();
    assert_eq!(total, (THREADS * INCREMENTS) as f32);
}

/// `threads = 1` must produce bit-identical kernel output whether the
/// caller is pinned or free — pinning is placement, not arithmetic. This
/// is the property that lets `--pin-cores` default off without forking
/// the golden vectors.
#[test]
fn single_thread_pinned_kernel_is_bit_identical_to_unpinned() {
    let (m, n, k) = (96, 40, 32);
    let mut rng = Xoshiro256::seed_from_u64(0xaff1);
    let a: Vec<f32> = (0..m * k).map(|_| rng.gen_normal()).collect();
    let b: Vec<f32> = (0..n * k).map(|_| rng.gen_normal()).collect();
    let packed = PackedNt::pack(n, k, &b, k);

    // Unpinned, on the harness thread.
    let mut unpinned = vec![0.0f32; m * n];
    matmul_nt_packed_threaded(m, k, &a, k, &packed, &mut unpinned, n, 1);

    // Pinned, on a dedicated thread (so the harness thread's mask is
    // never modified).
    let plan = CorePlan::detect();
    let (a_ref, packed_ref) = (&a, &packed);
    let pinned = thread::scope(|scope| {
        scope
            .spawn(move || {
                if let Err(e) = pin_current_thread(plan.worker_core(0)) {
                    eprintln!("not pinned ({e}); identity must hold anyway");
                }
                let mut out = vec![f32::NAN; m * n];
                matmul_nt_packed_threaded(m, k, a_ref, k, packed_ref, &mut out, n, 1);
                out
            })
            .join()
            .expect("pinned kernel thread panicked")
    });
    for (i, (&p, &u)) in pinned.iter().zip(&unpinned).enumerate() {
        assert_eq!(
            p.to_bits(),
            u.to_bits(),
            "element {i}: pinned {p} != unpinned {u}"
        );
    }
}

#[test]
fn threaded_kernel_split_is_bit_identical_under_memory_pressure() {
    // A shape big enough for a real multi-block split (m > MC).
    let (m, n, k) = (192, 64, 48);
    let mut rng = Xoshiro256::seed_from_u64(0x57e5);
    let a: Vec<f32> = (0..m * k).map(|_| rng.gen_normal()).collect();
    let b: Vec<f32> = (0..n * k).map(|_| rng.gen_normal()).collect();
    let packed = PackedNt::pack(n, k, &b, k);

    let mut serial = vec![0.0f32; m * n];
    matmul_nt_packed(m, k, &a, k, &packed, &mut serial, n);

    // Hammer an adjacent HogwildArray from background threads while the
    // split kernel runs, so the kernel's reads/writes share the memory
    // system with racing atomics.
    let noise = HogwildArray::zeros(4, 64);
    let stop = AtomicBool::new(false);
    let (noise_ref, stop_ref) = (&noise, &stop);
    thread::scope(|scope| {
        for t in 0..2 {
            scope.spawn(move || {
                let delta = vec![1.0f32; 64];
                while !stop_ref.load(Ordering::Relaxed) {
                    noise_ref.add_to_row(t, 1.0, &delta);
                }
            });
        }
        for threads in [1, 2, 3, 4, 7] {
            let mut out = vec![f32::NAN; m * n];
            matmul_nt_packed_threaded(m, k, &a, k, &packed, &mut out, n, threads);
            for (i, (&got, &want)) in out.iter().zip(&serial).enumerate() {
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "threads={threads}, element {i}: {got} != serial {want}"
                );
            }
        }
        stop.store(true, Ordering::Relaxed);
    });
}
