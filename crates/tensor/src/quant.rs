//! Lossy storage precision for embedding rows: f16 and int8 codecs.
//!
//! Training compute and Adagrad state stay f32 everywhere; precision is
//! purely a *storage* property — checkpoint shards, DiskStore swap
//! files, and `pbg-net` chunk streams can hold rows at reduced width
//! and dequantize back into the resident f32 working set on load.
//!
//! Two compressed encodings, both zero-dependency:
//!
//! - [`Precision::F16`]: IEEE 754 binary16, converted with
//!   round-to-nearest-even. Relative round-trip error for normal values
//!   is ≤ 2⁻¹¹; ±inf and NaN are preserved, values beyond ±65504
//!   overflow to ±inf, and values under the subnormal range flush to
//!   signed zero.
//! - [`Precision::Int8`]: symmetric per-row quantization with an f32
//!   absmax scale (`scale = absmax / 127`). Finite values round-trip
//!   within `scale / 2` absolute error; NaN encodes to 0 and ±inf
//!   saturates to ±absmax. The scale is computed over *finite* values
//!   only, so one stray inf cannot zero out a whole row.
//!
//! Block layout ([`encode_rows`] / [`decode_rows`]):
//!
//! ```text
//! f32   rows*cols   f32 LE            (identity; byte-compatible with v2)
//! f16   rows*cols   u16 LE
//! int8  rows        f32 LE scales     (scale block first, then the
//!       rows*cols   i8                 quantized row bytes)
//! ```
//!
//! The scale block leads so [`decode_row_into`] can service random row
//! access over a memory-mapped shard with two disjoint reads and no
//! scan: scale at `i*4`, row bytes at `rows*4 + i*cols`.

use std::fmt;

/// Storage width for embedding-partition payloads.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub enum Precision {
    /// Full f32 rows — lossless, the default, byte-identical to the
    /// pre-quantization formats.
    #[default]
    F32,
    /// IEEE binary16 rows, round-to-nearest-even.
    F16,
    /// Symmetric int8 rows with a per-row f32 absmax scale.
    Int8,
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl Precision {
    /// Stable on-disk / on-wire tag. Never reorder.
    pub fn tag(self) -> u8 {
        match self {
            Precision::F32 => 0,
            Precision::F16 => 1,
            Precision::Int8 => 2,
        }
    }

    /// Inverse of [`Precision::tag`]; `None` for unknown tags.
    pub fn from_tag(tag: u8) -> Option<Precision> {
        match tag {
            0 => Some(Precision::F32),
            1 => Some(Precision::F16),
            2 => Some(Precision::Int8),
            _ => None,
        }
    }

    /// CLI / config spelling.
    pub fn name(self) -> &'static str {
        match self {
            Precision::F32 => "f32",
            Precision::F16 => "f16",
            Precision::Int8 => "int8",
        }
    }

    /// Parses the CLI / config spelling produced by [`Precision::name`].
    pub fn parse(s: &str) -> Option<Precision> {
        match s {
            "f32" => Some(Precision::F32),
            "f16" => Some(Precision::F16),
            "int8" => Some(Precision::Int8),
            _ => None,
        }
    }

    /// Bytes per stored element (excluding the int8 scale block).
    pub fn element_bytes(self) -> usize {
        match self {
            Precision::F32 => 4,
            Precision::F16 => 2,
            Precision::Int8 => 1,
        }
    }

    /// Encoded size of a `rows × cols` block, `None` on overflow.
    pub fn payload_bytes(self, rows: usize, cols: usize) -> Option<usize> {
        let elems = rows.checked_mul(cols)?;
        let data = elems.checked_mul(self.element_bytes())?;
        match self {
            Precision::Int8 => rows.checked_mul(4)?.checked_add(data),
            _ => Some(data),
        }
    }
}

/// Converts an f32 to IEEE binary16 bits with round-to-nearest-even.
pub fn f16_from_f32(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let mant = bits & 0x007f_ffff;
    if exp == 0xff {
        // inf stays inf; NaN keeps its top payload bits but always sets
        // a mantissa bit so it cannot silently become inf
        return if mant == 0 {
            sign | 0x7c00
        } else {
            sign | 0x7c00 | 0x0200 | ((mant >> 13) as u16 & 0x03ff)
        };
    }
    let e = exp - 127;
    if e >= 16 {
        return sign | 0x7c00; // beyond ±65504: overflow to inf
    }
    if e >= -14 {
        // normal half: round the 23-bit mantissa down to 10 bits; a
        // carry out of the mantissa bumps the exponent (and can reach
        // inf), which the packed representation handles for free
        let mut out = (((e + 15) as u32) << 10) | (mant >> 13);
        let round = mant & 0x1fff;
        if round > 0x1000 || (round == 0x1000 && out & 1 != 0) {
            out += 1;
        }
        return sign | out as u16;
    }
    if e >= -25 {
        // subnormal half: shift the full significand (implicit bit made
        // explicit) into place, rounding the dropped tail to even
        let m = mant | 0x0080_0000;
        let shift = (13 - 14 - e) as u32; // 14..=24
        let mut out = m >> shift;
        let halfway = 1u32 << (shift - 1);
        let round = m & ((1u32 << shift) - 1);
        if round > halfway || (round == halfway && out & 1 != 0) {
            out += 1; // may round up into the smallest normal — still valid
        }
        return sign | out as u16;
    }
    sign // underflow to signed zero
}

/// Converts IEEE binary16 bits back to f32 (exact — every f16 value is
/// representable in f32).
pub fn f16_to_f32(bits: u16) -> f32 {
    let sign = ((bits & 0x8000) as u32) << 16;
    let exp = ((bits >> 10) & 0x1f) as u32;
    let mant = (bits & 0x03ff) as u32;
    let out = if exp == 0x1f {
        sign | 0x7f80_0000 | (mant << 13) // inf / NaN
    } else if exp == 0 {
        if mant == 0 {
            sign
        } else {
            // subnormal: value = mant × 2⁻²⁴; normalize around the
            // leading set bit at position p
            let p = 31 - mant.leading_zeros();
            let m32 = (mant << (23 - p)) & 0x007f_ffff;
            sign | ((p + 103) << 23) | m32
        }
    } else {
        sign | ((exp + 112) << 23) | (mant << 13)
    };
    f32::from_bits(out)
}

/// Per-row int8 scale: absmax over *finite* values divided by 127.
/// Zero when the row has no finite non-zero value.
pub fn int8_scale(row: &[f32]) -> f32 {
    let mut absmax = 0.0f32;
    for &v in row {
        if v.is_finite() {
            absmax = absmax.max(v.abs());
        }
    }
    absmax / 127.0
}

/// Quantizes one value against a row scale. NaN maps to 0, ±inf
/// saturates to ±127, and a zero scale collapses everything to 0.
pub fn int8_quantize(v: f32, scale: f32) -> i8 {
    if scale == 0.0 {
        return 0;
    }
    // NaN survives round() and clamp(), then the saturating `as` cast
    // turns it into 0; ±inf clamps to ±127
    (v / scale).round().clamp(-127.0, 127.0) as i8
}

/// Inverse of [`int8_quantize`].
pub fn int8_dequantize(q: i8, scale: f32) -> f32 {
    f32::from(q) * scale
}

/// Encodes a `rows × cols` f32 block at `precision`, appending to
/// `out`. `values.len()` must equal `rows * cols`.
pub fn encode_rows(
    precision: Precision,
    values: &[f32],
    rows: usize,
    cols: usize,
    out: &mut Vec<u8>,
) {
    assert_eq!(values.len(), rows * cols, "block shape mismatch");
    match precision {
        Precision::F32 => {
            out.reserve(values.len() * 4);
            for &v in values {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        Precision::F16 => {
            out.reserve(values.len() * 2);
            for &v in values {
                out.extend_from_slice(&f16_from_f32(v).to_le_bytes());
            }
        }
        Precision::Int8 => {
            out.reserve(rows * 4 + values.len());
            // iterate by index, not chunks_exact: a cols == 0 block still
            // owes `rows` scale entries per `payload_bytes`
            let mut scales = Vec::with_capacity(rows);
            for i in 0..rows {
                let s = int8_scale(&values[i * cols..(i + 1) * cols]);
                scales.push(s);
                out.extend_from_slice(&s.to_le_bytes());
            }
            for (i, &s) in scales.iter().enumerate() {
                for &v in &values[i * cols..(i + 1) * cols] {
                    out.push(int8_quantize(v, s) as u8);
                }
            }
        }
    }
}

/// Decodes a block produced by [`encode_rows`]. The byte length must
/// match [`Precision::payload_bytes`] exactly.
pub fn decode_rows(
    precision: Precision,
    bytes: &[u8],
    rows: usize,
    cols: usize,
) -> Result<Vec<f32>, String> {
    let want = precision
        .payload_bytes(rows, cols)
        .ok_or_else(|| format!("block shape {rows}x{cols} overflows"))?;
    if bytes.len() != want {
        return Err(format!(
            "{} block shape {rows}x{cols} needs {want} bytes, have {}",
            precision,
            bytes.len()
        ));
    }
    let mut out = vec![0.0f32; rows * cols];
    for i in 0..rows {
        decode_row_unchecked(
            precision,
            bytes,
            rows,
            cols,
            i,
            &mut out[i * cols..(i + 1) * cols],
        );
    }
    Ok(out)
}

/// Decodes row `i` of an encoded block into `out` (`out.len() == cols`).
/// Random access: reads only the bytes belonging to that row (plus its
/// scale for int8), so it works directly against a memory-mapped shard.
pub fn decode_row_into(
    precision: Precision,
    bytes: &[u8],
    rows: usize,
    cols: usize,
    i: usize,
    out: &mut [f32],
) -> Result<(), String> {
    let want = precision
        .payload_bytes(rows, cols)
        .ok_or_else(|| format!("block shape {rows}x{cols} overflows"))?;
    if bytes.len() != want {
        return Err(format!(
            "{precision} block shape {rows}x{cols} needs {want} bytes, have {}",
            bytes.len()
        ));
    }
    if i >= rows || out.len() != cols {
        return Err(format!(
            "row {i} of {rows} into a {}-wide buffer (cols {cols})",
            out.len()
        ));
    }
    decode_row_unchecked(precision, bytes, rows, cols, i, out);
    Ok(())
}

fn decode_row_unchecked(
    precision: Precision,
    bytes: &[u8],
    rows: usize,
    cols: usize,
    i: usize,
    out: &mut [f32],
) {
    match precision {
        Precision::F32 => {
            let start = i * cols * 4;
            for (o, c) in out
                .iter_mut()
                .zip(bytes[start..start + cols * 4].chunks_exact(4))
            {
                *o = f32::from_le_bytes(c.try_into().unwrap());
            }
        }
        Precision::F16 => {
            let start = i * cols * 2;
            for (o, c) in out
                .iter_mut()
                .zip(bytes[start..start + cols * 2].chunks_exact(2))
            {
                *o = f16_to_f32(u16::from_le_bytes(c.try_into().unwrap()));
            }
        }
        Precision::Int8 => {
            let scale = f32::from_le_bytes(bytes[i * 4..i * 4 + 4].try_into().unwrap());
            let start = rows * 4 + i * cols;
            for (o, &b) in out.iter_mut().zip(&bytes[start..start + cols]) {
                *o = int8_dequantize(b as i8, scale);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f16_preserves_specials() {
        assert_eq!(f16_from_f32(f32::INFINITY), 0x7c00);
        assert_eq!(f16_from_f32(f32::NEG_INFINITY), 0xfc00);
        assert_eq!(f16_from_f32(0.0), 0x0000);
        assert_eq!(f16_from_f32(-0.0), 0x8000);
        let nan = f16_from_f32(f32::NAN);
        assert_eq!(nan & 0x7c00, 0x7c00);
        assert_ne!(nan & 0x03ff, 0, "NaN must keep a mantissa bit");
        assert!(f16_to_f32(nan).is_nan());
        assert_eq!(f16_to_f32(0x7c00), f32::INFINITY);
        assert_eq!(f16_to_f32(0xfc00), f32::NEG_INFINITY);
    }

    #[test]
    fn f16_known_values() {
        assert_eq!(f16_from_f32(1.0), 0x3c00);
        assert_eq!(f16_from_f32(-2.0), 0xc000);
        assert_eq!(f16_from_f32(65504.0), 0x7bff); // largest finite half
        assert_eq!(f16_from_f32(65520.0), 0x7c00); // rounds up to inf
        assert_eq!(f16_from_f32(5.960_464_5e-8), 0x0001); // smallest subnormal
        assert_eq!(f16_from_f32(2.0f32.powi(-26)), 0x0000); // halfway, ties to even
        assert_eq!(f16_to_f32(0x3c00), 1.0);
        assert_eq!(f16_to_f32(0x0001), 2.0f32.powi(-24));
        assert_eq!(f16_to_f32(0x0400), 2.0f32.powi(-14)); // smallest normal
    }

    #[test]
    fn every_f16_bit_pattern_roundtrips_through_f32() {
        for bits in 0..=u16::MAX {
            let x = f16_to_f32(bits);
            let back = f16_from_f32(x);
            if x.is_nan() {
                assert!(f16_to_f32(back).is_nan(), "{bits:#06x}");
            } else {
                assert_eq!(back, bits, "{bits:#06x} -> {x} -> {back:#06x}");
            }
        }
    }

    #[test]
    fn int8_roundtrip_error_is_bounded_by_half_scale() {
        let row = [1.0f32, -3.5, 0.25, 127.0, -126.9, 0.0];
        let scale = int8_scale(&row);
        for &v in &row {
            let back = int8_dequantize(int8_quantize(v, scale), scale);
            assert!((back - v).abs() <= scale / 2.0 + 1e-9, "{v} -> {back}");
        }
    }

    #[test]
    fn int8_scale_ignores_non_finite() {
        assert_eq!(int8_scale(&[f32::INFINITY, 2.0, f32::NAN]), 2.0 / 127.0);
        let s = int8_scale(&[1.0]);
        assert_eq!(int8_quantize(f32::NAN, s), 0);
        assert_eq!(int8_quantize(f32::INFINITY, s), 127);
        assert_eq!(int8_quantize(f32::NEG_INFINITY, s), -127);
        assert_eq!(int8_scale(&[f32::NAN, f32::INFINITY]), 0.0);
        assert_eq!(int8_quantize(5.0, 0.0), 0);
    }

    #[test]
    fn block_roundtrip_and_row_access_agree() {
        let rows = 7;
        let cols = 5;
        let values: Vec<f32> = (0..rows * cols).map(|i| (i as f32 - 17.0) * 0.37).collect();
        for p in [Precision::F32, Precision::F16, Precision::Int8] {
            let mut bytes = Vec::new();
            encode_rows(p, &values, rows, cols, &mut bytes);
            assert_eq!(bytes.len(), p.payload_bytes(rows, cols).unwrap());
            let full = decode_rows(p, &bytes, rows, cols).unwrap();
            let mut row = vec![0.0f32; cols];
            for i in 0..rows {
                decode_row_into(p, &bytes, rows, cols, i, &mut row).unwrap();
                assert_eq!(&full[i * cols..(i + 1) * cols], &row[..], "{p} row {i}");
            }
            if p == Precision::F32 {
                assert_eq!(full, values, "f32 must be lossless");
            }
        }
    }

    #[test]
    fn decode_rejects_wrong_lengths() {
        let values = [1.0f32; 6];
        let mut bytes = Vec::new();
        encode_rows(Precision::F16, &values, 2, 3, &mut bytes);
        assert!(decode_rows(Precision::F16, &bytes[..bytes.len() - 1], 2, 3).is_err());
        assert!(decode_rows(Precision::F16, &bytes, 3, 3).is_err());
        let mut row = [0.0f32; 3];
        assert!(decode_row_into(Precision::F16, &bytes, 2, 3, 2, &mut row).is_err());
        assert!(decode_row_into(Precision::F16, &bytes, 2, 3, 0, &mut [0.0; 2]).is_err());
    }

    #[test]
    fn tags_and_names_are_stable() {
        for p in [Precision::F32, Precision::F16, Precision::Int8] {
            assert_eq!(Precision::from_tag(p.tag()), Some(p));
            assert_eq!(Precision::parse(p.name()), Some(p));
        }
        assert_eq!(Precision::from_tag(3), None);
        assert_eq!(Precision::parse("f64"), None);
        assert_eq!(
            (
                Precision::F32.tag(),
                Precision::F16.tag(),
                Precision::Int8.tag()
            ),
            (0, 1, 2)
        );
    }
}
