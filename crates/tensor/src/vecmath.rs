//! Dense f32 vector kernels.
//!
//! These are the elementwise building blocks for scoring and gradient
//! computation. All functions panic if slice lengths differ, because a
//! length mismatch is always a logic error in the calling code.
//!
//! [`dot`] and [`axpy`] — the two kernels hot enough to matter — take
//! the explicit AVX2+FMA path when [`crate::kernels::dispatch`] resolved
//! the process to the `avx2` variant; under `scalar`/`sse2` they run the
//! autovectorized loops below (which are already the bit-exact contract
//! the committed golden vectors were recorded under).

/// AVX2+FMA versions of the two hot vector kernels. Safety argument:
/// feature-gated `unsafe` only — all loads/stores stay inside the slices
/// whose lengths the safe wrappers assert; callers guarantee the gate
/// because the `avx2` variant can only become active via
/// `dispatch` support detection.
#[cfg(target_arch = "x86_64")]
mod simd {
    use std::arch::x86_64::*;

    /// Same 8-lane structure as the scalar loop (one `__m256`
    /// accumulator, same `((l0+l4)+(l1+l5)) + ((l2+l6)+(l3+l7))`
    /// reduction tree), with the mul-add fused.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn dot_avx2(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len();
        let n8 = n & !7;
        let mut acc = _mm256_setzero_ps();
        let mut i = 0;
        while i < n8 {
            acc = _mm256_fmadd_ps(
                _mm256_loadu_ps(a.as_ptr().add(i)),
                _mm256_loadu_ps(b.as_ptr().add(i)),
                acc,
            );
            i += 8;
        }
        let mut lanes = [0.0f32; 8];
        _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
        let mut tail = 0.0f32;
        while i < n {
            tail = a[i].mul_add(b[i], tail);
            i += 1;
        }
        ((lanes[0] + lanes[4]) + (lanes[1] + lanes[5]))
            + ((lanes[2] + lanes[6]) + (lanes[3] + lanes[7]))
            + tail
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn axpy_avx2(alpha: f32, x: &[f32], y: &mut [f32]) {
        let n = x.len();
        let va = _mm256_set1_ps(alpha);
        let n8 = n & !7;
        let mut i = 0;
        while i < n8 {
            let yv = _mm256_loadu_ps(y.as_ptr().add(i));
            let xv = _mm256_loadu_ps(x.as_ptr().add(i));
            _mm256_storeu_ps(y.as_mut_ptr().add(i), _mm256_fmadd_ps(va, xv, yv));
            i += 8;
        }
        while i < n {
            y[i] = alpha.mul_add(x[i], y[i]);
            i += 1;
        }
    }
}

/// True when the process-wide kernel variant is `avx2` (the only variant
/// with explicit vecmath paths; `scalar` and `sse2` share the
/// autovectorized loops, which keeps their bit-identity trivial).
#[cfg(target_arch = "x86_64")]
#[inline]
fn use_avx2() -> bool {
    crate::kernels::dispatch::active() == crate::kernels::Variant::Avx2
}

/// Dot product `<a, b>`.
///
/// # Panics
///
/// Panics if `a.len() != b.len()`.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    #[cfg(target_arch = "x86_64")]
    if use_avx2() {
        // SAFETY: `use_avx2` implies the dispatcher verified avx2+fma.
        return unsafe { simd::dot_avx2(a, b) };
    }
    // Eight independent lanes: the loop body is a straight-line SIMD
    // pattern LLVM vectorizes to packed mul-adds; order is deterministic.
    let n8 = a.len() - a.len() % 8;
    let (a8, a_tail) = a.split_at(n8);
    let (b8, b_tail) = b.split_at(n8);
    let mut acc = [0.0f32; 8];
    for (xa, xb) in a8.chunks_exact(8).zip(b8.chunks_exact(8)) {
        acc[0] += xa[0] * xb[0];
        acc[1] += xa[1] * xb[1];
        acc[2] += xa[2] * xb[2];
        acc[3] += xa[3] * xb[3];
        acc[4] += xa[4] * xb[4];
        acc[5] += xa[5] * xb[5];
        acc[6] += xa[6] * xb[6];
        acc[7] += xa[7] * xb[7];
    }
    let mut tail = 0.0f32;
    for (xa, xb) in a_tail.iter().zip(b_tail) {
        tail += xa * xb;
    }
    ((acc[0] + acc[4]) + (acc[1] + acc[5])) + ((acc[2] + acc[6]) + (acc[3] + acc[7])) + tail
}

/// Squared L2 norm `||a||²`.
#[inline]
pub fn norm_sq(a: &[f32]) -> f32 {
    dot(a, a)
}

/// L2 norm `||a||`.
#[inline]
pub fn norm(a: &[f32]) -> f32 {
    norm_sq(a).sqrt()
}

/// Cosine similarity `<a,b> / (||a|| ||b||)`; `0.0` when either norm is 0.
///
/// # Panics
///
/// Panics if `a.len() != b.len()`.
#[inline]
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let na = norm(a);
    let nb = norm(b);
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot(a, b) / (na * nb)
}

/// `y += alpha * x`.
///
/// # Panics
///
/// Panics if `x.len() != y.len()`.
#[inline]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    #[cfg(target_arch = "x86_64")]
    if use_avx2() {
        // SAFETY: `use_avx2` implies the dispatcher verified avx2+fma.
        unsafe { simd::axpy_avx2(alpha, x, y) };
        return;
    }
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * *xi;
    }
}

/// `y *= alpha`.
#[inline]
pub fn scale(alpha: f32, y: &mut [f32]) {
    for yi in y.iter_mut() {
        *yi *= alpha;
    }
}

/// Elementwise product into `out`: `out[i] = a[i] * b[i]`.
///
/// # Panics
///
/// Panics if lengths differ.
#[inline]
pub fn hadamard(a: &[f32], b: &[f32], out: &mut [f32]) {
    assert_eq!(a.len(), b.len(), "hadamard: length mismatch");
    assert_eq!(a.len(), out.len(), "hadamard: output length mismatch");
    for i in 0..a.len() {
        out[i] = a[i] * b[i];
    }
}

/// Elementwise sum into `out`: `out[i] = a[i] + b[i]`.
///
/// # Panics
///
/// Panics if lengths differ.
#[inline]
pub fn add(a: &[f32], b: &[f32], out: &mut [f32]) {
    assert_eq!(a.len(), b.len(), "add: length mismatch");
    assert_eq!(a.len(), out.len(), "add: output length mismatch");
    for i in 0..a.len() {
        out[i] = a[i] + b[i];
    }
}

/// Normalizes `a` to unit L2 norm in place; leaves a zero vector unchanged.
#[inline]
pub fn normalize(a: &mut [f32]) {
    let n = norm(a);
    if n > 0.0 {
        scale(1.0 / n, a);
    }
}

/// Mean of squared entries — the quantity folded into the paper's row-wise
/// Adagrad accumulator.
#[inline]
pub fn mean_sq(a: &[f32]) -> f32 {
    if a.is_empty() {
        return 0.0;
    }
    norm_sq(a) / a.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f32, b: f32) {
        assert!((a - b).abs() < 1e-5, "{a} != {b}");
    }

    #[test]
    fn dot_basic() {
        assert_close(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn dot_empty() {
        assert_close(dot(&[], &[]), 0.0);
    }

    #[test]
    fn dot_unroll_tail() {
        // length 7 exercises both the unrolled body and the tail
        let a = [1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        assert_close(dot(&a, &a), 7.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn cosine_parallel_is_one() {
        let a = [3.0, 4.0];
        assert_close(cosine(&a, &a), 1.0);
    }

    #[test]
    fn cosine_orthogonal_is_zero() {
        assert_close(cosine(&[1.0, 0.0], &[0.0, 2.0]), 0.0);
    }

    #[test]
    fn cosine_zero_vector_is_zero() {
        assert_close(cosine(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = [1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, [7.0, 9.0]);
    }

    #[test]
    fn normalize_unit_norm() {
        let mut a = [3.0, 4.0];
        normalize(&mut a);
        assert_close(norm(&a), 1.0);
    }

    #[test]
    fn normalize_zero_noop() {
        let mut a = [0.0, 0.0];
        normalize(&mut a);
        assert_eq!(a, [0.0, 0.0]);
    }

    #[test]
    fn hadamard_and_add() {
        let mut out = [0.0; 3];
        hadamard(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], &mut out);
        assert_eq!(out, [4.0, 10.0, 18.0]);
        add(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], &mut out);
        assert_eq!(out, [5.0, 7.0, 9.0]);
    }

    #[test]
    fn mean_sq_basic() {
        assert_close(mean_sq(&[2.0, 4.0]), 10.0);
        assert_close(mean_sq(&[]), 0.0);
    }
}
