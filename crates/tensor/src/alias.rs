//! Alias-method sampling from empirical distributions.
//!
//! PBG samples a fraction `α` of negatives "according to their prevalence
//! in the training data" (§3.1) and evaluation candidates by prevalence as
//! well (§5.4.2). With hundreds of millions of nodes that requires O(1)
//! draws from an arbitrary discrete distribution; Walker's alias method
//! gives exactly that after O(n) preprocessing.

use crate::rng::Xoshiro256;

/// Walker alias table for O(1) sampling from a discrete distribution.
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f32>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds a table from non-negative weights.
    ///
    /// Weights need not be normalized. Zero-weight entries are never
    /// sampled (unless all weights are zero, in which case sampling is
    /// uniform).
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// value, or has more than `u32::MAX` entries.
    pub fn new(weights: &[f32]) -> Self {
        assert!(!weights.is_empty(), "alias table needs at least one weight");
        assert!(weights.len() <= u32::MAX as usize, "too many weights");
        let mut total = 0.0f64;
        for &w in weights {
            assert!(
                w.is_finite() && w >= 0.0,
                "weights must be finite and non-negative"
            );
            total += w as f64;
        }
        let n = weights.len();
        if total == 0.0 {
            // degenerate: uniform
            return AliasTable {
                prob: vec![1.0; n],
                alias: (0..n as u32).collect(),
            };
        }
        let scale = n as f64 / total;
        let mut prob: Vec<f64> = weights.iter().map(|&w| w as f64 * scale).collect();
        let mut alias = vec![0u32; n];
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            alias[s as usize] = l;
            prob[l as usize] -= 1.0 - prob[s as usize];
            if prob[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // leftovers are numerically 1.0
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = 1.0;
            alias[i as usize] = i;
        }
        AliasTable {
            prob: prob.into_iter().map(|p| p as f32).collect(),
            alias,
        }
    }

    /// Builds a table over `n` items from sparse counts `(index, count)`.
    ///
    /// Items not mentioned get weight zero.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range or `n == 0`.
    pub fn from_counts(n: usize, counts: impl IntoIterator<Item = (usize, f32)>) -> Self {
        let mut weights = vec![0.0f32; n];
        for (i, c) in counts {
            assert!(i < n, "count index {i} out of range");
            weights[i] += c;
        }
        AliasTable::new(&weights)
    }

    /// Number of items in the distribution.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// `true` when the table is empty (never constructible; for API
    /// completeness).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one index.
    #[inline]
    pub fn sample(&self, rng: &mut Xoshiro256) -> usize {
        let i = rng.gen_index(self.prob.len());
        if rng.gen_f32() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }

    /// Resident bytes (for memory accounting).
    pub fn bytes(&self) -> usize {
        self.prob.len() * 4 + self.alias.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empirical(table: &AliasTable, draws: usize, seed: u64) -> Vec<f64> {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut counts = vec![0usize; table.len()];
        for _ in 0..draws {
            counts[table.sample(&mut rng)] += 1;
        }
        counts.iter().map(|&c| c as f64 / draws as f64).collect()
    }

    #[test]
    fn uniform_weights_sample_uniformly() {
        let t = AliasTable::new(&[1.0, 1.0, 1.0, 1.0]);
        let freq = empirical(&t, 100_000, 1);
        for f in freq {
            assert!((f - 0.25).abs() < 0.01, "{f}");
        }
    }

    #[test]
    fn skewed_weights_match_distribution() {
        let t = AliasTable::new(&[1.0, 2.0, 3.0, 4.0]);
        let freq = empirical(&t, 200_000, 2);
        let expect = [0.1, 0.2, 0.3, 0.4];
        for (f, e) in freq.iter().zip(expect) {
            assert!((f - e).abs() < 0.01, "{f} vs {e}");
        }
    }

    #[test]
    fn zero_weight_never_sampled() {
        let t = AliasTable::new(&[0.0, 1.0, 0.0, 1.0]);
        let freq = empirical(&t, 50_000, 3);
        assert_eq!(freq[0], 0.0);
        assert_eq!(freq[2], 0.0);
    }

    #[test]
    fn single_item_always_sampled() {
        let t = AliasTable::new(&[5.0]);
        let mut rng = Xoshiro256::seed_from_u64(4);
        for _ in 0..100 {
            assert_eq!(t.sample(&mut rng), 0);
        }
    }

    #[test]
    fn all_zero_weights_fall_back_to_uniform() {
        let t = AliasTable::new(&[0.0, 0.0]);
        let freq = empirical(&t, 50_000, 5);
        assert!((freq[0] - 0.5).abs() < 0.02);
    }

    #[test]
    fn from_counts_accumulates() {
        let t = AliasTable::from_counts(3, [(0, 1.0), (2, 1.0), (2, 2.0)]);
        let freq = empirical(&t, 100_000, 6);
        assert!((freq[0] - 0.25).abs() < 0.01);
        assert_eq!(freq[1], 0.0);
        assert!((freq[2] - 0.75).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "at least one weight")]
    fn empty_panics() {
        let _ = AliasTable::new(&[]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_panics() {
        let _ = AliasTable::new(&[1.0, -1.0]);
    }
}
