//! Numeric substrate for `pbg-rs`, a Rust reproduction of PyTorch-BigGraph.
//!
//! PBG is implemented on top of PyTorch; this crate provides the small set
//! of dense-tensor facilities the system actually needs, from scratch:
//!
//! - [`vecmath`]: vector kernels (dot, cosine, axpy, norms).
//! - [`matrix`]: a row-major f32 [`matrix::Matrix`] with the batched
//!   matrix products used by batched negative sampling (§4.3 of the paper).
//! - [`kernels`]: the cache-blocked, panel-packed matmul kernels behind
//!   [`matrix::Matrix`], a fused score+gradient path
//!   ([`kernels::ScoreGrad`]), an optional scoped-thread row split for
//!   large shapes, runtime-dispatched SIMD microkernels
//!   ([`kernels::dispatch`], `PBG_KERNEL=scalar|sse2|avx2`), and the
//!   naive [`kernels::reference`] oracle the differential test harness
//!   diffs against.
//! - [`affinity`]: `sched_setaffinity`-based core pinning for HOGWILD
//!   workers and the disk I/O thread ([`affinity::CorePlan`]).
//! - [`complex`]: complex Hadamard products for the ComplEx operator.
//! - [`hogwild`]: [`hogwild::HogwildArray`], a lock-free shared f32 store
//!   backed by `AtomicU32` with relaxed ordering — the sound Rust
//!   equivalent of HOGWILD's benign data races (Recht et al., 2011).
//! - [`adagrad`]: Adagrad state with the paper's row-summed accumulator
//!   (§3.1: "sum the accumulated gradient G over each embedding vector").
//! - [`alias`]: O(1) alias-method sampling from empirical distributions
//!   (used to sample negatives by data prevalence).
//! - [`zipf`]: bounded Zipf sampling for heavy-tailed synthetic graphs.
//! - [`rng`]: a tiny, fast, seedable xoshiro-style RNG for hot loops.
//!
//! # Example
//!
//! ```
//! use pbg_tensor::matrix::Matrix;
//!
//! let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
//! let b = Matrix::from_rows(&[&[2.0, 3.0], &[4.0, 5.0]]);
//! let c = a.matmul(&b);
//! assert_eq!(c.row(1), &[4.0, 5.0]);
//! ```

pub mod adagrad;
pub mod affinity;
pub mod alias;
pub mod complex;
pub mod hogwild;
pub mod kernels;
pub mod matrix;
pub mod quant;
pub mod rng;
pub mod topk;
pub mod vecmath;
pub mod zipf;

pub use adagrad::AdagradRow;
pub use alias::AliasTable;
pub use hogwild::HogwildArray;
pub use matrix::Matrix;
pub use quant::Precision;
pub use rng::Xoshiro256;
pub use zipf::Zipf;
