//! Adagrad with PBG's row-summed accumulator.
//!
//! Standard Adagrad keeps one squared-gradient accumulator per parameter.
//! On a graph with billions of node embeddings that doubles memory, so PBG
//! "sums the accumulated gradient G over each embedding vector" (§3.1):
//! each embedding row keeps a *single* scalar accumulator, updated with the
//! mean squared gradient of the row. Small global parameters (relation
//! operators) use full per-element Adagrad.

use crate::hogwild::HogwildArray;
use crate::vecmath;

/// Row-wise Adagrad: one scalar accumulator per embedding row.
///
/// Shared across HOGWILD threads: the accumulator lives in a
/// [`HogwildArray`] column vector and is bumped with a lock-free
/// `fetch_add`, so concurrent threads never lose accumulator mass.
#[derive(Debug)]
pub struct AdagradRow {
    acc: HogwildArray,
    lr: f32,
    eps: f32,
}

impl AdagradRow {
    /// Creates state for `rows` embedding rows with learning rate `lr`.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not finite and positive.
    pub fn new(rows: usize, lr: f32) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        AdagradRow {
            acc: HogwildArray::zeros(rows, 1),
            lr,
            eps: 1e-8,
        }
    }

    /// The configured learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.lr
    }

    /// Number of rows tracked.
    pub fn rows(&self) -> usize {
        self.acc.rows()
    }

    /// Current accumulator value for `row`.
    pub fn accumulator(&self, row: usize) -> f32 {
        self.acc.get(row, 0)
    }

    /// Folds `grad` into the accumulator for `row` and returns the step
    /// size `lr / (sqrt(acc') + eps)` to apply against `grad`.
    ///
    /// The caller then performs `embedding[row] -= step * grad` (typically
    /// via [`HogwildArray::add_to_row`] with `alpha = -step`).
    #[inline]
    pub fn step_size(&self, row: usize, grad: &[f32]) -> f32 {
        let g2 = vecmath::mean_sq(grad);
        let prev = self.acc.fetch_add(row, 0, g2);
        let acc = prev + g2;
        self.lr / (acc.sqrt() + self.eps)
    }

    /// Applies one Adagrad update of `grad` to `row` of `params`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds for `params` or the accumulator.
    #[inline]
    pub fn update(&self, params: &HogwildArray, row: usize, grad: &[f32]) {
        let step = self.step_size(row, grad);
        params.add_to_row(row, -step, grad);
    }

    /// Resets all accumulators to zero (e.g., between epochs in tests).
    pub fn reset(&self) {
        let zeros = vec![0.0; self.acc.len()];
        self.acc.copy_from_slice(&zeros);
    }

    /// Resident bytes of optimizer state.
    pub fn bytes(&self) -> usize {
        self.acc.bytes()
    }

    /// Snapshot of all accumulators (for checkpointing).
    pub fn to_vec(&self) -> Vec<f32> {
        self.acc.to_vec()
    }

    /// Restores accumulators from a checkpoint snapshot.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != rows()`.
    pub fn restore(&self, values: &[f32]) {
        self.acc.copy_from_slice(values);
    }
}

/// Dense per-element Adagrad for small parameter vectors (relation
/// operators, global/featurized entity parameters).
#[derive(Debug, Clone)]
pub struct AdagradDense {
    acc: Vec<f32>,
    lr: f32,
    eps: f32,
}

impl AdagradDense {
    /// Creates state for a parameter vector of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not finite and positive.
    pub fn new(len: usize, lr: f32) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        AdagradDense {
            acc: vec![0.0; len],
            lr,
            eps: 1e-8,
        }
    }

    /// Number of parameters tracked.
    pub fn len(&self) -> usize {
        self.acc.len()
    }

    /// `true` when tracking no parameters.
    pub fn is_empty(&self) -> bool {
        self.acc.is_empty()
    }

    /// Applies one Adagrad update of `grad` to `params`.
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != len()` or `grad.len() != len()`.
    pub fn update(&mut self, params: &mut [f32], grad: &[f32]) {
        assert_eq!(
            params.len(),
            self.acc.len(),
            "update: params length mismatch"
        );
        assert_eq!(grad.len(), self.acc.len(), "update: grad length mismatch");
        for i in 0..grad.len() {
            self.acc[i] += grad[i] * grad[i];
            params[i] -= self.lr / (self.acc[i].sqrt() + self.eps) * grad[i];
        }
    }

    /// Snapshot of accumulators (for checkpointing).
    pub fn accumulators(&self) -> &[f32] {
        &self.acc
    }

    /// Restores accumulators from a snapshot.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != len()`.
    pub fn restore(&mut self, values: &[f32]) {
        assert_eq!(values.len(), self.acc.len(), "restore: length mismatch");
        self.acc.copy_from_slice(values);
    }

    /// Resident bytes of optimizer state.
    pub fn bytes(&self) -> usize {
        self.acc.len() * std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_step_size_is_lr_over_grad_norm() {
        let opt = AdagradRow::new(1, 0.1);
        // grad with mean square 4.0 -> acc 4.0 -> step 0.1 / 2.0
        let step = opt.step_size(0, &[2.0, 2.0]);
        assert!((step - 0.05).abs() < 1e-6);
    }

    #[test]
    fn step_size_shrinks_over_time() {
        let opt = AdagradRow::new(1, 0.1);
        let g = [1.0, 1.0];
        let s1 = opt.step_size(0, &g);
        let s2 = opt.step_size(0, &g);
        let s3 = opt.step_size(0, &g);
        assert!(s1 > s2 && s2 > s3, "{s1} {s2} {s3}");
    }

    #[test]
    fn update_moves_params_against_gradient() {
        let params = HogwildArray::from_vec(1, 2, vec![1.0, 1.0]);
        let opt = AdagradRow::new(1, 0.5);
        opt.update(&params, 0, &[1.0, -1.0]);
        let v = params.to_vec();
        assert!(v[0] < 1.0, "positive grad must decrease param");
        assert!(v[1] > 1.0, "negative grad must increase param");
    }

    #[test]
    fn rows_are_independent() {
        let opt = AdagradRow::new(2, 0.1);
        opt.step_size(0, &[10.0, 10.0]);
        // row 1 untouched: its first step matches a fresh optimizer
        let fresh = AdagradRow::new(1, 0.1);
        assert_eq!(
            opt.step_size(1, &[1.0, 1.0]),
            fresh.step_size(0, &[1.0, 1.0])
        );
    }

    #[test]
    fn reset_restores_initial_step() {
        let opt = AdagradRow::new(1, 0.1);
        let s1 = opt.step_size(0, &[1.0]);
        opt.step_size(0, &[1.0]);
        opt.reset();
        assert_eq!(opt.step_size(0, &[1.0]), s1);
    }

    #[test]
    fn dense_update_matches_reference() {
        let mut opt = AdagradDense::new(2, 0.1);
        let mut p = vec![0.0, 0.0];
        opt.update(&mut p, &[3.0, 4.0]);
        // acc = [9, 16]; step_i = 0.1/sqrt(acc_i) * g_i
        assert!((p[0] - (-0.1 / 3.0 * 3.0)).abs() < 1e-5);
        assert!((p[1] - (-0.1 / 4.0 * 4.0)).abs() < 1e-5);
    }

    #[test]
    fn dense_checkpoint_roundtrip() {
        let mut opt = AdagradDense::new(2, 0.1);
        let mut p = vec![0.0, 0.0];
        opt.update(&mut p, &[1.0, 2.0]);
        let snap = opt.accumulators().to_vec();
        let mut opt2 = AdagradDense::new(2, 0.1);
        opt2.restore(&snap);
        assert_eq!(opt.accumulators(), opt2.accumulators());
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn zero_lr_panics() {
        let _ = AdagradRow::new(1, 0.0);
    }
}
