//! A small, fast, seedable RNG for hot sampling loops.
//!
//! Negative sampling draws millions of random node ids per second per
//! thread; `xoshiro256**` gives excellent statistical quality at a few
//! cycles per draw without pulling a heavyweight generic RNG into the inner
//! loop. It also implements [`rand::RngCore`] so it composes with `rand`
//! distributions where convenient.

use rand::RngCore;

/// `xoshiro256**` pseudo-random generator (Blackman & Vigna).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator seeded from `seed` via SplitMix64 (so any seed,
    /// including 0, yields a well-mixed state).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        Xoshiro256 {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64_raw(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `u64` in `[0, bound)` via Lemire's multiply-shift (unbiased
    /// enough for sampling: bias < 2^-32 for bounds < 2^32).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range: bound must be positive");
        ((self.next_u64_raw() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `usize` index in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn gen_index(&mut self, bound: usize) -> usize {
        self.gen_range(bound as u64) as usize
    }

    /// Uniform `f32` in `[0, 1)`.
    #[inline]
    pub fn gen_f32(&mut self) -> f32 {
        (self.next_u64_raw() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64_raw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Standard normal sample via Box–Muller (used for embedding init and
    /// latent-space datagen).
    #[inline]
    pub fn gen_normal(&mut self) -> f32 {
        let u1 = (self.gen_f64()).max(1e-12);
        let u2 = self.gen_f64();
        ((-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()) as f32
    }

    /// Splits off an independent generator (for per-thread streams).
    pub fn split(&mut self) -> Xoshiro256 {
        Xoshiro256::seed_from_u64(self.next_u64_raw())
    }
}

impl RngCore for Xoshiro256 {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64_raw() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.next_u64_raw()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64_raw().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64_raw().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Xoshiro256::seed_from_u64(42);
        let mut b = Xoshiro256::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64_raw(), b.next_u64_raw());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Xoshiro256::seed_from_u64(1);
        let mut b = Xoshiro256::seed_from_u64(2);
        assert_ne!(a.next_u64_raw(), b.next_u64_raw());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = Xoshiro256::seed_from_u64(7);
        for _ in 0..10_000 {
            assert!(r.gen_range(13) < 13);
        }
    }

    #[test]
    fn gen_f32_in_unit_interval() {
        let mut r = Xoshiro256::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_f32();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_roughly_uniform() {
        let mut r = Xoshiro256::seed_from_u64(3);
        let mut counts = [0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[r.gen_index(10)] += 1;
        }
        for &c in &counts {
            let expected = n / 10;
            assert!(
                (c as i64 - expected as i64).unsigned_abs() < (expected / 10) as u64,
                "bucket count {c} too far from {expected}"
            );
        }
    }

    #[test]
    fn normal_has_zero_mean_unit_var() {
        let mut r = Xoshiro256::seed_from_u64(11);
        let n = 50_000;
        let mut sum = 0.0f64;
        let mut sum_sq = 0.0f64;
        for _ in 0..n {
            let v = r.gen_normal() as f64;
            sum += v;
            sum_sq += v * v;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn split_streams_are_independent() {
        let mut a = Xoshiro256::seed_from_u64(5);
        let mut b = a.split();
        assert_ne!(a.next_u64_raw(), b.next_u64_raw());
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = Xoshiro256::seed_from_u64(9);
        let mut buf = [0u8; 11];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
