//! Core affinity for HOGWILD workers and the disk I/O thread.
//!
//! HOGWILD throughput depends on each worker keeping its working set in
//! one core's private caches; letting the scheduler migrate workers (or
//! letting the DiskStore I/O thread preempt a compute core mid-chunk)
//! costs both locality and the §4.3 lock-free update rate. This module
//! pins threads with `sched_setaffinity`, using the same no-libc-crate
//! `extern "C"` FFI idiom as `storage::MmapPartition`'s `mmap` backing:
//! the symbols come from the C runtime the binary already links.
//!
//! Affinity is strictly a *placement* concern: pinning never changes
//! what a thread computes, only where — `tests/hogwild_stress.rs`
//! asserts pinned results are bit-identical to unpinned. All pinning is
//! best-effort; every failure path degrades to "run unpinned" with an
//! error the caller may log, never a panic.
//!
//! Layout policy ([`CorePlan`]): worker `tid` gets allowed core
//! `tid % cores`, the disk I/O thread gets the *last* allowed core —
//! on a machine with more cores than workers the I/O thread owns a free
//! core; when every core is busy it shares with the highest-numbered
//! worker, keeping core 0 (where worker 0 and most IRQ handlers live)
//! uncontended.

use std::sync::OnceLock;

/// Linux `sched_{get,set}affinity`, no libc crate: glibc's `cpu_set_t`
/// is a fixed 1024-bit mask, represented here as `[u64; 16]`.
#[cfg(target_os = "linux")]
mod sys {
    /// 1024 bits / 64 = 16 words, matching glibc's `cpu_set_t`.
    pub const MASK_WORDS: usize = 16;

    extern "C" {
        // pid 0 = the calling thread (Linux affinity is per-thread).
        fn sched_getaffinity(pid: i32, cpusetsize: usize, mask: *mut u64) -> i32;
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
    }

    pub fn get_mask() -> Option<[u64; MASK_WORDS]> {
        let mut mask = [0u64; MASK_WORDS];
        // SAFETY: `mask` is a valid, writable buffer of exactly the size
        // passed; the kernel writes at most `cpusetsize` bytes into it.
        let rc = unsafe { sched_getaffinity(0, core::mem::size_of_val(&mask), mask.as_mut_ptr()) };
        (rc == 0).then_some(mask)
    }

    pub fn set_mask(mask: &[u64; MASK_WORDS]) -> bool {
        // SAFETY: `mask` is a valid, readable buffer of exactly the size
        // passed; the kernel only reads from it.
        let rc = unsafe { sched_setaffinity(0, core::mem::size_of_val(mask), mask.as_ptr()) };
        rc == 0
    }
}

/// Pins the calling thread to a single CPU core.
///
/// # Errors
///
/// Returns a human-readable error (for logging; callers must treat
/// pinning as best-effort) if the core index is out of mask range, the
/// kernel rejects the mask (e.g. the core is outside this process's
/// cpuset), or the platform has no thread affinity API.
pub fn pin_current_thread(core: usize) -> Result<(), String> {
    #[cfg(target_os = "linux")]
    {
        if core >= sys::MASK_WORDS * 64 {
            return Err(format!("core index {core} exceeds the affinity mask"));
        }
        let mut mask = [0u64; sys::MASK_WORDS];
        mask[core / 64] = 1u64 << (core % 64);
        if sys::set_mask(&mask) {
            Ok(())
        } else {
            Err(format!("sched_setaffinity(core {core}) was rejected"))
        }
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = core;
        Err("thread affinity is only supported on Linux".to_string())
    }
}

/// The set of cores the calling thread is currently allowed on, in
/// ascending order. `None` when the platform can't say.
pub fn current_thread_affinity() -> Option<Vec<usize>> {
    #[cfg(target_os = "linux")]
    {
        let mask = sys::get_mask()?;
        let mut cores = Vec::new();
        for (w, &bits) in mask.iter().enumerate() {
            let mut bits = bits;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                cores.push(w * 64 + b);
                bits &= bits - 1;
            }
        }
        Some(cores)
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Restores the calling thread's affinity to a core set previously read
/// with [`current_thread_affinity`] (used by tests to undo pinning on
/// pooled test-harness threads).
///
/// # Errors
///
/// Same failure modes as [`pin_current_thread`].
pub fn set_current_thread_affinity(cores: &[usize]) -> Result<(), String> {
    #[cfg(target_os = "linux")]
    {
        let mut mask = [0u64; sys::MASK_WORDS];
        for &core in cores {
            if core >= sys::MASK_WORDS * 64 {
                return Err(format!("core index {core} exceeds the affinity mask"));
            }
            mask[core / 64] |= 1u64 << (core % 64);
        }
        if sys::set_mask(&mask) {
            Ok(())
        } else {
            Err("sched_setaffinity(mask) was rejected".to_string())
        }
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = cores;
        Err("thread affinity is only supported on Linux".to_string())
    }
}

/// The placement policy: which allowed core each HOGWILD worker and the
/// disk I/O thread should own.
#[derive(Debug, Clone)]
pub struct CorePlan {
    cores: Vec<usize>,
}

impl CorePlan {
    /// Builds a plan over an explicit allowed-core list (ascending, as
    /// [`current_thread_affinity`] returns). Empty input degrades to a
    /// single core 0.
    pub fn new(cores: Vec<usize>) -> CorePlan {
        if cores.is_empty() {
            CorePlan { cores: vec![0] }
        } else {
            CorePlan { cores }
        }
    }

    /// The process-wide plan over the cores this process is allowed on,
    /// detected once (before any thread pins itself and shrinks its own
    /// view of the mask).
    pub fn detect() -> &'static CorePlan {
        static PLAN: OnceLock<CorePlan> = OnceLock::new();
        PLAN.get_or_init(|| {
            let cores = current_thread_affinity().unwrap_or_default();
            if cores.is_empty() {
                let n = std::thread::available_parallelism().map_or(1, |c| c.get());
                CorePlan::new((0..n).collect())
            } else {
                CorePlan::new(cores)
            }
        })
    }

    /// The allowed cores, ascending.
    pub fn cores(&self) -> &[usize] {
        &self.cores
    }

    /// The core HOGWILD worker `tid` should pin to: round-robin over the
    /// allowed set, so thread counts above the core count still spread
    /// evenly instead of erroring.
    pub fn worker_core(&self, tid: usize) -> usize {
        self.cores[tid % self.cores.len()]
    }

    /// The core the DiskStore I/O thread should pin to: the last allowed
    /// core, i.e. a spare core when one exists, else shared with the
    /// highest-numbered worker.
    pub fn io_core(&self) -> usize {
        *self.cores.last().expect("CorePlan is never empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_cores_round_robin_and_io_takes_last() {
        let plan = CorePlan::new(vec![0, 1, 2, 5]);
        assert_eq!(plan.worker_core(0), 0);
        assert_eq!(plan.worker_core(3), 5);
        assert_eq!(plan.worker_core(4), 0);
        assert_eq!(plan.io_core(), 5);
    }

    #[test]
    fn empty_plan_degrades_to_core_zero() {
        let plan = CorePlan::new(vec![]);
        assert_eq!(plan.cores(), &[0]);
        assert_eq!(plan.worker_core(7), 0);
        assert_eq!(plan.io_core(), 0);
    }

    #[test]
    fn detect_is_never_empty_and_stable() {
        let a = CorePlan::detect();
        assert!(!a.cores().is_empty());
        assert_eq!(a.cores(), CorePlan::detect().cores());
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn pin_and_readback_roundtrip() {
        // Run on a dedicated thread so pinning never leaks into the
        // harness's pooled test threads.
        std::thread::spawn(|| {
            let original = current_thread_affinity().expect("linux must report an affinity mask");
            assert!(!original.is_empty());
            let target = *original.last().unwrap();
            pin_current_thread(target).expect("pinning to an allowed core succeeds");
            assert_eq!(current_thread_affinity().unwrap(), vec![target]);
            set_current_thread_affinity(&original).expect("restore succeeds");
            assert_eq!(current_thread_affinity().unwrap(), original);
        })
        .join()
        .unwrap();
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn pinning_to_an_absurd_core_errors_not_panics() {
        std::thread::spawn(|| {
            assert!(pin_current_thread(100_000).is_err());
        })
        .join()
        .unwrap();
    }
}
