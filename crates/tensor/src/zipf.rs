//! Bounded Zipf sampling for heavy-tailed synthetic graphs.
//!
//! Real web graphs have power-law degree distributions; the paper's
//! datasets (LiveJournal, Twitter, Freebase) are all heavy-tailed, and the
//! full-Freebase evaluation explicitly notes the long tail (§5.4.2
//! footnote 10). Our dataset generators draw node popularity ranks from a
//! bounded Zipf(s) distribution.

use crate::rng::Xoshiro256;

/// Zipf distribution over `{0, 1, ..., n-1}` with exponent `s`:
/// `P(k) ∝ 1 / (k+1)^s`.
///
/// Sampling uses rejection-inversion (Hörmann & Derflinger, 1996), which
/// is O(1) per draw regardless of `n`.
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    s: f64,
    h_integral_x1: f64,
    h_integral_n: f64,
    dividing_point: f64,
}

impl Zipf {
    /// Creates a Zipf distribution over `n` items with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is not finite and positive.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "zipf: n must be positive");
        assert!(s.is_finite() && s > 0.0, "zipf: exponent must be positive");
        let h_integral_x1 = Self::h_integral(1.5, s) - 1.0;
        let h_integral_n = Self::h_integral(n as f64 + 0.5, s);
        let dividing_point =
            2.0 - Self::h_integral_inverse(Self::h_integral(2.5, s) - Self::h(2.0, s), s);
        Zipf {
            n,
            s,
            h_integral_x1,
            h_integral_n,
            dividing_point,
        }
    }

    /// Number of items.
    pub fn items(&self) -> u64 {
        self.n
    }

    /// The exponent `s`.
    pub fn exponent(&self) -> f64 {
        self.s
    }

    /// `H(x) = ∫ t^{-s} dt`, the integral of the unnormalized density.
    #[inline]
    fn h_integral(x: f64, s: f64) -> f64 {
        let log_x = x.ln();
        helper2((1.0 - s) * log_x) * log_x
    }

    /// The unnormalized density `h(x) = x^{-s}`.
    #[inline]
    fn h(x: f64, s: f64) -> f64 {
        (-s * x.ln()).exp()
    }

    /// Inverse of [`Zipf::h_integral`].
    #[inline]
    fn h_integral_inverse(x: f64, s: f64) -> f64 {
        let mut t = x * (1.0 - s);
        if t < -1.0 {
            // numerical safeguard: clamp to the domain of the inverse
            t = -1.0;
        }
        (helper1(t) * x).exp()
    }

    /// Draws one rank in `[0, n)`; rank 0 is the most popular.
    #[inline]
    pub fn sample(&self, rng: &mut Xoshiro256) -> u64 {
        loop {
            let u = self.h_integral_n + rng.gen_f64() * (self.h_integral_x1 - self.h_integral_n);
            let x = Self::h_integral_inverse(u, self.s);
            let k64 = x.clamp(1.0, self.n as f64);
            let k = (k64 + 0.5) as u64;
            let k64_rounded = k as f64;
            if k64_rounded - x <= self.dividing_point
                || u >= Self::h_integral(k64_rounded + 0.5, self.s) - Self::h(k64_rounded, self.s)
            {
                return k - 1;
            }
        }
    }
}

/// `helper1(x) = ln(1+x)/x`, stable near zero.
#[inline]
fn helper1(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.ln_1p() / x
    } else {
        1.0 - x * (0.5 - x * (1.0 / 3.0 - 0.25 * x))
    }
}

/// `helper2(x) = (exp(x)-1)/x`, stable near zero.
#[inline]
fn helper2(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.exp_m1() / x
    } else {
        1.0 + x * 0.5 * (1.0 + x / 3.0 * (1.0 + 0.25 * x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_in_range() {
        let z = Zipf::new(100, 1.2);
        let mut rng = Xoshiro256::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn rank_zero_is_most_frequent() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = Xoshiro256::seed_from_u64(2);
        let mut counts = vec![0usize; 1000];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        assert!(counts[0] > counts[1]);
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > counts[100]);
    }

    #[test]
    fn frequencies_follow_power_law() {
        let z = Zipf::new(10_000, 1.0);
        let mut rng = Xoshiro256::seed_from_u64(3);
        let mut counts = vec![0usize; 10_000];
        let n = 1_000_000;
        for _ in 0..n {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        // P(0)/P(9) should be about 10 for s=1
        let ratio = counts[0] as f64 / counts[9].max(1) as f64;
        assert!((5.0..20.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn higher_exponent_concentrates_more() {
        let mut rng = Xoshiro256::seed_from_u64(4);
        let head_mass = |s: f64, rng: &mut Xoshiro256| {
            let z = Zipf::new(1000, s);
            let mut head = 0usize;
            for _ in 0..50_000 {
                if z.sample(rng) < 10 {
                    head += 1;
                }
            }
            head
        };
        let light = head_mass(0.8, &mut rng);
        let heavy = head_mass(1.5, &mut rng);
        assert!(heavy > light, "{heavy} <= {light}");
    }

    #[test]
    fn works_near_s_equals_one() {
        let z = Zipf::new(50, 1.0 + 1e-12);
        let mut rng = Xoshiro256::seed_from_u64(4);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 50);
        }
    }

    #[test]
    fn single_item_always_zero() {
        let z = Zipf::new(1, 2.0);
        let mut rng = Xoshiro256::seed_from_u64(5);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "n must be positive")]
    fn zero_items_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
