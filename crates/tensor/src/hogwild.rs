//! Lock-free shared embedding storage for HOGWILD training.
//!
//! PBG trains each edge bucket on many threads "with no explicit
//! synchronization between cores" (Recht et al., 2011). In Rust, unguarded
//! shared mutation is undefined behaviour, so [`HogwildArray`] stores every
//! f32 as an `AtomicU32` and performs bit-cast loads/stores with
//! [`Ordering::Relaxed`]. Relaxed atomics compile to plain loads/stores on
//! x86 and AArch64, so this preserves HOGWILD's performance model while
//! remaining sound: races lose updates (exactly HOGWILD's contract) but can
//! never tear a float or invoke UB.

use std::sync::atomic::{AtomicU32, Ordering};

/// A fixed-size shared array of f32 rows supporting concurrent lock-free
/// reads and writes from many threads.
///
/// Rows (embeddings) are the access unit: threads stage a row into a local
/// buffer with [`HogwildArray::read_row_into`], compute, and either publish
/// the whole row ([`HogwildArray::write_row`]) or accumulate a delta
/// ([`HogwildArray::add_to_row`]).
#[derive(Debug)]
pub struct HogwildArray {
    rows: usize,
    cols: usize,
    data: Vec<AtomicU32>,
}

impl HogwildArray {
    /// Creates a zeroed `rows × cols` array.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        data.resize_with(rows * cols, || AtomicU32::new(0));
        HogwildArray { rows, cols, data }
    }

    /// Creates an array from row-major f32 data.
    ///
    /// # Panics
    ///
    /// Panics if `init.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, init: Vec<f32>) -> Self {
        assert_eq!(init.len(), rows * cols, "from_vec: data length mismatch");
        let data = init
            .into_iter()
            .map(|v| AtomicU32::new(v.to_bits()))
            .collect();
        HogwildArray { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (embedding dimension).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of f32 elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the array holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reads element `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f32 {
        assert!(row < self.rows && col < self.cols, "get: out of bounds");
        f32::from_bits(self.data[row * self.cols + col].load(Ordering::Relaxed))
    }

    /// Writes element `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&self, row: usize, col: usize, value: f32) {
        assert!(row < self.rows && col < self.cols, "set: out of bounds");
        self.data[row * self.cols + col].store(value.to_bits(), Ordering::Relaxed);
    }

    /// Copies row `row` into `buf`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds or `buf.len() != cols`.
    #[inline]
    pub fn read_row_into(&self, row: usize, buf: &mut [f32]) {
        assert!(row < self.rows, "read_row_into: row {row} out of bounds");
        assert_eq!(buf.len(), self.cols, "read_row_into: buffer size mismatch");
        let base = row * self.cols;
        for (i, b) in buf.iter_mut().enumerate() {
            *b = f32::from_bits(self.data[base + i].load(Ordering::Relaxed));
        }
    }

    /// Publishes `values` as row `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds or `values.len() != cols`.
    #[inline]
    pub fn write_row(&self, row: usize, values: &[f32]) {
        assert!(row < self.rows, "write_row: row {row} out of bounds");
        assert_eq!(values.len(), self.cols, "write_row: size mismatch");
        let base = row * self.cols;
        for (i, v) in values.iter().enumerate() {
            self.data[base + i].store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Accumulates `alpha * delta` into row `row` element-by-element.
    ///
    /// Each element update is an independent relaxed read-modify-write
    /// (load, add, store). Concurrent updates may lose increments — that is
    /// HOGWILD's accepted semantics, not a bug.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds or `delta.len() != cols`.
    #[inline]
    pub fn add_to_row(&self, row: usize, alpha: f32, delta: &[f32]) {
        assert!(row < self.rows, "add_to_row: row {row} out of bounds");
        assert_eq!(delta.len(), self.cols, "add_to_row: size mismatch");
        let base = row * self.cols;
        for (i, d) in delta.iter().enumerate() {
            let cell = &self.data[base + i];
            let cur = f32::from_bits(cell.load(Ordering::Relaxed));
            cell.store((cur + alpha * d).to_bits(), Ordering::Relaxed);
        }
    }

    /// Atomically adds `delta` to the scalar at `(row, col)` using a
    /// compare-exchange loop (no lost updates). Used for optimizer
    /// accumulators where monotonicity matters.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn fetch_add(&self, row: usize, col: usize, delta: f32) -> f32 {
        assert!(
            row < self.rows && col < self.cols,
            "fetch_add: out of bounds"
        );
        let cell = &self.data[row * self.cols + col];
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            let new = (f32::from_bits(cur) + delta).to_bits();
            match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return f32::from_bits(cur),
                Err(actual) => cur = actual,
            }
        }
    }

    /// Snapshots the full contents into a `Vec<f32>` (row-major).
    pub fn to_vec(&self) -> Vec<f32> {
        self.data
            .iter()
            .map(|c| f32::from_bits(c.load(Ordering::Relaxed)))
            .collect()
    }

    /// Overwrites the full contents from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != len()`.
    pub fn copy_from_slice(&self, values: &[f32]) {
        assert_eq!(
            values.len(),
            self.data.len(),
            "copy_from_slice: size mismatch"
        );
        for (cell, v) in self.data.iter().zip(values) {
            cell.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Resident size in bytes (used by the memory tracker).
    pub fn bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<AtomicU32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn roundtrip_row() {
        let a = HogwildArray::zeros(3, 4);
        a.write_row(1, &[1.0, 2.0, 3.0, 4.0]);
        let mut buf = [0.0; 4];
        a.read_row_into(1, &mut buf);
        assert_eq!(buf, [1.0, 2.0, 3.0, 4.0]);
        // other rows untouched
        a.read_row_into(0, &mut buf);
        assert_eq!(buf, [0.0; 4]);
    }

    #[test]
    fn from_vec_and_to_vec() {
        let a = HogwildArray::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.to_vec(), vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.get(1, 0), 3.0);
    }

    #[test]
    fn add_to_row_accumulates() {
        let a = HogwildArray::zeros(1, 2);
        a.add_to_row(0, 2.0, &[1.0, 10.0]);
        a.add_to_row(0, 1.0, &[0.5, 0.5]);
        assert_eq!(a.to_vec(), vec![2.5, 20.5]);
    }

    #[test]
    fn fetch_add_returns_previous() {
        let a = HogwildArray::zeros(1, 1);
        assert_eq!(a.fetch_add(0, 0, 1.5), 0.0);
        assert_eq!(a.fetch_add(0, 0, 1.0), 1.5);
        assert_eq!(a.get(0, 0), 2.5);
    }

    #[test]
    fn fetch_add_concurrent_loses_nothing() {
        let a = Arc::new(HogwildArray::zeros(1, 1));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let a = Arc::clone(&a);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        a.fetch_add(0, 0, 1.0);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(a.get(0, 0), 8000.0);
    }

    #[test]
    fn concurrent_row_writes_never_tear() {
        // Two threads write distinct constant rows; any interleaving must
        // leave each element equal to one of the written constants.
        let a = Arc::new(HogwildArray::zeros(1, 64));
        let w1 = {
            let a = Arc::clone(&a);
            std::thread::spawn(move || {
                let row = vec![1.0f32; 64];
                for _ in 0..500 {
                    a.write_row(0, &row);
                }
            })
        };
        let w2 = {
            let a = Arc::clone(&a);
            std::thread::spawn(move || {
                let row = vec![2.0f32; 64];
                for _ in 0..500 {
                    a.write_row(0, &row);
                }
            })
        };
        w1.join().unwrap();
        w2.join().unwrap();
        for v in a.to_vec() {
            assert!(v == 1.0 || v == 2.0, "torn value {v}");
        }
    }

    #[test]
    fn bytes_accounting() {
        let a = HogwildArray::zeros(10, 100);
        assert_eq!(a.bytes(), 4000);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_read_panics() {
        let a = HogwildArray::zeros(1, 1);
        a.get(1, 0);
    }
}
