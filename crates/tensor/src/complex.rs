//! Complex-vector kernels for the ComplEx relation operator.
//!
//! ComplEx (Trouillon et al., 2016) embeds entities in `C^{d/2}` and scores
//! an edge as `Re{<θ_s ⊙ θ_r, conj(θ_d)>}`. PBG stores a complex vector of
//! dimension `d/2` as an interleaved real f32 vector of dimension `d`:
//! `[re_0, im_0, re_1, im_1, ...]`. The complex-diagonal operator is then a
//! complex Hadamard product over that layout.

/// Complex Hadamard product `out = a ⊙ b` over interleaved `[re, im]` pairs.
///
/// # Panics
///
/// Panics if lengths differ or are odd.
#[inline]
pub fn complex_hadamard(a: &[f32], b: &[f32], out: &mut [f32]) {
    check_layout(a, b, out);
    for i in (0..a.len()).step_by(2) {
        let (ar, ai) = (a[i], a[i + 1]);
        let (br, bi) = (b[i], b[i + 1]);
        out[i] = ar * br - ai * bi;
        out[i + 1] = ar * bi + ai * br;
    }
}

/// Complex Hadamard product with the conjugate of `b`: `out = a ⊙ conj(b)`.
///
/// This is the adjoint of [`complex_hadamard`] with respect to the real dot
/// product, used in backpropagation through the ComplEx operator.
///
/// # Panics
///
/// Panics if lengths differ or are odd.
#[inline]
pub fn complex_hadamard_conj(a: &[f32], b: &[f32], out: &mut [f32]) {
    check_layout(a, b, out);
    for i in (0..a.len()).step_by(2) {
        let (ar, ai) = (a[i], a[i + 1]);
        let (br, bi) = (b[i], b[i + 1]);
        out[i] = ar * br + ai * bi;
        out[i + 1] = ai * br - ar * bi;
    }
}

/// Real part of the complex inner product `Re{<a, conj(b)>}` over the
/// interleaved layout — this equals the plain real dot product of the
/// interleaved vectors, which is why ComplEx scoring reduces to `dot` after
/// the operator is applied.
///
/// # Panics
///
/// Panics if lengths differ or are odd.
#[inline]
pub fn complex_re_inner(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "complex_re_inner: length mismatch");
    assert_eq!(a.len() % 2, 0, "complex_re_inner: odd length");
    crate::vecmath::dot(a, b)
}

#[inline]
fn check_layout(a: &[f32], b: &[f32], out: &[f32]) {
    assert_eq!(a.len(), b.len(), "complex op: length mismatch");
    assert_eq!(a.len(), out.len(), "complex op: output length mismatch");
    assert_eq!(
        a.len() % 2,
        0,
        "complex op: interleaved layout needs even length"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hadamard_matches_complex_arithmetic() {
        // (1 + 2i) * (3 + 4i) = 3 + 4i + 6i + 8i^2 = -5 + 10i
        let mut out = [0.0; 2];
        complex_hadamard(&[1.0, 2.0], &[3.0, 4.0], &mut out);
        assert_eq!(out, [-5.0, 10.0]);
    }

    #[test]
    fn hadamard_conj_matches_complex_arithmetic() {
        // (1 + 2i) * conj(3 + 4i) = (1 + 2i)(3 - 4i) = 3 - 4i + 6i + 8 = 11 + 2i
        let mut out = [0.0; 2];
        complex_hadamard_conj(&[1.0, 2.0], &[3.0, 4.0], &mut out);
        assert_eq!(out, [11.0, 2.0]);
    }

    #[test]
    fn identity_relation_is_one_plus_zero_i() {
        let a = [0.5, -0.25, 2.0, 1.0];
        let one = [1.0, 0.0, 1.0, 0.0];
        let mut out = [0.0; 4];
        complex_hadamard(&a, &one, &mut out);
        assert_eq!(out, a);
    }

    #[test]
    fn re_inner_is_dot() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0];
        assert_eq!(complex_re_inner(&a, &b), crate::vecmath::dot(&a, &b));
    }

    #[test]
    #[should_panic(expected = "even length")]
    fn odd_length_panics() {
        let mut out = [0.0; 3];
        complex_hadamard(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0], &mut out);
    }

    #[test]
    fn conj_is_adjoint_of_hadamard() {
        // <a ⊙ r, d> == <a, d ⊙ conj(r)> for the real inner product,
        // the identity the ComplEx backward pass relies on.
        let a = [0.3, -1.2, 0.7, 2.0];
        let r = [1.5, 0.25, -0.5, 1.0];
        let d = [2.0, 0.1, -1.0, 0.4];
        let mut ar = [0.0; 4];
        complex_hadamard(&a, &r, &mut ar);
        let mut dr = [0.0; 4];
        complex_hadamard_conj(&d, &r, &mut dr);
        let lhs = crate::vecmath::dot(&ar, &d);
        let rhs = crate::vecmath::dot(&a, &dr);
        assert!((lhs - rhs).abs() < 1e-5, "{lhs} != {rhs}");
    }
}
