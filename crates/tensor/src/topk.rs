//! Score-only blocked top-k over candidate rows.
//!
//! The serving tier answers `score(src, rel) → top-k dst` over shards
//! with millions of rows. Training's `score_grads` path packs both the
//! score matrix and gradient panels — pure waste at inference. This
//! module streams candidate rows (typically a memory-mapped shard, never
//! copied to heap) through the same blocked [`crate::kernels::matmul_nt`]
//! in bounded blocks, keeping only a k-entry heap per query, so scoring a
//! shard costs `O(n·d)` time and `O(k + block)` memory instead of
//! materializing an `n`-float score vector.
//!
//! Ordering is deterministic: ties in score resolve to the lower row
//! index, and NaNs order below every real score (`total_cmp`), so a
//! served top-k is reproducible and matches an offline argmax.

use crate::kernels;
use crate::vecmath;
use std::collections::BinaryHeap;

/// Candidate rows scored per kernel call. Large enough to amortize the
/// kernel's panel packing, small enough that the per-block score buffer
/// (and the normalized copy cosine needs) stays L2-resident.
pub const BLOCK_ROWS: usize = 512;

/// One scored candidate row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scored {
    /// Global row index of the candidate.
    pub index: usize,
    /// Its similarity score.
    pub score: f32,
}

/// Heap entry ordered by "worseness": the `BinaryHeap` max is the worst
/// kept candidate, which is what a bounded top-k evicts first.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Entry(Scored);

impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Entry) -> std::cmp::Ordering {
        // lower score = worse; equal score, higher index = worse
        other
            .0
            .score
            .total_cmp(&self.0.score)
            .then(self.0.index.cmp(&other.0.index))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Entry) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A bounded top-k accumulator: push scored rows from any number of
/// blocks or shards, then read the merged result. Mergeable, so each
/// shard can be scored independently and heap-merged.
#[derive(Debug, Clone)]
pub struct TopK {
    k: usize,
    heap: BinaryHeap<Entry>,
}

impl TopK {
    /// An empty accumulator keeping the best `k` rows.
    pub fn new(k: usize) -> Self {
        TopK {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Offers one scored row; keeps it only if it beats the current
    /// worst kept row (score first, then lower index on ties).
    pub fn push(&mut self, index: usize, score: f32) {
        if self.k == 0 {
            return;
        }
        let entry = Entry(Scored { index, score });
        if self.heap.len() < self.k {
            self.heap.push(entry);
        } else if let Some(worst) = self.heap.peek() {
            // `entry < worst` in Entry order means entry is *better*
            if entry < *worst {
                self.heap.pop();
                self.heap.push(entry);
            }
        }
    }

    /// Merges another accumulator (e.g. a different shard's result).
    pub fn merge(&mut self, other: TopK) {
        for e in other.heap {
            self.push(e.0.index, e.0.score);
        }
    }

    /// The kept rows, best first (score descending, index ascending on
    /// ties).
    pub fn into_sorted(self) -> Vec<Scored> {
        let mut v: Vec<Scored> = self.heap.into_iter().map(|e| e.0).collect();
        v.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.index.cmp(&b.index)));
        v
    }
}

/// Scores `query` (one row, `dim` floats) against every row of
/// `candidates` (row-major, `candidates.len() / dim` rows whose global
/// indices start at `base`) by dot product, feeding `acc`. Candidate
/// rows are read in place — a memory-mapped slice is never copied.
///
/// # Panics
///
/// Panics if `query.len() != dim` or `candidates.len()` is not a
/// multiple of `dim`.
pub fn accumulate_dot(query: &[f32], candidates: &[f32], dim: usize, base: usize, acc: &mut TopK) {
    assert_eq!(query.len(), dim, "accumulate_dot: query length != dim");
    assert!(
        candidates.len().is_multiple_of(dim.max(1)),
        "accumulate_dot: candidate slice is not whole rows"
    );
    if dim == 0 {
        return;
    }
    let n = candidates.len() / dim;
    let mut scores = vec![0.0f32; BLOCK_ROWS.min(n.max(1))];
    let mut start = 0usize;
    while start < n {
        let bn = BLOCK_ROWS.min(n - start);
        let block = &candidates[start * dim..(start + bn) * dim];
        kernels::matmul_nt(1, bn, dim, query, dim, block, dim, &mut scores[..bn], bn);
        for (j, &s) in scores[..bn].iter().enumerate() {
            acc.push(base + start + j, s);
        }
        start += bn;
    }
}

/// Cosine counterpart of [`accumulate_dot`]: `query` must already be
/// L2-normalized (normalize once per request, not per block); candidate
/// rows are copied block-at-a-time into a bounded scratch buffer and
/// normalized there, reproducing `score_matrix`'s cosine path bit for
/// bit without materializing a normalized shard.
///
/// # Panics
///
/// Panics if `query.len() != dim` or `candidates.len()` is not a
/// multiple of `dim`.
pub fn accumulate_cosine(
    query: &[f32],
    candidates: &[f32],
    dim: usize,
    base: usize,
    acc: &mut TopK,
) {
    assert_eq!(query.len(), dim, "accumulate_cosine: query length != dim");
    assert!(
        candidates.len().is_multiple_of(dim.max(1)),
        "accumulate_cosine: candidate slice is not whole rows"
    );
    if dim == 0 {
        return;
    }
    let n = candidates.len() / dim;
    let bcap = BLOCK_ROWS.min(n.max(1));
    let mut scores = vec![0.0f32; bcap];
    let mut scratch = vec![0.0f32; bcap * dim];
    let mut start = 0usize;
    while start < n {
        let bn = BLOCK_ROWS.min(n - start);
        let scratch = &mut scratch[..bn * dim];
        scratch.copy_from_slice(&candidates[start * dim..(start + bn) * dim]);
        for row in scratch.chunks_exact_mut(dim) {
            vecmath::normalize(row);
        }
        kernels::matmul_nt(1, bn, dim, query, dim, scratch, dim, &mut scores[..bn], bn);
        for (j, &s) in scores[..bn].iter().enumerate() {
            acc.push(base + start + j, s);
        }
        start += bn;
    }
}

/// One-shot convenience: the top `k` rows of `candidates` by dot score.
///
/// # Panics
///
/// Panics as [`accumulate_dot`] does.
pub fn top_k_dot(query: &[f32], candidates: &[f32], dim: usize, k: usize) -> Vec<Scored> {
    let mut acc = TopK::new(k);
    accumulate_dot(query, candidates, dim, 0, &mut acc);
    acc.into_sorted()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;

    fn random_rows(n: usize, dim: usize, seed: u64) -> Vec<f32> {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        (0..n * dim).map(|_| rng.gen_f32() * 2.0 - 1.0).collect()
    }

    /// Reference: the full score vector from ONE un-blocked kernel call
    /// (what `score_matrix` computes offline), then a full sort. The
    /// blocked streaming path must reproduce it bit for bit — that is
    /// the serve-vs-offline-argmax equivalence the serving tier promises.
    fn full_kernel_top_k(query: &[f32], cands: &[f32], dim: usize, k: usize) -> Vec<Scored> {
        let n = cands.len() / dim;
        let mut scores = vec![0.0f32; n];
        kernels::matmul_nt(1, n, dim, query, dim, cands, dim, &mut scores, n);
        let mut all: Vec<Scored> = scores
            .iter()
            .enumerate()
            .map(|(i, &s)| Scored { index: i, score: s })
            .collect();
        all.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.index.cmp(&b.index)));
        all.truncate(k);
        all
    }

    #[test]
    fn matches_full_kernel_top_k_across_block_boundaries() {
        let dim = 24;
        // n chosen to straddle several BLOCK_ROWS boundaries unevenly
        for n in [1, 7, BLOCK_ROWS, BLOCK_ROWS + 1, 3 * BLOCK_ROWS - 5] {
            let query = random_rows(1, dim, 1);
            let cands = random_rows(n, dim, 2);
            for k in [1, 5, n] {
                let got = top_k_dot(&query, &cands, dim, k);
                let want = full_kernel_top_k(&query, &cands, dim, k);
                assert_eq!(got.len(), want.len());
                for (g, w) in got.iter().zip(&want) {
                    assert_eq!(g.index, w.index, "n={n} k={k}");
                    assert_eq!(g.score.to_bits(), w.score.to_bits(), "n={n} k={k}");
                }
            }
        }
    }

    #[test]
    fn blocked_scores_close_to_plain_dot() {
        // independent slow path: the kernel's accumulation order may
        // differ from vecmath::dot by a few ULP but never more
        let dim = 24;
        let query = random_rows(1, dim, 9);
        let cands = random_rows(300, dim, 10);
        let got = top_k_dot(&query, &cands, dim, 300);
        for s in &got {
            let plain = vecmath::dot(&query, &cands[s.index * dim..(s.index + 1) * dim]);
            assert!((s.score - plain).abs() < 1e-4, "index {}", s.index);
        }
    }

    #[test]
    fn ties_resolve_to_lower_index() {
        // identical rows: every candidate ties, top-k must be 0..k
        let dim = 8;
        let row: Vec<f32> = (0..dim).map(|i| 0.5 + i as f32 * 0.25).collect();
        let cands: Vec<f32> = row.iter().copied().cycle().take(50 * dim).collect();
        let got = top_k_dot(&row, &cands, dim, 7);
        let indices: Vec<usize> = got.iter().map(|s| s.index).collect();
        assert_eq!(indices, vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn merge_across_shards_equals_single_scan() {
        let dim = 16;
        let query = random_rows(1, dim, 3);
        let cands = random_rows(900, dim, 4);
        let whole = top_k_dot(&query, &cands, dim, 10);
        // split into three uneven shards and heap-merge
        let mut acc = TopK::new(10);
        let splits = [0usize, 123, 700, 900];
        for w in splits.windows(2) {
            let mut shard_acc = TopK::new(10);
            accumulate_dot(
                &query,
                &cands[w[0] * dim..w[1] * dim],
                dim,
                w[0],
                &mut shard_acc,
            );
            acc.merge(shard_acc);
        }
        let merged = acc.into_sorted();
        assert_eq!(whole.len(), merged.len());
        for (a, b) in whole.iter().zip(&merged) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
    }

    #[test]
    fn k_zero_and_k_beyond_n_are_clean() {
        let dim = 4;
        let query = random_rows(1, dim, 5);
        let cands = random_rows(3, dim, 6);
        assert!(top_k_dot(&query, &cands, dim, 0).is_empty());
        let all = top_k_dot(&query, &cands, dim, 99);
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn cosine_scores_are_bounded_and_ordered() {
        let dim = 12;
        let mut query = random_rows(1, dim, 7);
        vecmath::normalize(&mut query);
        let cands = random_rows(700, dim, 8);
        let mut acc = TopK::new(5);
        accumulate_cosine(&query, &cands, dim, 0, &mut acc);
        let got = acc.into_sorted();
        assert_eq!(got.len(), 5);
        for w in got.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        for s in &got {
            assert!(s.score.abs() <= 1.0 + 1e-5);
        }
    }
}
