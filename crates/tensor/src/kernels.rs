//! Cache-blocked, panel-packed, autovectorization-friendly matmul kernels.
//!
//! The paper's core performance claim (§4.3) is that batched negative
//! sampling turns `B · B_n` independent dot products into one `C × (C+U)`
//! matrix product. That only pays off if the matrix product itself keeps
//! the hardware busy, so this module provides the real kernels behind
//! [`crate::matrix::Matrix`]:
//!
//! - **Blocked `A·Bᵀ`** ([`matmul_nt`]): the score-matrix kernel. `B` is
//!   packed once into `NR`-wide k-major panels, `A` into `MR`-wide panels
//!   per row group, and an `MR × NR` register-tile microkernel walks both
//!   packed panels with no bounds checks in the hot loop — a shape LLVM
//!   autovectorizes to packed FMAs. No intrinsics, no dependencies.
//! - **Blocked `A·B`** ([`matmul`]): k-unrolled row-accumulator form used
//!   by gradient products and the RESCAL operator.
//! - **Fused score+grad** ([`score_grads`]): given the loss gradient `G`
//!   w.r.t. a score matrix `S = A·Bᵀ`, computes *both* gradient products
//!   `dA = G·B` and `dB = Gᵀ·A` in a single pass over `G`, so `G` is read
//!   once and `A`'s rows are hot in cache while they feed `dB`.
//! - **Scoped-thread row split** ([`matmul_nt_packed_threaded`]): for large
//!   shapes, output row groups are split across `std::thread::scope`
//!   threads. Each `(i, j)` element is computed by exactly one thread in
//!   exactly the same order as the serial kernel, so results are
//!   bit-identical for every thread count.
//! - **[`reference`]**: the naive triple-loop kernels, kept as the oracle
//!   the differential test harness (`tests/kernel_diff.rs`) compares
//!   against.
//!
//! All kernels take raw slices with explicit row strides (`ld*`, in
//! elements, BLAS-style), so sub-matrices and padded layouts are testable;
//! [`crate::matrix::Matrix`] calls them with `ld = cols`.

// Stride-explicit BLAS-style signatures (m, n, k, a, lda, b, ldb, ...)
// necessarily exceed clippy's argument-count lint.
#![allow(clippy::too_many_arguments)]

/// Rows of `A` per microkernel tile.
pub const MR: usize = 4;
/// Rows of `B` (columns of the output) per packed panel.
pub const NR: usize = 8;
/// Row-group size for the A-side cache block: one block of packed A
/// (`MC × k` at the dimensions PBG uses) stays resident in L2 while every
/// B panel streams past it.
pub const MC: usize = 64;
/// Flop threshold (`m·n·k`) above which [`auto_threads`] engages the
/// scoped-thread row split. Training chunks (`C = 50`, `N ≈ 100`,
/// `d ≈ 100` → 5·10⁵ flops) stay far below it, so HOGWILD threads never
/// nest their own thread pools; evaluation- and benchmark-sized products
/// (≥ ~16M flops) fan out.
pub const THREAD_FLOP_THRESHOLD: usize = 1 << 24;

/// Process-wide count of floating-point operations executed by the
/// blocked kernels, for live GFLOP/s gauges. Counted where the work
/// actually happens: [`matmul_nt_packed`] (which the `nt`, auto, and
/// per-thread paths all bottom out in), [`matmul`], and [`score_grads`]
/// (4·k flops per *nonzero* gradient element — zero rows are skipped by
/// the kernel, so the count reflects work done, not the dense bound).
/// Relaxed ordering: the counter is monotonic bookkeeping, never a
/// synchronization edge.
static FLOPS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Total flops executed by this process's kernels since start.
/// Monotonic; readers take deltas to compute rates.
pub fn flops_executed() -> u64 {
    FLOPS.load(std::sync::atomic::Ordering::Relaxed)
}

#[inline]
fn count_flops(n: u64) {
    FLOPS.fetch_add(n, std::sync::atomic::Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Reference kernels (the differential-test oracle)
// ---------------------------------------------------------------------------

/// Naive triple-loop kernels, the oracle for the differential harness.
///
/// These are deliberately the simplest correct implementations: a single
/// sequential accumulator per output element, no blocking, no packing, no
/// unrolling. The blocked kernels reassociate the k-sum (8-lane
/// accumulators, register tiles), so blocked and reference results agree
/// to a few ULPs, not bit-for-bit — exactly what the ULP-aware comparator
/// in `tests/kernel_diff.rs` checks.
pub mod reference {
    /// `out[m×n] = a[m×k] · b[k×n]`, all row-major with explicit strides.
    ///
    /// # Panics
    ///
    /// Panics if any slice is too short for its shape/stride.
    pub fn matmul(
        m: usize,
        n: usize,
        k: usize,
        a: &[f32],
        lda: usize,
        b: &[f32],
        ldb: usize,
        out: &mut [f32],
        ldo: usize,
    ) {
        super::check_dims(m, k, a.len(), lda, "reference::matmul a");
        super::check_dims(k, n, b.len(), ldb, "reference::matmul b");
        super::check_dims(m, n, out.len(), ldo, "reference::matmul out");
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += a[i * lda + kk] * b[kk * ldb + j];
                }
                out[i * ldo + j] = acc;
            }
        }
    }

    /// `out[m×n] = a[m×k] · b[n×k]ᵀ`, all row-major with explicit strides.
    ///
    /// # Panics
    ///
    /// Panics if any slice is too short for its shape/stride.
    pub fn matmul_nt(
        m: usize,
        n: usize,
        k: usize,
        a: &[f32],
        lda: usize,
        b: &[f32],
        ldb: usize,
        out: &mut [f32],
        ldo: usize,
    ) {
        super::check_dims(m, k, a.len(), lda, "reference::matmul_nt a");
        super::check_dims(n, k, b.len(), ldb, "reference::matmul_nt b");
        super::check_dims(m, n, out.len(), ldo, "reference::matmul_nt out");
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += a[i * lda + kk] * b[j * ldb + kk];
                }
                out[i * ldo + j] = acc;
            }
        }
    }

    /// `out[n×m] = a[m×n]ᵀ`, row-major with explicit strides.
    ///
    /// # Panics
    ///
    /// Panics if any slice is too short for its shape/stride.
    pub fn transpose(m: usize, n: usize, a: &[f32], lda: usize, out: &mut [f32], ldo: usize) {
        super::check_dims(m, n, a.len(), lda, "reference::transpose a");
        super::check_dims(n, m, out.len(), ldo, "reference::transpose out");
        for i in 0..m {
            for j in 0..n {
                out[j * ldo + i] = a[i * lda + j];
            }
        }
    }

    /// Reference fused score-gradient: `ga = g·b`, `gb = gᵀ·a` where
    /// `g` is `m×n`, `a` is `m×k`, `b` is `n×k` (see
    /// [`super::score_grads`]).
    ///
    /// # Panics
    ///
    /// Panics if any slice is too short for its shape/stride.
    #[allow(clippy::too_many_arguments)]
    pub fn score_grads(
        m: usize,
        n: usize,
        k: usize,
        a: &[f32],
        lda: usize,
        b: &[f32],
        ldb: usize,
        g: &[f32],
        ldg: usize,
        ga: &mut [f32],
        ldga: usize,
        gb: &mut [f32],
        ldgb: usize,
    ) {
        super::check_dims(m, k, a.len(), lda, "reference::score_grads a");
        super::check_dims(n, k, b.len(), ldb, "reference::score_grads b");
        super::check_dims(m, n, g.len(), ldg, "reference::score_grads g");
        super::check_dims(m, k, ga.len(), ldga, "reference::score_grads ga");
        super::check_dims(n, k, gb.len(), ldgb, "reference::score_grads gb");
        // ga = g · b
        matmul(m, k, n, g, ldg, b, ldb, ga, ldga);
        // gb = gᵀ · a (sequential over i per output element)
        for j in 0..n {
            for kk in 0..k {
                let mut acc = 0.0f32;
                for i in 0..m {
                    acc += g[i * ldg + j] * a[i * lda + kk];
                }
                gb[j * ldgb + kk] = acc;
            }
        }
    }
}

/// Panics unless a `rows × cols` row-major view with stride `ld` fits in a
/// slice of length `len`. Empty views (0 rows or cols) are always fine.
fn check_dims(rows: usize, cols: usize, len: usize, ld: usize, what: &str) {
    if rows == 0 || cols == 0 {
        return;
    }
    assert!(ld >= cols, "{what}: stride {ld} < row length {cols}");
    let needed = (rows - 1) * ld + cols;
    assert!(
        len >= needed,
        "{what}: slice length {len} < required {needed} ({rows}x{cols}, stride {ld})"
    );
}

// ---------------------------------------------------------------------------
// Packing
// ---------------------------------------------------------------------------

/// `B` (`n × k`, row-major) repacked for the `A·Bᵀ` kernel: rows are
/// grouped into panels of [`NR`], each panel stored k-major
/// (`panel[kk * NR + j]` = `B[j0 + j][kk]`), zero-padded past `n`.
///
/// Packing is O(n·k) — one pass over `B` — and is what lets the
/// microkernel load [`NR`] output columns' worth of `B` as one contiguous
/// vector per k step. A packed matrix is reusable across any number of
/// products against it, which is how the fused trainer path packs a
/// chunk's candidate negatives exactly once.
#[derive(Debug, Clone)]
pub struct PackedNt {
    n: usize,
    k: usize,
    panels: Vec<f32>,
}

impl PackedNt {
    /// Packs `b` (`n × k`, stride `ldb`).
    ///
    /// # Panics
    ///
    /// Panics if `b` is too short for the shape/stride.
    pub fn pack(n: usize, k: usize, b: &[f32], ldb: usize) -> Self {
        check_dims(n, k, b.len(), ldb, "PackedNt::pack b");
        if k == 0 {
            return PackedNt {
                n,
                k,
                panels: Vec::new(),
            };
        }
        let n_panels = n.div_ceil(NR);
        let mut panels = vec![0.0f32; n_panels * k * NR];
        for p in 0..n_panels {
            let j0 = p * NR;
            let jn = NR.min(n - j0);
            let panel = &mut panels[p * k * NR..(p + 1) * k * NR];
            for jj in 0..jn {
                let row = &b[(j0 + jj) * ldb..(j0 + jj) * ldb + k];
                for (kk, &v) in row.iter().enumerate() {
                    panel[kk * NR + jj] = v;
                }
            }
        }
        PackedNt { n, k, panels }
    }

    /// Number of packed rows of `B` (output columns).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Inner (k) dimension.
    pub fn k(&self) -> usize {
        self.k
    }

    fn panel(&self, p: usize) -> &[f32] {
        &self.panels[p * self.k * NR..(p + 1) * self.k * NR]
    }
}

/// Packs rows `[i0, i0+rows)` of `a` (stride `lda`, row length `k`) into an
/// MR-interleaved panel: `dst[kk * MR + r] = a[(i0 + r), kk]`, zero-padded
/// past `rows`.
fn pack_a_group(a: &[f32], lda: usize, k: usize, i0: usize, rows: usize, dst: &mut [f32]) {
    debug_assert!(rows <= MR && dst.len() == k * MR);
    dst.iter_mut().for_each(|v| *v = 0.0);
    for r in 0..rows {
        let row = &a[(i0 + r) * lda..(i0 + r) * lda + k];
        for (kk, &v) in row.iter().enumerate() {
            dst[kk * MR + r] = v;
        }
    }
}

// ---------------------------------------------------------------------------
// Blocked A·Bᵀ (the negative-scoring kernel)
// ---------------------------------------------------------------------------

/// The `MR × NR` register-tile microkernel: `acc[r][j] += apanel ⊗ bpanel`
/// over the full k extent. Both panels are contiguous and walked with
/// `chunks_exact`, so the inner loop is bounds-check-free straight-line
/// code over fixed-size arrays — the exact shape LLVM turns into packed
/// FMAs.
#[inline]
fn micro_nt(k: usize, apanel: &[f32], bpanel: &[f32]) -> [[f32; NR]; MR] {
    debug_assert!(apanel.len() >= k * MR && bpanel.len() >= k * NR);
    let mut acc = [[0.0f32; NR]; MR];
    for (ar, br) in apanel.chunks_exact(MR).take(k).zip(bpanel.chunks_exact(NR)) {
        for r in 0..MR {
            let av = ar[r];
            for j in 0..NR {
                acc[r][j] += av * br[j];
            }
        }
    }
    acc
}

/// `out[m×n] = a[m×k] · b[n×k]ᵀ` against a pre-packed `B`.
///
/// Blocking: `A` rows are processed in [`MC`]-row cache blocks; within a
/// block each [`MR`]-row group is packed once and then swept against every
/// `B` panel, so packed A stays in L1/L2 while `B` panels stream.
///
/// # Panics
///
/// Panics if `a`/`out` are too short or `packed.k() != k`.
pub fn matmul_nt_packed(
    m: usize,
    k: usize,
    a: &[f32],
    lda: usize,
    packed: &PackedNt,
    out: &mut [f32],
    ldo: usize,
) {
    assert_eq!(packed.k(), k, "matmul_nt_packed: k mismatch");
    let n = packed.n();
    check_dims(m, k, a.len(), lda, "matmul_nt_packed a");
    check_dims(m, n, out.len(), ldo, "matmul_nt_packed out");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        for i in 0..m {
            out[i * ldo..i * ldo + n].iter_mut().for_each(|v| *v = 0.0);
        }
        return;
    }
    count_flops(2 * (m as u64) * (n as u64) * (k as u64));
    let n_panels = n.div_ceil(NR);
    let mut apanel = vec![0.0f32; k * MR];
    let mut ic = 0;
    while ic < m {
        let mc = MC.min(m - ic);
        let mut ig = 0;
        while ig < mc {
            let i0 = ic + ig;
            let mr = MR.min(m - i0);
            pack_a_group(a, lda, k, i0, mr, &mut apanel);
            for p in 0..n_panels {
                let acc = micro_nt(k, &apanel, packed.panel(p));
                let j0 = p * NR;
                let jn = NR.min(n - j0);
                for (r, acc_row) in acc.iter().enumerate().take(mr) {
                    let orow = &mut out[(i0 + r) * ldo + j0..(i0 + r) * ldo + j0 + jn];
                    orow.copy_from_slice(&acc_row[..jn]);
                }
            }
            ig += MR;
        }
        ic += MC;
    }
}

/// `out[m×n] = a[m×k] · b[n×k]ᵀ` — packs `b` and runs the blocked kernel.
///
/// # Panics
///
/// Panics if any slice is too short for its shape/stride.
pub fn matmul_nt(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    out: &mut [f32],
    ldo: usize,
) {
    let packed = PackedNt::pack(n, k, b, ldb);
    matmul_nt_packed(m, k, a, lda, &packed, out, ldo);
}

/// Threads the serial kernel would use for an `m×n×k` product: 1 below
/// [`THREAD_FLOP_THRESHOLD`], otherwise up to `available_parallelism`,
/// capped so each thread gets at least one [`MC`] row block.
pub fn auto_threads(m: usize, n: usize, k: usize) -> usize {
    let flops = m.saturating_mul(n).saturating_mul(k);
    if flops < THREAD_FLOP_THRESHOLD {
        return 1;
    }
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    cores.min(m.div_ceil(MC)).max(1)
}

/// [`matmul_nt_packed`] with output rows split across `threads` scoped
/// threads (contiguous output only: `ldo == n`).
///
/// Each thread runs the identical serial kernel on a disjoint row range,
/// so the result is bit-identical to the single-threaded kernel for every
/// thread count — verified by `tests/kernel_diff.rs`.
///
/// # Panics
///
/// Panics if `threads == 0`, `ldo != packed.n()`, or slices are too short.
pub fn matmul_nt_packed_threaded(
    m: usize,
    k: usize,
    a: &[f32],
    lda: usize,
    packed: &PackedNt,
    out: &mut [f32],
    ldo: usize,
    threads: usize,
) {
    assert!(threads > 0, "matmul_nt_packed_threaded: zero threads");
    let n = packed.n();
    assert_eq!(
        ldo, n,
        "matmul_nt_packed_threaded: threaded split needs contiguous output"
    );
    let threads = threads.min(m.div_ceil(MC)).max(1);
    if threads == 1 {
        matmul_nt_packed(m, k, a, lda, packed, out, ldo);
        return;
    }
    check_dims(m, k, a.len(), lda, "matmul_nt_packed_threaded a");
    check_dims(m, n, out.len(), ldo, "matmul_nt_packed_threaded out");
    // Split output rows into `threads` runs of whole MC blocks.
    let blocks = m.div_ceil(MC);
    let per = blocks.div_ceil(threads);
    std::thread::scope(|scope| {
        let mut rest = &mut out[..m * n];
        let mut row0 = 0usize;
        while row0 < m {
            let rows = (per * MC).min(m - row0);
            let (mine, tail) = rest.split_at_mut(rows * n);
            rest = tail;
            let i0 = row0;
            scope.spawn(move || {
                matmul_nt_packed(rows, k, &a[i0 * lda..], lda, packed, mine, n);
            });
            row0 += rows;
        }
    });
}

/// `out = a · bᵀ` choosing the thread split via [`auto_threads`]
/// (serial for training-chunk shapes, row-split for eval/bench shapes).
///
/// # Panics
///
/// Panics if any slice is too short for its shape/stride.
pub fn matmul_nt_auto(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    out: &mut [f32],
    ldo: usize,
) {
    let threads = if ldo == n { auto_threads(m, n, k) } else { 1 };
    let packed = PackedNt::pack(n, k, b, ldb);
    if threads > 1 {
        matmul_nt_packed_threaded(m, k, a, lda, &packed, out, ldo, threads);
    } else {
        matmul_nt_packed(m, k, a, lda, &packed, out, ldo);
    }
}

// ---------------------------------------------------------------------------
// Blocked A·B
// ---------------------------------------------------------------------------

/// `out[m×n] = a[m×k] · b[k×n]`, k-unrolled row-accumulator form.
///
/// For each output row, four k-steps are fused per pass so each `out[j]`
/// is loaded/stored once per four multiply-adds; the inner loop runs over
/// four contiguous `B` rows and one contiguous output row, which LLVM
/// vectorizes across `j`.
///
/// # Panics
///
/// Panics if any slice is too short for its shape/stride.
pub fn matmul(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    out: &mut [f32],
    ldo: usize,
) {
    check_dims(m, k, a.len(), lda, "matmul a");
    check_dims(k, n, b.len(), ldb, "matmul b");
    check_dims(m, n, out.len(), ldo, "matmul out");
    if m == 0 || n == 0 {
        return;
    }
    count_flops(2 * (m as u64) * (n as u64) * (k as u64));
    let k4 = k - k % 4;
    for i in 0..m {
        let arow = &a[i * lda..i * lda + k];
        let orow = &mut out[i * ldo..i * ldo + n];
        orow.iter_mut().for_each(|v| *v = 0.0);
        let mut kk = 0;
        while kk < k4 {
            let (a0, a1, a2, a3) = (arow[kk], arow[kk + 1], arow[kk + 2], arow[kk + 3]);
            let b0 = &b[kk * ldb..kk * ldb + n];
            let b1 = &b[(kk + 1) * ldb..(kk + 1) * ldb + n];
            let b2 = &b[(kk + 2) * ldb..(kk + 2) * ldb + n];
            let b3 = &b[(kk + 3) * ldb..(kk + 3) * ldb + n];
            for (j, o) in orow.iter_mut().enumerate() {
                *o += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
            }
            kk += 4;
        }
        for kk in k4..k {
            let av = arow[kk];
            if av == 0.0 {
                continue;
            }
            let brow = &b[kk * ldb..kk * ldb + n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Blocked transpose
// ---------------------------------------------------------------------------

/// Tile edge for the blocked transpose.
const TR: usize = 8;

/// `out[n×m] = a[m×n]ᵀ` in `TR × TR` tiles, so both the source rows and
/// the destination rows are touched a cache line at a time instead of one
/// column stride per element.
///
/// # Panics
///
/// Panics if any slice is too short for its shape/stride.
pub fn transpose(m: usize, n: usize, a: &[f32], lda: usize, out: &mut [f32], ldo: usize) {
    check_dims(m, n, a.len(), lda, "transpose a");
    check_dims(n, m, out.len(), ldo, "transpose out");
    let mut i0 = 0;
    while i0 < m {
        let im = TR.min(m - i0);
        let mut j0 = 0;
        while j0 < n {
            let jn = TR.min(n - j0);
            for di in 0..im {
                let arow = &a[(i0 + di) * lda + j0..(i0 + di) * lda + j0 + jn];
                for (dj, &v) in arow.iter().enumerate() {
                    out[(j0 + dj) * ldo + (i0 + di)] = v;
                }
            }
            j0 += TR;
        }
        i0 += TR;
    }
}

// ---------------------------------------------------------------------------
// Fused score + gradient path
// ---------------------------------------------------------------------------

/// Backward of a score product `S = A·Bᵀ` in one pass: given `g = dL/dS`
/// (`m×n`), computes `ga = g·b` (`m×k`) and `gb = gᵀ·a` (`n×k`) together.
///
/// The fusion win: each row of `g` is loaded exactly once and feeds both
/// products, and `a`'s row `i` is still hot in cache when it is scattered
/// into `gb`. Rows of `g` that are entirely zero (fully satisfied margins,
/// fully masked candidates) are skipped.
///
/// `ga`/`gb` are overwritten.
///
/// # Panics
///
/// Panics if any slice is too short for its shape/stride.
#[allow(clippy::too_many_arguments)]
pub fn score_grads(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    g: &[f32],
    ldg: usize,
    ga: &mut [f32],
    ldga: usize,
    gb: &mut [f32],
    ldgb: usize,
) {
    check_dims(m, k, a.len(), lda, "score_grads a");
    check_dims(n, k, b.len(), ldb, "score_grads b");
    check_dims(m, n, g.len(), ldg, "score_grads g");
    check_dims(m, k, ga.len(), ldga, "score_grads ga");
    check_dims(n, k, gb.len(), ldgb, "score_grads gb");
    for j in 0..n {
        gb[j * ldgb..j * ldgb + k].iter_mut().for_each(|v| *v = 0.0);
    }
    let mut nnz = 0u64;
    for i in 0..m {
        let grow = &g[i * ldg..i * ldg + n];
        let garow = &mut ga[i * ldga..i * ldga + k];
        garow.iter_mut().for_each(|v| *v = 0.0);
        let arow = &a[i * lda..i * lda + k];
        for (j, &gij) in grow.iter().enumerate() {
            if gij == 0.0 {
                continue;
            }
            nnz += 1;
            // ga[i] += g[i][j] * b[j]  and  gb[j] += g[i][j] * a[i]:
            // two contiguous axpys sharing the scalar — both vectorize.
            let brow = &b[j * ldb..j * ldb + k];
            for (o, &bv) in garow.iter_mut().zip(brow) {
                *o += gij * bv;
            }
            let gbrow = &mut gb[j * ldgb..j * ldgb + k];
            for (o, &av) in gbrow.iter_mut().zip(arow) {
                *o += gij * av;
            }
        }
    }
    count_flops(nnz * 4 * (k as u64));
}

/// A scoring context that packs the candidate side once and serves both
/// the forward score matrix and the fused backward — the §4.3 hot path as
/// one object.
///
/// ```
/// use pbg_tensor::kernels::ScoreGrad;
/// use pbg_tensor::matrix::Matrix;
///
/// let pos = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]); // C × d
/// let cand = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 0.0], &[0.0, 3.0]]);
/// let fused = ScoreGrad::new(&cand);
/// let scores = fused.scores(&pos); // C × N, one blocked product
/// assert_eq!(scores.row(0), &[1.0, 2.0, 0.0]);
/// let grad = Matrix::from_rows(&[&[1.0, 0.0, 0.0], &[0.0, 0.0, 1.0]]);
/// let (d_pos, d_cand) = fused.backward(&pos, &grad);
/// assert_eq!(d_pos.row(0), &[1.0, 1.0]);
/// assert_eq!(d_cand.row(2), &[0.0, 1.0]);
/// ```
#[derive(Debug, Clone)]
pub struct ScoreGrad {
    packed: PackedNt,
    cand: crate::matrix::Matrix,
}

impl ScoreGrad {
    /// Packs the candidate matrix (`N × d`) once.
    pub fn new(candidates: &crate::matrix::Matrix) -> Self {
        ScoreGrad {
            packed: PackedNt::pack(
                candidates.rows(),
                candidates.cols(),
                candidates.as_slice(),
                candidates.cols().max(1),
            ),
            cand: candidates.clone(),
        }
    }

    /// The candidate matrix this context was built from.
    pub fn candidates(&self) -> &crate::matrix::Matrix {
        &self.cand
    }

    /// Forward: `S = pos · candᵀ` (`C × N`) via the blocked packed kernel.
    ///
    /// # Panics
    ///
    /// Panics if `pos.cols() != candidates.cols()`.
    pub fn scores(&self, pos: &crate::matrix::Matrix) -> crate::matrix::Matrix {
        assert_eq!(
            pos.cols(),
            self.packed.k(),
            "ScoreGrad::scores: dim mismatch"
        );
        let m = pos.rows();
        let n = self.packed.n();
        let mut out = crate::matrix::Matrix::zeros(m, n);
        matmul_nt_packed(
            m,
            self.packed.k(),
            pos.as_slice(),
            pos.cols().max(1),
            &self.packed,
            out.as_mut_slice(),
            n.max(1),
        );
        out
    }

    /// Fused backward: given `grad = dL/dS`, returns
    /// `(dL/d pos, dL/d cand)` computed in one pass over `grad`.
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent.
    pub fn backward(
        &self,
        pos: &crate::matrix::Matrix,
        grad: &crate::matrix::Matrix,
    ) -> (crate::matrix::Matrix, crate::matrix::Matrix) {
        let (m, n, k) = (pos.rows(), self.cand.rows(), self.cand.cols());
        assert_eq!(pos.cols(), k, "ScoreGrad::backward: dim mismatch");
        assert_eq!(grad.rows(), m, "ScoreGrad::backward: grad rows");
        assert_eq!(grad.cols(), n, "ScoreGrad::backward: grad cols");
        let mut ga = crate::matrix::Matrix::zeros(m, k);
        let mut gb = crate::matrix::Matrix::zeros(n, k);
        score_grads(
            m,
            n,
            k,
            pos.as_slice(),
            k.max(1),
            self.cand.as_slice(),
            k.max(1),
            grad.as_slice(),
            n.max(1),
            ga.as_mut_slice(),
            k.max(1),
            gb.as_mut_slice(),
            k.max(1),
        );
        (ga, gb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use crate::rng::Xoshiro256;

    fn random(rows: usize, cols: usize, seed: u64) -> Vec<f32> {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        (0..rows * cols).map(|_| rng.gen_normal()).collect()
    }

    fn close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() <= tol * (1.0 + x.abs()), "[{i}]: {x} vs {y}");
        }
    }

    #[test]
    fn flop_counter_advances_by_the_work_done() {
        // Parallel tests share the process-wide counter, so assert on
        // deltas being at least the work this test submits.
        let (m, n, k) = (6, 10, 8);
        let a = random(m, k, 40);
        let b = random(n, k, 41);
        let mut out = vec![0.0; m * n];
        let before = flops_executed();
        matmul_nt(m, n, k, &a, k, &b, k, &mut out, n);
        let after = flops_executed();
        assert!(after - before >= 2 * (m * n * k) as u64);

        // score_grads counts only nonzero gradient entries (4k each)
        let g = {
            let mut g = vec![0.0f32; m * n];
            g[0] = 1.0;
            g[m * n - 1] = -1.0;
            g
        };
        let (mut ga, mut gb) = (vec![0.0; m * k], vec![0.0; n * k]);
        let before = flops_executed();
        score_grads(m, n, k, &a, k, &b, k, &g, n, &mut ga, k, &mut gb, k);
        assert!(flops_executed() - before >= 2 * 4 * k as u64);
    }

    #[test]
    fn blocked_nt_matches_reference_odd_shapes() {
        for &(m, n, k) in &[
            (1, 1, 1),
            (3, 5, 7),
            (17, 9, 33),
            (50, 100, 64),
            (65, 13, 12),
        ] {
            let a = random(m, k, 1);
            let b = random(n, k, 2);
            let mut got = vec![0.0; m * n];
            let mut want = vec![0.0; m * n];
            matmul_nt(m, n, k, &a, k, &b, k, &mut got, n);
            reference::matmul_nt(m, n, k, &a, k, &b, k, &mut want, n);
            close(&got, &want, 1e-5);
        }
    }

    #[test]
    fn blocked_nn_matches_reference() {
        for &(m, n, k) in &[(2, 3, 4), (13, 17, 19), (50, 100, 100)] {
            let a = random(m, k, 3);
            let b = random(k, n, 4);
            let mut got = vec![0.0; m * n];
            let mut want = vec![0.0; m * n];
            matmul(m, n, k, &a, k, &b, n, &mut got, n);
            reference::matmul(m, n, k, &a, k, &b, n, &mut want, n);
            close(&got, &want, 1e-5);
        }
    }

    #[test]
    fn strided_views_work() {
        // 3x4 views embedded in wider buffers
        let (m, n, k) = (3, 4, 5);
        let (lda, ldb, ldo) = (9, 7, 6);
        let a = random(m, lda, 5);
        let b = random(n, ldb, 6);
        let mut got = vec![f32::NAN; m * ldo];
        let mut want = vec![f32::NAN; m * ldo];
        matmul_nt(m, n, k, &a, lda, &b, ldb, &mut got, ldo);
        reference::matmul_nt(m, n, k, &a, lda, &b, ldb, &mut want, ldo);
        for i in 0..m {
            close(
                &got[i * ldo..i * ldo + n],
                &want[i * ldo..i * ldo + n],
                1e-5,
            );
            // padding untouched
            assert!(got[i * ldo + n..i * ldo + ldo].iter().all(|v| v.is_nan()));
        }
    }

    #[test]
    fn threaded_split_is_bit_identical() {
        let (m, n, k) = (200, 37, 29);
        let a = random(m, k, 7);
        let b = random(n, k, 8);
        let packed = PackedNt::pack(n, k, &b, k);
        let mut serial = vec![0.0; m * n];
        matmul_nt_packed(m, k, &a, k, &packed, &mut serial, n);
        for threads in [2, 3, 5] {
            let mut par = vec![0.0; m * n];
            matmul_nt_packed_threaded(m, k, &a, k, &packed, &mut par, n, threads);
            assert!(
                serial
                    .iter()
                    .zip(&par)
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "threads={threads} not bit-identical"
            );
        }
    }

    #[test]
    fn fused_grads_match_reference() {
        let (m, n, k) = (11, 23, 15);
        let a = random(m, k, 9);
        let b = random(n, k, 10);
        let g = random(m, n, 11);
        let (mut ga, mut gb) = (vec![0.0; m * k], vec![0.0; n * k]);
        let (mut rga, mut rgb) = (vec![0.0; m * k], vec![0.0; n * k]);
        score_grads(m, n, k, &a, k, &b, k, &g, n, &mut ga, k, &mut gb, k);
        reference::score_grads(m, n, k, &a, k, &b, k, &g, n, &mut rga, k, &mut rgb, k);
        close(&ga, &rga, 1e-4);
        close(&gb, &rgb, 1e-4);
    }

    #[test]
    fn score_grad_object_roundtrip() {
        let mut cand = Matrix::zeros(13, 6);
        let vals = random(13, 6, 12);
        cand.as_mut_slice().copy_from_slice(&vals);
        let mut pos = Matrix::zeros(5, 6);
        pos.as_mut_slice().copy_from_slice(&random(5, 6, 13));
        let fused = ScoreGrad::new(&cand);
        let s = fused.scores(&pos);
        let want = pos.matmul_nt(&cand);
        close(s.as_slice(), want.as_slice(), 1e-5);
    }

    #[test]
    fn empty_shapes_are_fine() {
        let mut out = vec![0.0; 0];
        matmul_nt(0, 0, 0, &[], 1, &[], 1, &mut out, 1);
        matmul(0, 5, 3, &[], 3, &[0.0; 15], 5, &mut out, 5);
        let mut o2 = vec![1.0f32; 4];
        // k == 0: product of (2x0)·(2x0)ᵀ is a zero 2x2
        matmul_nt(2, 2, 0, &[], 1, &[], 1, &mut o2, 2);
        assert_eq!(o2, [0.0; 4]);
    }

    #[test]
    fn transpose_blocked_matches_reference() {
        let (m, n) = (13, 21);
        let a = random(m, n, 14);
        let mut got = vec![0.0; n * m];
        let mut want = vec![0.0; n * m];
        transpose(m, n, &a, n, &mut got, m);
        reference::transpose(m, n, &a, n, &mut want, m);
        assert_eq!(got, want);
    }

    #[test]
    #[should_panic(expected = "slice length")]
    fn short_slice_panics() {
        let mut out = vec![0.0; 4];
        matmul_nt(2, 2, 3, &[0.0; 5], 3, &[0.0; 6], 3, &mut out, 2);
    }

    #[test]
    fn auto_threads_stays_serial_for_training_chunks() {
        // paper-default chunk geometry: C=50, N=100, d=100
        assert_eq!(auto_threads(50, 100, 100), 1);
        // a large eval-sized product may fan out (>= 1 either way)
        assert!(auto_threads(4096, 4096, 400) >= 1);
    }
}
