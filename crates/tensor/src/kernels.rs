//! Cache-blocked, panel-packed, autovectorization-friendly matmul kernels.
//!
//! The paper's core performance claim (§4.3) is that batched negative
//! sampling turns `B · B_n` independent dot products into one `C × (C+U)`
//! matrix product. That only pays off if the matrix product itself keeps
//! the hardware busy, so this module provides the real kernels behind
//! [`crate::matrix::Matrix`]:
//!
//! - **Blocked `A·Bᵀ`** ([`matmul_nt`]): the score-matrix kernel. `B` is
//!   packed once into `NR`-wide k-major panels, `A` into `MR`-wide panels
//!   per row group, and an `MR × NR` register-tile microkernel walks both
//!   packed panels with no bounds checks in the hot loop.
//! - **Runtime SIMD dispatch** ([`dispatch`]): the register tile, the
//!   `matmul` row kernel, and the fused dual axpy each have three
//!   implementations — safe autovectorized Rust (`scalar`), explicit
//!   SSE2 intrinsics bit-identical to scalar (`sse2`), and an AVX2+FMA
//!   fast path (`avx2`) — selected once per process by CPU feature
//!   detection, overridable with `PBG_KERNEL`, and per-call via the
//!   `*_with` entry points. Flop accounting sits *above* the dispatch
//!   point, so every variant reports identical counts.
//! - **Blocked `A·B`** ([`matmul`]): k-unrolled row-accumulator form used
//!   by gradient products and the RESCAL operator.
//! - **Fused score+grad** ([`score_grads`]): given the loss gradient `G`
//!   w.r.t. a score matrix `S = A·Bᵀ`, computes *both* gradient products
//!   `dA = G·B` and `dB = Gᵀ·A` in a single pass over `G`, so `G` is read
//!   once and `A`'s rows are hot in cache while they feed `dB`.
//! - **Scoped-thread row split** ([`matmul_nt_packed_threaded`]): for large
//!   shapes, output row groups are split across `std::thread::scope`
//!   threads. Each `(i, j)` element is computed by exactly one thread in
//!   exactly the same order as the serial kernel, so results are
//!   bit-identical for every thread count.
//! - **[`reference`]**: the naive triple-loop kernels, kept as the oracle
//!   the differential test harness (`tests/kernel_diff.rs`) compares
//!   against.
//!
//! All kernels take raw slices with explicit row strides (`ld*`, in
//! elements, BLAS-style), so sub-matrices and padded layouts are testable;
//! [`crate::matrix::Matrix`] calls them with `ld = cols`.

// Stride-explicit BLAS-style signatures (m, n, k, a, lda, b, ldb, ...)
// necessarily exceed clippy's argument-count lint.
#![allow(clippy::too_many_arguments)]

/// Rows of `A` per microkernel tile.
pub const MR: usize = 4;
/// Rows of `B` (columns of the output) per packed panel.
pub const NR: usize = 8;
/// Row-group size for the A-side cache block: one block of packed A
/// (`MC × k` at the dimensions PBG uses) stays resident in L2 while every
/// B panel streams past it.
pub const MC: usize = 64;
/// Flop threshold (`m·n·k`) above which [`auto_threads`] engages the
/// scoped-thread row split. Training chunks (`C = 50`, `N ≈ 100`,
/// `d ≈ 100` → 5·10⁵ flops) stay far below it, so HOGWILD threads never
/// nest their own thread pools; evaluation- and benchmark-sized products
/// (≥ ~16M flops) fan out.
pub const THREAD_FLOP_THRESHOLD: usize = 1 << 24;

/// Process-wide count of floating-point operations executed by the
/// blocked kernels, for live GFLOP/s gauges. Counted where the work
/// actually happens: [`matmul_nt_packed`] (which the `nt`, auto, and
/// per-thread paths all bottom out in), [`matmul`], and [`score_grads`]
/// (4·k flops per *nonzero* gradient element — zero rows are skipped by
/// the kernel, so the count reflects work done, not the dense bound).
/// Relaxed ordering: the counter is monotonic bookkeeping, never a
/// synchronization edge.
static FLOPS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Total flops executed by this process's kernels since start.
/// Monotonic; readers take deltas to compute rates.
pub fn flops_executed() -> u64 {
    FLOPS.load(std::sync::atomic::Ordering::Relaxed)
}

#[inline]
fn count_flops(n: u64) {
    FLOPS.fetch_add(n, std::sync::atomic::Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Runtime CPU-feature dispatch
// ---------------------------------------------------------------------------

/// Runtime selection of the microkernel variant.
///
/// Three implementations share every blocked kernel's outer loops and
/// packing (and therefore the flop accounting, which happens *above* the
/// dispatch point so all variants report identical `2mnk` / `4k·nnz`
/// counts):
///
/// | variant  | inner loop                        | numerics |
/// |----------|-----------------------------------|----------|
/// | `scalar` | safe Rust, autovectorized         | baseline |
/// | `sse2`   | explicit `__m128` mul+add         | **bit-identical** to `scalar` (same per-element op order, no FMA) |
/// | `avx2`   | `__m256` FMA, k-unrolled ×2       | ≤ a few ULPs from `scalar` (FMA rounds once per mul-add; the k loop is split into even/odd partial sums) |
///
/// The process default is the best CPU-supported variant, overridable
/// with `PBG_KERNEL=scalar|sse2|avx2`; an unsupported request falls back
/// down the ladder with a warning on stderr, and an unknown value is an
/// error listing the valid set. Every kernel also has a `*_with` entry
/// point taking an explicit [`Variant`], which is what lets the
/// differential battery exercise all variants inside one process.
pub mod dispatch {
    use std::sync::OnceLock;

    /// A microkernel implementation choice. Ordering is the fallback
    /// ladder: `Avx2` falls back to `Sse2`, which falls back to `Scalar`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    pub enum Variant {
        /// Safe autovectorized Rust — always available, and the variant
        /// the committed golden score vectors were recorded under.
        Scalar,
        /// Explicit SSE2 intrinsics, mul+add (no FMA): bit-identical to
        /// `Scalar` by construction.
        Sse2,
        /// Explicit AVX2+FMA intrinsics — the fast path.
        Avx2,
    }

    /// The valid `PBG_KERNEL` values, for error messages.
    pub const VALID: &str = "scalar, sse2, avx2";

    impl Variant {
        /// All variants, ladder order.
        pub fn all() -> [Variant; 3] {
            [Variant::Scalar, Variant::Sse2, Variant::Avx2]
        }

        /// The variants this CPU can actually run.
        pub fn supported_variants() -> Vec<Variant> {
            Variant::all()
                .into_iter()
                .filter(|v| v.supported())
                .collect()
        }

        /// The `PBG_KERNEL` spelling of this variant.
        pub fn name(self) -> &'static str {
            match self {
                Variant::Scalar => "scalar",
                Variant::Sse2 => "sse2",
                Variant::Avx2 => "avx2",
            }
        }

        /// Parses a `PBG_KERNEL` value.
        ///
        /// # Errors
        ///
        /// Unknown values error with the valid set listed.
        pub fn parse(s: &str) -> Result<Variant, String> {
            match s.trim().to_ascii_lowercase().as_str() {
                "scalar" => Ok(Variant::Scalar),
                "sse2" => Ok(Variant::Sse2),
                "avx2" => Ok(Variant::Avx2),
                other => Err(format!(
                    "unknown PBG_KERNEL value `{other}` (valid values: {VALID})"
                )),
            }
        }

        /// Whether this CPU can execute the variant's intrinsics.
        pub fn supported(self) -> bool {
            match self {
                Variant::Scalar => true,
                #[cfg(target_arch = "x86_64")]
                Variant::Sse2 => std::arch::is_x86_feature_detected!("sse2"),
                #[cfg(target_arch = "x86_64")]
                Variant::Avx2 => {
                    std::arch::is_x86_feature_detected!("avx2")
                        && std::arch::is_x86_feature_detected!("fma")
                }
                #[cfg(not(target_arch = "x86_64"))]
                _ => false,
            }
        }

        /// The variant a `*_with` call actually runs: the request when
        /// supported, else [`Variant::Scalar`] — an explicit per-call
        /// request must degrade safely, never hit illegal instructions.
        pub(crate) fn for_call(self) -> Variant {
            if self.supported() {
                self
            } else {
                Variant::Scalar
            }
        }
    }

    /// Resolves a requested variant against a support predicate: the
    /// request itself when supported, otherwise the next variant down
    /// the ladder, plus a human-readable fallback warning. Taking the
    /// predicate as an argument is what makes the "forced-unsupported"
    /// fallback path testable on hardware that supports everything.
    pub fn resolve(
        requested: Variant,
        supported: impl Fn(Variant) -> bool,
    ) -> (Variant, Option<String>) {
        if supported(requested) {
            return (requested, None);
        }
        let fallback = match requested {
            Variant::Avx2 if supported(Variant::Sse2) => Variant::Sse2,
            _ => Variant::Scalar,
        };
        (
            fallback,
            Some(format!(
                "PBG_KERNEL={} is not supported by this CPU; falling back to {}",
                requested.name(),
                fallback.name()
            )),
        )
    }

    /// The best CPU-supported variant (the no-override default).
    pub fn best_supported() -> Variant {
        [Variant::Avx2, Variant::Sse2]
            .into_iter()
            .find(|v| v.supported())
            .unwrap_or(Variant::Scalar)
    }

    /// The process-wide variant, fixed at first use.
    static ACTIVE: OnceLock<Variant> = OnceLock::new();

    /// Initializes the process-wide variant from `PBG_KERNEL` (or the
    /// best supported variant when unset), logging a fallback warning to
    /// stderr if the request is unsupported. Idempotent; returns the
    /// variant actually in effect.
    ///
    /// # Errors
    ///
    /// An unparseable `PBG_KERNEL` value errors with the valid set
    /// listed (and leaves the dispatcher uninitialized).
    pub fn init_from_env() -> Result<Variant, String> {
        if let Some(v) = ACTIVE.get() {
            return Ok(*v);
        }
        let chosen = match std::env::var("PBG_KERNEL") {
            Ok(raw) => {
                let requested = Variant::parse(&raw)?;
                let (resolved, warning) = resolve(requested, Variant::supported);
                if let Some(w) = warning {
                    eprintln!("pbg-tensor: {w}");
                }
                resolved
            }
            Err(_) => best_supported(),
        };
        Ok(*ACTIVE.get_or_init(|| chosen))
    }

    /// Pins the process-wide variant (first caller wins; later calls —
    /// and the env default — are ignored once set). Used by golden-file
    /// test binaries to lock dispatch to [`Variant::Scalar`] so committed
    /// bit-exact vectors stay host-independent. Unsupported requests pin
    /// `Scalar`. Returns the variant actually in effect.
    pub fn force(v: Variant) -> Variant {
        *ACTIVE.get_or_init(|| v.for_call())
    }

    /// The variant the argument-less kernel entry points run.
    ///
    /// # Panics
    ///
    /// Panics if `PBG_KERNEL` is set to an unknown value; front ends
    /// that want a clean error should call [`init_from_env`] first.
    pub fn active() -> Variant {
        if let Some(v) = ACTIVE.get() {
            return *v;
        }
        match init_from_env() {
            Ok(v) => v,
            Err(msg) => panic!("{msg}"),
        }
    }
}

pub use dispatch::Variant;

// ---------------------------------------------------------------------------
// Explicit-SIMD microkernels (x86_64)
// ---------------------------------------------------------------------------

/// Guarded intrinsics implementations of the three inner loops (the
/// `MR × NR` register tile, the `matmul` row kernel, and the fused
/// dual-axpy of `score_grads`).
///
/// Safety argument, common to every function here: each is
/// `#[target_feature]`-gated and `unsafe` *only* because of that gate —
/// all memory access is through slice indexing or pointers derived from
/// slices whose lengths the (safe) callers have already checked, with
/// the same bounds the scalar code uses. The callers guarantee the
/// feature gate: a variant only reaches a call site via
/// [`dispatch::Variant::for_call`] (which degrades unsupported requests
/// to scalar) or [`dispatch::resolve`] (which checks
/// `is_x86_feature_detected!`).
#[cfg(target_arch = "x86_64")]
mod simd {
    // Index-based loops here mirror the scalar kernels' accumulator
    // walk order, which the bit-identity tests depend on.
    #![allow(clippy::needless_range_loop)]
    use super::{MR, NR};
    use std::arch::x86_64::*;

    /// AVX2+FMA register tile: one `__m256` of `NR = 8` output columns
    /// per row, `k` unrolled ×2 into independent even/odd accumulator
    /// chains (8 FMA chains total — enough instruction-level parallelism
    /// to sustain 2 FMAs/cycle), combined with one add at the end. The
    /// even/odd split reassociates the k-sum, so results differ from
    /// scalar by rounding only (ULP-checked by the differential battery).
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn micro_nt_avx2(k: usize, apanel: &[f32], bpanel: &[f32]) -> [[f32; NR]; MR] {
        debug_assert!(apanel.len() >= k * MR && bpanel.len() >= k * NR);
        let ap = apanel.as_ptr();
        let bp = bpanel.as_ptr();
        let mut acc_e = [_mm256_setzero_ps(); MR];
        let mut acc_o = [_mm256_setzero_ps(); MR];
        let k2 = k & !1;
        let mut kk = 0;
        while kk < k2 {
            let b0 = _mm256_loadu_ps(bp.add(kk * NR));
            let b1 = _mm256_loadu_ps(bp.add((kk + 1) * NR));
            let a0 = ap.add(kk * MR);
            let a1 = ap.add((kk + 1) * MR);
            for r in 0..MR {
                acc_e[r] = _mm256_fmadd_ps(_mm256_broadcast_ss(&*a0.add(r)), b0, acc_e[r]);
                acc_o[r] = _mm256_fmadd_ps(_mm256_broadcast_ss(&*a1.add(r)), b1, acc_o[r]);
            }
            kk += 2;
        }
        if kk < k {
            let b0 = _mm256_loadu_ps(bp.add(kk * NR));
            let a0 = ap.add(kk * MR);
            for r in 0..MR {
                acc_e[r] = _mm256_fmadd_ps(_mm256_broadcast_ss(&*a0.add(r)), b0, acc_e[r]);
            }
        }
        let mut out = [[0.0f32; NR]; MR];
        for r in 0..MR {
            _mm256_storeu_ps(out[r].as_mut_ptr(), _mm256_add_ps(acc_e[r], acc_o[r]));
        }
        out
    }

    /// SSE2 register tile: two `__m128` halves per row, separate
    /// multiply and add (no FMA), accumulators walked in the same `kk`
    /// order as the scalar tile — each output lane performs the exact
    /// op sequence `acc = acc + a*b` the scalar code performs, so this
    /// variant is bit-identical to `scalar` (asserted by the battery).
    #[target_feature(enable = "sse2")]
    pub unsafe fn micro_nt_sse2(k: usize, apanel: &[f32], bpanel: &[f32]) -> [[f32; NR]; MR] {
        debug_assert!(apanel.len() >= k * MR && bpanel.len() >= k * NR);
        let ap = apanel.as_ptr();
        let bp = bpanel.as_ptr();
        let mut lo = [_mm_setzero_ps(); MR];
        let mut hi = [_mm_setzero_ps(); MR];
        for kk in 0..k {
            let b_lo = _mm_loadu_ps(bp.add(kk * NR));
            let b_hi = _mm_loadu_ps(bp.add(kk * NR + 4));
            for r in 0..MR {
                let av = _mm_set1_ps(*ap.add(kk * MR + r));
                lo[r] = _mm_add_ps(lo[r], _mm_mul_ps(av, b_lo));
                hi[r] = _mm_add_ps(hi[r], _mm_mul_ps(av, b_hi));
            }
        }
        let mut out = [[0.0f32; NR]; MR];
        for r in 0..MR {
            _mm_storeu_ps(out[r].as_mut_ptr(), lo[r]);
            _mm_storeu_ps(out[r].as_mut_ptr().add(4), hi[r]);
        }
        out
    }

    /// AVX2+FMA `matmul` row kernel: the scalar row kernel's shape (four
    /// k-steps fused per pass over the output row) with the `j` loop
    /// vectorized 8-wide and each mul-add fused. The scalar tail (both
    /// `j` and `k` remainders) uses `f32::mul_add` so the whole variant
    /// is FMA-consistent.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn matmul_row_avx2(arow: &[f32], b: &[f32], ldb: usize, orow: &mut [f32]) {
        let (k, n) = (arow.len(), orow.len());
        let k4 = k - k % 4;
        let mut kk = 0;
        while kk < k4 {
            let (a0, a1, a2, a3) = (arow[kk], arow[kk + 1], arow[kk + 2], arow[kk + 3]);
            let (v0, v1, v2, v3) = (
                _mm256_set1_ps(a0),
                _mm256_set1_ps(a1),
                _mm256_set1_ps(a2),
                _mm256_set1_ps(a3),
            );
            let b0 = b.as_ptr().add(kk * ldb);
            let b1 = b.as_ptr().add((kk + 1) * ldb);
            let b2 = b.as_ptr().add((kk + 2) * ldb);
            let b3 = b.as_ptr().add((kk + 3) * ldb);
            let n8 = n & !7;
            let mut j = 0;
            while j < n8 {
                let mut o = _mm256_loadu_ps(orow.as_ptr().add(j));
                o = _mm256_fmadd_ps(v0, _mm256_loadu_ps(b0.add(j)), o);
                o = _mm256_fmadd_ps(v1, _mm256_loadu_ps(b1.add(j)), o);
                o = _mm256_fmadd_ps(v2, _mm256_loadu_ps(b2.add(j)), o);
                o = _mm256_fmadd_ps(v3, _mm256_loadu_ps(b3.add(j)), o);
                _mm256_storeu_ps(orow.as_mut_ptr().add(j), o);
                j += 8;
            }
            while j < n {
                let mut o = orow[j];
                o = a0.mul_add(*b0.add(j), o);
                o = a1.mul_add(*b1.add(j), o);
                o = a2.mul_add(*b2.add(j), o);
                o = a3.mul_add(*b3.add(j), o);
                orow[j] = o;
                j += 1;
            }
            kk += 4;
        }
        for kk in k4..k {
            let av = arow[kk];
            if av == 0.0 {
                continue;
            }
            let brow = b.as_ptr().add(kk * ldb);
            let vav = _mm256_set1_ps(av);
            let n8 = n & !7;
            let mut j = 0;
            while j < n8 {
                let o = _mm256_loadu_ps(orow.as_ptr().add(j));
                let o = _mm256_fmadd_ps(vav, _mm256_loadu_ps(brow.add(j)), o);
                _mm256_storeu_ps(orow.as_mut_ptr().add(j), o);
                j += 8;
            }
            while j < n {
                orow[j] = av.mul_add(*brow.add(j), orow[j]);
                j += 1;
            }
        }
    }

    /// SSE2 `matmul` row kernel: per output lane, the identical
    /// expression tree the scalar kernel evaluates —
    /// `o + (((a0·b0 + a1·b1) + a2·b2) + a3·b3)` with separate mul and
    /// add — so it is bit-identical to `scalar`. Tails fall through to
    /// the very same scalar statements.
    #[target_feature(enable = "sse2")]
    pub unsafe fn matmul_row_sse2(arow: &[f32], b: &[f32], ldb: usize, orow: &mut [f32]) {
        let (k, n) = (arow.len(), orow.len());
        let k4 = k - k % 4;
        let mut kk = 0;
        while kk < k4 {
            let (a0, a1, a2, a3) = (arow[kk], arow[kk + 1], arow[kk + 2], arow[kk + 3]);
            let (v0, v1, v2, v3) = (
                _mm_set1_ps(a0),
                _mm_set1_ps(a1),
                _mm_set1_ps(a2),
                _mm_set1_ps(a3),
            );
            let b0 = b.as_ptr().add(kk * ldb);
            let b1 = b.as_ptr().add((kk + 1) * ldb);
            let b2 = b.as_ptr().add((kk + 2) * ldb);
            let b3 = b.as_ptr().add((kk + 3) * ldb);
            let n4 = n & !3;
            let mut j = 0;
            while j < n4 {
                let t01 = _mm_add_ps(
                    _mm_mul_ps(v0, _mm_loadu_ps(b0.add(j))),
                    _mm_mul_ps(v1, _mm_loadu_ps(b1.add(j))),
                );
                let t = _mm_add_ps(
                    _mm_add_ps(t01, _mm_mul_ps(v2, _mm_loadu_ps(b2.add(j)))),
                    _mm_mul_ps(v3, _mm_loadu_ps(b3.add(j))),
                );
                let o = _mm_add_ps(_mm_loadu_ps(orow.as_ptr().add(j)), t);
                _mm_storeu_ps(orow.as_mut_ptr().add(j), o);
                j += 4;
            }
            while j < n {
                orow[j] += a0 * *b0.add(j) + a1 * *b1.add(j) + a2 * *b2.add(j) + a3 * *b3.add(j);
                j += 1;
            }
            kk += 4;
        }
        for kk in k4..k {
            let av = arow[kk];
            if av == 0.0 {
                continue;
            }
            let brow = b.as_ptr().add(kk * ldb);
            let vav = _mm_set1_ps(av);
            let n4 = n & !3;
            let mut j = 0;
            while j < n4 {
                let o = _mm_add_ps(
                    _mm_loadu_ps(orow.as_ptr().add(j)),
                    _mm_mul_ps(vav, _mm_loadu_ps(brow.add(j))),
                );
                _mm_storeu_ps(orow.as_mut_ptr().add(j), o);
                j += 4;
            }
            while j < n {
                orow[j] += av * *brow.add(j);
                j += 1;
            }
        }
    }

    /// AVX2+FMA fused dual axpy for one nonzero gradient entry:
    /// `ga += g·b` and `gb += g·a` over the contiguous `k` extent, FMA
    /// per element (scalar tail uses `f32::mul_add` for consistency).
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn axpy2_avx2(
        gij: f32,
        brow: &[f32],
        garow: &mut [f32],
        arow: &[f32],
        gbrow: &mut [f32],
    ) {
        let k = brow.len();
        debug_assert!(garow.len() == k && arow.len() == k && gbrow.len() == k);
        let g = _mm256_set1_ps(gij);
        let k8 = k & !7;
        let mut i = 0;
        while i < k8 {
            let ga = _mm256_loadu_ps(garow.as_ptr().add(i));
            let bv = _mm256_loadu_ps(brow.as_ptr().add(i));
            _mm256_storeu_ps(garow.as_mut_ptr().add(i), _mm256_fmadd_ps(g, bv, ga));
            let gb = _mm256_loadu_ps(gbrow.as_ptr().add(i));
            let av = _mm256_loadu_ps(arow.as_ptr().add(i));
            _mm256_storeu_ps(gbrow.as_mut_ptr().add(i), _mm256_fmadd_ps(g, av, gb));
            i += 8;
        }
        while i < k {
            garow[i] = gij.mul_add(brow[i], garow[i]);
            gbrow[i] = gij.mul_add(arow[i], gbrow[i]);
            i += 1;
        }
    }

    /// SSE2 fused dual axpy: separate mul and add, per-element op order
    /// identical to the scalar loop — bit-identical to `scalar`.
    #[target_feature(enable = "sse2")]
    pub unsafe fn axpy2_sse2(
        gij: f32,
        brow: &[f32],
        garow: &mut [f32],
        arow: &[f32],
        gbrow: &mut [f32],
    ) {
        let k = brow.len();
        debug_assert!(garow.len() == k && arow.len() == k && gbrow.len() == k);
        let g = _mm_set1_ps(gij);
        let k4 = k & !3;
        let mut i = 0;
        while i < k4 {
            let ga = _mm_loadu_ps(garow.as_ptr().add(i));
            let bv = _mm_loadu_ps(brow.as_ptr().add(i));
            _mm_storeu_ps(garow.as_mut_ptr().add(i), _mm_add_ps(ga, _mm_mul_ps(g, bv)));
            let gb = _mm_loadu_ps(gbrow.as_ptr().add(i));
            let av = _mm_loadu_ps(arow.as_ptr().add(i));
            _mm_storeu_ps(gbrow.as_mut_ptr().add(i), _mm_add_ps(gb, _mm_mul_ps(g, av)));
            i += 4;
        }
        while i < k {
            garow[i] += gij * brow[i];
            gbrow[i] += gij * arow[i];
            i += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// Reference kernels (the differential-test oracle)
// ---------------------------------------------------------------------------

/// Naive triple-loop kernels, the oracle for the differential harness.
///
/// These are deliberately the simplest correct implementations: a single
/// sequential accumulator per output element, no blocking, no packing, no
/// unrolling. The blocked kernels reassociate the k-sum (8-lane
/// accumulators, register tiles), so blocked and reference results agree
/// to a few ULPs, not bit-for-bit — exactly what the ULP-aware comparator
/// in `tests/kernel_diff.rs` checks.
pub mod reference {
    /// `out[m×n] = a[m×k] · b[k×n]`, all row-major with explicit strides.
    ///
    /// # Panics
    ///
    /// Panics if any slice is too short for its shape/stride.
    pub fn matmul(
        m: usize,
        n: usize,
        k: usize,
        a: &[f32],
        lda: usize,
        b: &[f32],
        ldb: usize,
        out: &mut [f32],
        ldo: usize,
    ) {
        super::check_dims(m, k, a.len(), lda, "reference::matmul a");
        super::check_dims(k, n, b.len(), ldb, "reference::matmul b");
        super::check_dims(m, n, out.len(), ldo, "reference::matmul out");
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += a[i * lda + kk] * b[kk * ldb + j];
                }
                out[i * ldo + j] = acc;
            }
        }
    }

    /// `out[m×n] = a[m×k] · b[n×k]ᵀ`, all row-major with explicit strides.
    ///
    /// # Panics
    ///
    /// Panics if any slice is too short for its shape/stride.
    pub fn matmul_nt(
        m: usize,
        n: usize,
        k: usize,
        a: &[f32],
        lda: usize,
        b: &[f32],
        ldb: usize,
        out: &mut [f32],
        ldo: usize,
    ) {
        super::check_dims(m, k, a.len(), lda, "reference::matmul_nt a");
        super::check_dims(n, k, b.len(), ldb, "reference::matmul_nt b");
        super::check_dims(m, n, out.len(), ldo, "reference::matmul_nt out");
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += a[i * lda + kk] * b[j * ldb + kk];
                }
                out[i * ldo + j] = acc;
            }
        }
    }

    /// `out[n×m] = a[m×n]ᵀ`, row-major with explicit strides.
    ///
    /// # Panics
    ///
    /// Panics if any slice is too short for its shape/stride.
    pub fn transpose(m: usize, n: usize, a: &[f32], lda: usize, out: &mut [f32], ldo: usize) {
        super::check_dims(m, n, a.len(), lda, "reference::transpose a");
        super::check_dims(n, m, out.len(), ldo, "reference::transpose out");
        for i in 0..m {
            for j in 0..n {
                out[j * ldo + i] = a[i * lda + j];
            }
        }
    }

    /// Reference fused score-gradient: `ga = g·b`, `gb = gᵀ·a` where
    /// `g` is `m×n`, `a` is `m×k`, `b` is `n×k` (see
    /// [`super::score_grads`]).
    ///
    /// # Panics
    ///
    /// Panics if any slice is too short for its shape/stride.
    #[allow(clippy::too_many_arguments)]
    pub fn score_grads(
        m: usize,
        n: usize,
        k: usize,
        a: &[f32],
        lda: usize,
        b: &[f32],
        ldb: usize,
        g: &[f32],
        ldg: usize,
        ga: &mut [f32],
        ldga: usize,
        gb: &mut [f32],
        ldgb: usize,
    ) {
        super::check_dims(m, k, a.len(), lda, "reference::score_grads a");
        super::check_dims(n, k, b.len(), ldb, "reference::score_grads b");
        super::check_dims(m, n, g.len(), ldg, "reference::score_grads g");
        super::check_dims(m, k, ga.len(), ldga, "reference::score_grads ga");
        super::check_dims(n, k, gb.len(), ldgb, "reference::score_grads gb");
        // ga = g · b
        matmul(m, k, n, g, ldg, b, ldb, ga, ldga);
        // gb = gᵀ · a (sequential over i per output element)
        for j in 0..n {
            for kk in 0..k {
                let mut acc = 0.0f32;
                for i in 0..m {
                    acc += g[i * ldg + j] * a[i * lda + kk];
                }
                gb[j * ldgb + kk] = acc;
            }
        }
    }
}

/// Panics unless a `rows × cols` row-major view with stride `ld` fits in a
/// slice of length `len`. Empty views (0 rows or cols) are always fine.
fn check_dims(rows: usize, cols: usize, len: usize, ld: usize, what: &str) {
    if rows == 0 || cols == 0 {
        return;
    }
    assert!(ld >= cols, "{what}: stride {ld} < row length {cols}");
    let needed = (rows - 1) * ld + cols;
    assert!(
        len >= needed,
        "{what}: slice length {len} < required {needed} ({rows}x{cols}, stride {ld})"
    );
}

// ---------------------------------------------------------------------------
// Packing
// ---------------------------------------------------------------------------

/// `B` (`n × k`, row-major) repacked for the `A·Bᵀ` kernel: rows are
/// grouped into panels of [`NR`], each panel stored k-major
/// (`panel[kk * NR + j]` = `B[j0 + j][kk]`), zero-padded past `n`.
///
/// Packing is O(n·k) — one pass over `B` — and is what lets the
/// microkernel load [`NR`] output columns' worth of `B` as one contiguous
/// vector per k step. A packed matrix is reusable across any number of
/// products against it, which is how the fused trainer path packs a
/// chunk's candidate negatives exactly once.
#[derive(Debug, Clone)]
pub struct PackedNt {
    n: usize,
    k: usize,
    panels: Vec<f32>,
}

impl PackedNt {
    /// Packs `b` (`n × k`, stride `ldb`).
    ///
    /// # Panics
    ///
    /// Panics if `b` is too short for the shape/stride.
    pub fn pack(n: usize, k: usize, b: &[f32], ldb: usize) -> Self {
        check_dims(n, k, b.len(), ldb, "PackedNt::pack b");
        if k == 0 {
            return PackedNt {
                n,
                k,
                panels: Vec::new(),
            };
        }
        let n_panels = n.div_ceil(NR);
        let mut panels = vec![0.0f32; n_panels * k * NR];
        for p in 0..n_panels {
            let j0 = p * NR;
            let jn = NR.min(n - j0);
            let panel = &mut panels[p * k * NR..(p + 1) * k * NR];
            for jj in 0..jn {
                let row = &b[(j0 + jj) * ldb..(j0 + jj) * ldb + k];
                for (kk, &v) in row.iter().enumerate() {
                    panel[kk * NR + jj] = v;
                }
            }
        }
        PackedNt { n, k, panels }
    }

    /// Number of packed rows of `B` (output columns).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Inner (k) dimension.
    pub fn k(&self) -> usize {
        self.k
    }

    fn panel(&self, p: usize) -> &[f32] {
        &self.panels[p * self.k * NR..(p + 1) * self.k * NR]
    }
}

/// Packs rows `[i0, i0+rows)` of `a` (stride `lda`, row length `k`) into an
/// MR-interleaved panel: `dst[kk * MR + r] = a[(i0 + r), kk]`, zero-padded
/// past `rows`.
fn pack_a_group(a: &[f32], lda: usize, k: usize, i0: usize, rows: usize, dst: &mut [f32]) {
    debug_assert!(rows <= MR && dst.len() == k * MR);
    dst.iter_mut().for_each(|v| *v = 0.0);
    for r in 0..rows {
        let row = &a[(i0 + r) * lda..(i0 + r) * lda + k];
        for (kk, &v) in row.iter().enumerate() {
            dst[kk * MR + r] = v;
        }
    }
}

// ---------------------------------------------------------------------------
// Blocked A·Bᵀ (the negative-scoring kernel)
// ---------------------------------------------------------------------------

/// The `MR × NR` register-tile microkernel: `acc[r][j] += apanel ⊗ bpanel`
/// over the full k extent. Both panels are contiguous and walked with
/// `chunks_exact`, so the inner loop is bounds-check-free straight-line
/// code over fixed-size arrays — the exact shape LLVM turns into packed
/// FMAs.
#[inline]
fn micro_nt(k: usize, apanel: &[f32], bpanel: &[f32]) -> [[f32; NR]; MR] {
    debug_assert!(apanel.len() >= k * MR && bpanel.len() >= k * NR);
    let mut acc = [[0.0f32; NR]; MR];
    for (ar, br) in apanel.chunks_exact(MR).take(k).zip(bpanel.chunks_exact(NR)) {
        for r in 0..MR {
            let av = ar[r];
            for j in 0..NR {
                acc[r][j] += av * br[j];
            }
        }
    }
    acc
}

/// One register tile under an explicit (already support-checked) variant.
#[inline]
fn micro_nt_v(v: Variant, k: usize, apanel: &[f32], bpanel: &[f32]) -> [[f32; NR]; MR] {
    match v {
        Variant::Scalar => micro_nt(k, apanel, bpanel),
        // SAFETY: `v` arrived via `Variant::for_call`/`dispatch::resolve`,
        // both of which verify CPU support before handing out the variant;
        // slice lengths were checked by the blocked caller.
        #[cfg(target_arch = "x86_64")]
        Variant::Sse2 => unsafe { simd::micro_nt_sse2(k, apanel, bpanel) },
        #[cfg(target_arch = "x86_64")]
        Variant::Avx2 => unsafe { simd::micro_nt_avx2(k, apanel, bpanel) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => micro_nt(k, apanel, bpanel),
    }
}

/// `out[m×n] = a[m×k] · b[n×k]ᵀ` against a pre-packed `B`.
///
/// Blocking: `A` rows are processed in [`MC`]-row cache blocks; within a
/// block each [`MR`]-row group is packed once and then swept against every
/// `B` panel, so packed A stays in L1/L2 while `B` panels stream. The
/// register tile runs the process-wide [`dispatch::active`] variant.
///
/// # Panics
///
/// Panics if `a`/`out` are too short or `packed.k() != k`.
pub fn matmul_nt_packed(
    m: usize,
    k: usize,
    a: &[f32],
    lda: usize,
    packed: &PackedNt,
    out: &mut [f32],
    ldo: usize,
) {
    matmul_nt_packed_with(dispatch::active(), m, k, a, lda, packed, out, ldo);
}

/// [`matmul_nt_packed`] under an explicit microkernel [`Variant`]
/// (degraded to `Scalar` if the CPU lacks the request). Flop accounting
/// happens here, above the dispatch point, so every variant reports the
/// identical `2mnk` count.
///
/// # Panics
///
/// Panics if `a`/`out` are too short or `packed.k() != k`.
#[allow(clippy::too_many_arguments)]
pub fn matmul_nt_packed_with(
    v: Variant,
    m: usize,
    k: usize,
    a: &[f32],
    lda: usize,
    packed: &PackedNt,
    out: &mut [f32],
    ldo: usize,
) {
    let v = v.for_call();
    assert_eq!(packed.k(), k, "matmul_nt_packed: k mismatch");
    let n = packed.n();
    check_dims(m, k, a.len(), lda, "matmul_nt_packed a");
    check_dims(m, n, out.len(), ldo, "matmul_nt_packed out");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        for i in 0..m {
            out[i * ldo..i * ldo + n].iter_mut().for_each(|v| *v = 0.0);
        }
        return;
    }
    count_flops(2 * (m as u64) * (n as u64) * (k as u64));
    let n_panels = n.div_ceil(NR);
    let mut apanel = vec![0.0f32; k * MR];
    let mut ic = 0;
    while ic < m {
        let mc = MC.min(m - ic);
        let mut ig = 0;
        while ig < mc {
            let i0 = ic + ig;
            let mr = MR.min(m - i0);
            pack_a_group(a, lda, k, i0, mr, &mut apanel);
            for p in 0..n_panels {
                let acc = micro_nt_v(v, k, &apanel, packed.panel(p));
                let j0 = p * NR;
                let jn = NR.min(n - j0);
                for (r, acc_row) in acc.iter().enumerate().take(mr) {
                    let orow = &mut out[(i0 + r) * ldo + j0..(i0 + r) * ldo + j0 + jn];
                    orow.copy_from_slice(&acc_row[..jn]);
                }
            }
            ig += MR;
        }
        ic += MC;
    }
}

/// `out[m×n] = a[m×k] · b[n×k]ᵀ` — packs `b` and runs the blocked kernel.
///
/// # Panics
///
/// Panics if any slice is too short for its shape/stride.
pub fn matmul_nt(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    out: &mut [f32],
    ldo: usize,
) {
    matmul_nt_with(dispatch::active(), m, n, k, a, lda, b, ldb, out, ldo);
}

/// [`matmul_nt`] under an explicit microkernel [`Variant`].
///
/// # Panics
///
/// Panics if any slice is too short for its shape/stride.
#[allow(clippy::too_many_arguments)]
pub fn matmul_nt_with(
    v: Variant,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    out: &mut [f32],
    ldo: usize,
) {
    let packed = PackedNt::pack(n, k, b, ldb);
    matmul_nt_packed_with(v, m, k, a, lda, &packed, out, ldo);
}

/// Threads the serial kernel would use for an `m×n×k` product: 1 below
/// [`THREAD_FLOP_THRESHOLD`], otherwise up to `available_parallelism`,
/// capped so each thread gets at least one [`MC`] row block.
pub fn auto_threads(m: usize, n: usize, k: usize) -> usize {
    let flops = m.saturating_mul(n).saturating_mul(k);
    if flops < THREAD_FLOP_THRESHOLD {
        return 1;
    }
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    cores.min(m.div_ceil(MC)).max(1)
}

/// [`matmul_nt_packed`] with output rows split across `threads` scoped
/// threads (contiguous output only: `ldo == n`).
///
/// Each thread runs the identical serial kernel on a disjoint row range,
/// so the result is bit-identical to the single-threaded kernel for every
/// thread count — verified by `tests/kernel_diff.rs`.
///
/// # Panics
///
/// Panics if `threads == 0`, `ldo != packed.n()`, or slices are too short.
pub fn matmul_nt_packed_threaded(
    m: usize,
    k: usize,
    a: &[f32],
    lda: usize,
    packed: &PackedNt,
    out: &mut [f32],
    ldo: usize,
    threads: usize,
) {
    matmul_nt_packed_threaded_with(dispatch::active(), m, k, a, lda, packed, out, ldo, threads);
}

/// [`matmul_nt_packed_threaded`] under an explicit microkernel
/// [`Variant`]: the same variant is propagated to every row-range worker,
/// so the threaded result stays bit-identical to the serial kernel *of
/// that variant* for every thread count.
///
/// # Panics
///
/// Panics if `threads == 0`, `ldo != packed.n()`, or slices are too short.
#[allow(clippy::too_many_arguments)]
pub fn matmul_nt_packed_threaded_with(
    v: Variant,
    m: usize,
    k: usize,
    a: &[f32],
    lda: usize,
    packed: &PackedNt,
    out: &mut [f32],
    ldo: usize,
    threads: usize,
) {
    let v = v.for_call();
    assert!(threads > 0, "matmul_nt_packed_threaded: zero threads");
    let n = packed.n();
    assert_eq!(
        ldo, n,
        "matmul_nt_packed_threaded: threaded split needs contiguous output"
    );
    let threads = threads.min(m.div_ceil(MC)).max(1);
    if threads == 1 {
        matmul_nt_packed_with(v, m, k, a, lda, packed, out, ldo);
        return;
    }
    check_dims(m, k, a.len(), lda, "matmul_nt_packed_threaded a");
    check_dims(m, n, out.len(), ldo, "matmul_nt_packed_threaded out");
    // Split output rows into `threads` runs of whole MC blocks.
    let blocks = m.div_ceil(MC);
    let per = blocks.div_ceil(threads);
    std::thread::scope(|scope| {
        let mut rest = &mut out[..m * n];
        let mut row0 = 0usize;
        while row0 < m {
            let rows = (per * MC).min(m - row0);
            let (mine, tail) = rest.split_at_mut(rows * n);
            rest = tail;
            let i0 = row0;
            scope.spawn(move || {
                matmul_nt_packed_with(v, rows, k, &a[i0 * lda..], lda, packed, mine, n);
            });
            row0 += rows;
        }
    });
}

/// `out = a · bᵀ` choosing the thread split via [`auto_threads`]
/// (serial for training-chunk shapes, row-split for eval/bench shapes).
///
/// # Panics
///
/// Panics if any slice is too short for its shape/stride.
pub fn matmul_nt_auto(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    out: &mut [f32],
    ldo: usize,
) {
    let threads = if ldo == n { auto_threads(m, n, k) } else { 1 };
    let packed = PackedNt::pack(n, k, b, ldb);
    if threads > 1 {
        matmul_nt_packed_threaded(m, k, a, lda, &packed, out, ldo, threads);
    } else {
        matmul_nt_packed(m, k, a, lda, &packed, out, ldo);
    }
}

// ---------------------------------------------------------------------------
// Blocked A·B
// ---------------------------------------------------------------------------

/// `out[m×n] = a[m×k] · b[k×n]`, k-unrolled row-accumulator form.
///
/// For each output row, four k-steps are fused per pass so each `out[j]`
/// is loaded/stored once per four multiply-adds; the inner loop runs over
/// four contiguous `B` rows and one contiguous output row, which LLVM
/// vectorizes across `j`.
///
/// # Panics
///
/// Panics if any slice is too short for its shape/stride.
pub fn matmul(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    out: &mut [f32],
    ldo: usize,
) {
    matmul_with(dispatch::active(), m, n, k, a, lda, b, ldb, out, ldo);
}

/// The safe-Rust `matmul` row kernel: four k-steps fused per pass over
/// one pre-zeroed output row. This is the `Scalar` dispatch target and
/// the op-order contract the SSE2 row kernel mirrors lane-for-lane.
#[inline]
fn matmul_row_scalar(arow: &[f32], b: &[f32], ldb: usize, orow: &mut [f32]) {
    let (k, n) = (arow.len(), orow.len());
    let k4 = k - k % 4;
    let mut kk = 0;
    while kk < k4 {
        let (a0, a1, a2, a3) = (arow[kk], arow[kk + 1], arow[kk + 2], arow[kk + 3]);
        let b0 = &b[kk * ldb..kk * ldb + n];
        let b1 = &b[(kk + 1) * ldb..(kk + 1) * ldb + n];
        let b2 = &b[(kk + 2) * ldb..(kk + 2) * ldb + n];
        let b3 = &b[(kk + 3) * ldb..(kk + 3) * ldb + n];
        for (j, o) in orow.iter_mut().enumerate() {
            *o += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
        }
        kk += 4;
    }
    for kk in k4..k {
        let av = arow[kk];
        if av == 0.0 {
            continue;
        }
        let brow = &b[kk * ldb..kk * ldb + n];
        for (o, &bv) in orow.iter_mut().zip(brow) {
            *o += av * bv;
        }
    }
}

/// [`matmul`] under an explicit microkernel [`Variant`]. The `2mnk` flop
/// count is recorded here, above the dispatch point.
///
/// # Panics
///
/// Panics if any slice is too short for its shape/stride.
#[allow(clippy::too_many_arguments)]
pub fn matmul_with(
    v: Variant,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    out: &mut [f32],
    ldo: usize,
) {
    let v = v.for_call();
    check_dims(m, k, a.len(), lda, "matmul a");
    check_dims(k, n, b.len(), ldb, "matmul b");
    check_dims(m, n, out.len(), ldo, "matmul out");
    if m == 0 || n == 0 {
        return;
    }
    count_flops(2 * (m as u64) * (n as u64) * (k as u64));
    for i in 0..m {
        let arow = &a[i * lda..i * lda + k];
        let orow = &mut out[i * ldo..i * ldo + n];
        orow.iter_mut().for_each(|v| *v = 0.0);
        match v {
            Variant::Scalar => matmul_row_scalar(arow, b, ldb, orow),
            // SAFETY: `v` came through `Variant::for_call`, so the CPU
            // supports the feature gate; `check_dims` above guarantees
            // every `kk * ldb + j` access the row kernels make is within
            // `b`, and `arow`/`orow` carry their exact lengths.
            #[cfg(target_arch = "x86_64")]
            Variant::Sse2 => unsafe { simd::matmul_row_sse2(arow, b, ldb, orow) },
            #[cfg(target_arch = "x86_64")]
            Variant::Avx2 => unsafe { simd::matmul_row_avx2(arow, b, ldb, orow) },
            #[cfg(not(target_arch = "x86_64"))]
            _ => matmul_row_scalar(arow, b, ldb, orow),
        }
    }
}

// ---------------------------------------------------------------------------
// Blocked transpose
// ---------------------------------------------------------------------------

/// Tile edge for the blocked transpose.
const TR: usize = 8;

/// `out[n×m] = a[m×n]ᵀ` in `TR × TR` tiles, so both the source rows and
/// the destination rows are touched a cache line at a time instead of one
/// column stride per element.
///
/// # Panics
///
/// Panics if any slice is too short for its shape/stride.
pub fn transpose(m: usize, n: usize, a: &[f32], lda: usize, out: &mut [f32], ldo: usize) {
    check_dims(m, n, a.len(), lda, "transpose a");
    check_dims(n, m, out.len(), ldo, "transpose out");
    let mut i0 = 0;
    while i0 < m {
        let im = TR.min(m - i0);
        let mut j0 = 0;
        while j0 < n {
            let jn = TR.min(n - j0);
            for di in 0..im {
                let arow = &a[(i0 + di) * lda + j0..(i0 + di) * lda + j0 + jn];
                for (dj, &v) in arow.iter().enumerate() {
                    out[(j0 + dj) * ldo + (i0 + di)] = v;
                }
            }
            j0 += TR;
        }
        i0 += TR;
    }
}

// ---------------------------------------------------------------------------
// Fused score + gradient path
// ---------------------------------------------------------------------------

/// Backward of a score product `S = A·Bᵀ` in one pass: given `g = dL/dS`
/// (`m×n`), computes `ga = g·b` (`m×k`) and `gb = gᵀ·a` (`n×k`) together.
///
/// The fusion win: each row of `g` is loaded exactly once and feeds both
/// products, and `a`'s row `i` is still hot in cache when it is scattered
/// into `gb`. Rows of `g` that are entirely zero (fully satisfied margins,
/// fully masked candidates) are skipped.
///
/// `ga`/`gb` are overwritten.
///
/// # Panics
///
/// Panics if any slice is too short for its shape/stride.
#[allow(clippy::too_many_arguments)]
pub fn score_grads(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    g: &[f32],
    ldg: usize,
    ga: &mut [f32],
    ldga: usize,
    gb: &mut [f32],
    ldgb: usize,
) {
    score_grads_with(
        dispatch::active(),
        m,
        n,
        k,
        a,
        lda,
        b,
        ldb,
        g,
        ldg,
        ga,
        ldga,
        gb,
        ldgb,
    );
}

/// The safe-Rust fused dual axpy: `ga += g·b` then `gb += g·a`. This is
/// the `Scalar` dispatch target and the op-order contract the SSE2 path
/// mirrors lane-for-lane.
#[inline]
fn axpy2_scalar(gij: f32, brow: &[f32], garow: &mut [f32], arow: &[f32], gbrow: &mut [f32]) {
    for (o, &bv) in garow.iter_mut().zip(brow) {
        *o += gij * bv;
    }
    for (o, &av) in gbrow.iter_mut().zip(arow) {
        *o += gij * av;
    }
}

/// [`score_grads`] under an explicit microkernel [`Variant`]. The nonzero
/// count and the `4k·nnz` flop record live here, above the dispatch
/// point, so every variant reports the identical count.
///
/// # Panics
///
/// Panics if any slice is too short for its shape/stride.
#[allow(clippy::too_many_arguments)]
pub fn score_grads_with(
    v: Variant,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    g: &[f32],
    ldg: usize,
    ga: &mut [f32],
    ldga: usize,
    gb: &mut [f32],
    ldgb: usize,
) {
    let v = v.for_call();
    check_dims(m, k, a.len(), lda, "score_grads a");
    check_dims(n, k, b.len(), ldb, "score_grads b");
    check_dims(m, n, g.len(), ldg, "score_grads g");
    check_dims(m, k, ga.len(), ldga, "score_grads ga");
    check_dims(n, k, gb.len(), ldgb, "score_grads gb");
    for j in 0..n {
        gb[j * ldgb..j * ldgb + k].iter_mut().for_each(|v| *v = 0.0);
    }
    let mut nnz = 0u64;
    for i in 0..m {
        let grow = &g[i * ldg..i * ldg + n];
        let garow = &mut ga[i * ldga..i * ldga + k];
        garow.iter_mut().for_each(|v| *v = 0.0);
        let arow = &a[i * lda..i * lda + k];
        for (j, &gij) in grow.iter().enumerate() {
            if gij == 0.0 {
                continue;
            }
            nnz += 1;
            // ga[i] += g[i][j] * b[j]  and  gb[j] += g[i][j] * a[i]:
            // two contiguous axpys sharing the scalar — both vectorize.
            let brow = &b[j * ldb..j * ldb + k];
            let gbrow = &mut gb[j * ldgb..j * ldgb + k];
            match v {
                Variant::Scalar => axpy2_scalar(gij, brow, garow, arow, gbrow),
                // SAFETY: `v` came through `Variant::for_call`, so the
                // CPU supports the feature gate; all four row slices were
                // cut to exactly `k` elements just above.
                #[cfg(target_arch = "x86_64")]
                Variant::Sse2 => unsafe { simd::axpy2_sse2(gij, brow, garow, arow, gbrow) },
                #[cfg(target_arch = "x86_64")]
                Variant::Avx2 => unsafe { simd::axpy2_avx2(gij, brow, garow, arow, gbrow) },
                #[cfg(not(target_arch = "x86_64"))]
                _ => axpy2_scalar(gij, brow, garow, arow, gbrow),
            }
        }
    }
    count_flops(nnz * 4 * (k as u64));
}

/// A scoring context that packs the candidate side once and serves both
/// the forward score matrix and the fused backward — the §4.3 hot path as
/// one object.
///
/// ```
/// use pbg_tensor::kernels::ScoreGrad;
/// use pbg_tensor::matrix::Matrix;
///
/// let pos = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]); // C × d
/// let cand = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 0.0], &[0.0, 3.0]]);
/// let fused = ScoreGrad::new(&cand);
/// let scores = fused.scores(&pos); // C × N, one blocked product
/// assert_eq!(scores.row(0), &[1.0, 2.0, 0.0]);
/// let grad = Matrix::from_rows(&[&[1.0, 0.0, 0.0], &[0.0, 0.0, 1.0]]);
/// let (d_pos, d_cand) = fused.backward(&pos, &grad);
/// assert_eq!(d_pos.row(0), &[1.0, 1.0]);
/// assert_eq!(d_cand.row(2), &[0.0, 1.0]);
/// ```
#[derive(Debug, Clone)]
pub struct ScoreGrad {
    packed: PackedNt,
    cand: crate::matrix::Matrix,
}

impl ScoreGrad {
    /// Packs the candidate matrix (`N × d`) once.
    pub fn new(candidates: &crate::matrix::Matrix) -> Self {
        ScoreGrad {
            packed: PackedNt::pack(
                candidates.rows(),
                candidates.cols(),
                candidates.as_slice(),
                candidates.cols().max(1),
            ),
            cand: candidates.clone(),
        }
    }

    /// The candidate matrix this context was built from.
    pub fn candidates(&self) -> &crate::matrix::Matrix {
        &self.cand
    }

    /// Forward: `S = pos · candᵀ` (`C × N`) via the blocked packed kernel.
    ///
    /// # Panics
    ///
    /// Panics if `pos.cols() != candidates.cols()`.
    pub fn scores(&self, pos: &crate::matrix::Matrix) -> crate::matrix::Matrix {
        assert_eq!(
            pos.cols(),
            self.packed.k(),
            "ScoreGrad::scores: dim mismatch"
        );
        let m = pos.rows();
        let n = self.packed.n();
        let mut out = crate::matrix::Matrix::zeros(m, n);
        matmul_nt_packed(
            m,
            self.packed.k(),
            pos.as_slice(),
            pos.cols().max(1),
            &self.packed,
            out.as_mut_slice(),
            n.max(1),
        );
        out
    }

    /// Fused backward: given `grad = dL/dS`, returns
    /// `(dL/d pos, dL/d cand)` computed in one pass over `grad`.
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent.
    pub fn backward(
        &self,
        pos: &crate::matrix::Matrix,
        grad: &crate::matrix::Matrix,
    ) -> (crate::matrix::Matrix, crate::matrix::Matrix) {
        let (m, n, k) = (pos.rows(), self.cand.rows(), self.cand.cols());
        assert_eq!(pos.cols(), k, "ScoreGrad::backward: dim mismatch");
        assert_eq!(grad.rows(), m, "ScoreGrad::backward: grad rows");
        assert_eq!(grad.cols(), n, "ScoreGrad::backward: grad cols");
        let mut ga = crate::matrix::Matrix::zeros(m, k);
        let mut gb = crate::matrix::Matrix::zeros(n, k);
        score_grads(
            m,
            n,
            k,
            pos.as_slice(),
            k.max(1),
            self.cand.as_slice(),
            k.max(1),
            grad.as_slice(),
            n.max(1),
            ga.as_mut_slice(),
            k.max(1),
            gb.as_mut_slice(),
            k.max(1),
        );
        (ga, gb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use crate::rng::Xoshiro256;

    fn random(rows: usize, cols: usize, seed: u64) -> Vec<f32> {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        (0..rows * cols).map(|_| rng.gen_normal()).collect()
    }

    fn close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() <= tol * (1.0 + x.abs()), "[{i}]: {x} vs {y}");
        }
    }

    #[test]
    fn flop_counter_advances_by_the_work_done() {
        // Parallel tests share the process-wide counter, so assert on
        // deltas being at least the work this test submits.
        let (m, n, k) = (6, 10, 8);
        let a = random(m, k, 40);
        let b = random(n, k, 41);
        let mut out = vec![0.0; m * n];
        let before = flops_executed();
        matmul_nt(m, n, k, &a, k, &b, k, &mut out, n);
        let after = flops_executed();
        assert!(after - before >= 2 * (m * n * k) as u64);

        // score_grads counts only nonzero gradient entries (4k each)
        let g = {
            let mut g = vec![0.0f32; m * n];
            g[0] = 1.0;
            g[m * n - 1] = -1.0;
            g
        };
        let (mut ga, mut gb) = (vec![0.0; m * k], vec![0.0; n * k]);
        let before = flops_executed();
        score_grads(m, n, k, &a, k, &b, k, &g, n, &mut ga, k, &mut gb, k);
        assert!(flops_executed() - before >= 2 * 4 * k as u64);
    }

    #[test]
    fn blocked_nt_matches_reference_odd_shapes() {
        for &(m, n, k) in &[
            (1, 1, 1),
            (3, 5, 7),
            (17, 9, 33),
            (50, 100, 64),
            (65, 13, 12),
        ] {
            let a = random(m, k, 1);
            let b = random(n, k, 2);
            let mut got = vec![0.0; m * n];
            let mut want = vec![0.0; m * n];
            matmul_nt(m, n, k, &a, k, &b, k, &mut got, n);
            reference::matmul_nt(m, n, k, &a, k, &b, k, &mut want, n);
            close(&got, &want, 1e-5);
        }
    }

    #[test]
    fn blocked_nn_matches_reference() {
        for &(m, n, k) in &[(2, 3, 4), (13, 17, 19), (50, 100, 100)] {
            let a = random(m, k, 3);
            let b = random(k, n, 4);
            let mut got = vec![0.0; m * n];
            let mut want = vec![0.0; m * n];
            matmul(m, n, k, &a, k, &b, n, &mut got, n);
            reference::matmul(m, n, k, &a, k, &b, n, &mut want, n);
            close(&got, &want, 1e-5);
        }
    }

    #[test]
    fn strided_views_work() {
        // 3x4 views embedded in wider buffers
        let (m, n, k) = (3, 4, 5);
        let (lda, ldb, ldo) = (9, 7, 6);
        let a = random(m, lda, 5);
        let b = random(n, ldb, 6);
        let mut got = vec![f32::NAN; m * ldo];
        let mut want = vec![f32::NAN; m * ldo];
        matmul_nt(m, n, k, &a, lda, &b, ldb, &mut got, ldo);
        reference::matmul_nt(m, n, k, &a, lda, &b, ldb, &mut want, ldo);
        for i in 0..m {
            close(
                &got[i * ldo..i * ldo + n],
                &want[i * ldo..i * ldo + n],
                1e-5,
            );
            // padding untouched
            assert!(got[i * ldo + n..i * ldo + ldo].iter().all(|v| v.is_nan()));
        }
    }

    #[test]
    fn threaded_split_is_bit_identical() {
        let (m, n, k) = (200, 37, 29);
        let a = random(m, k, 7);
        let b = random(n, k, 8);
        let packed = PackedNt::pack(n, k, &b, k);
        let mut serial = vec![0.0; m * n];
        matmul_nt_packed(m, k, &a, k, &packed, &mut serial, n);
        for threads in [2, 3, 5] {
            let mut par = vec![0.0; m * n];
            matmul_nt_packed_threaded(m, k, &a, k, &packed, &mut par, n, threads);
            assert!(
                serial
                    .iter()
                    .zip(&par)
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "threads={threads} not bit-identical"
            );
        }
    }

    #[test]
    fn fused_grads_match_reference() {
        let (m, n, k) = (11, 23, 15);
        let a = random(m, k, 9);
        let b = random(n, k, 10);
        let g = random(m, n, 11);
        let (mut ga, mut gb) = (vec![0.0; m * k], vec![0.0; n * k]);
        let (mut rga, mut rgb) = (vec![0.0; m * k], vec![0.0; n * k]);
        score_grads(m, n, k, &a, k, &b, k, &g, n, &mut ga, k, &mut gb, k);
        reference::score_grads(m, n, k, &a, k, &b, k, &g, n, &mut rga, k, &mut rgb, k);
        close(&ga, &rga, 1e-4);
        close(&gb, &rgb, 1e-4);
    }

    #[test]
    fn score_grad_object_roundtrip() {
        let mut cand = Matrix::zeros(13, 6);
        let vals = random(13, 6, 12);
        cand.as_mut_slice().copy_from_slice(&vals);
        let mut pos = Matrix::zeros(5, 6);
        pos.as_mut_slice().copy_from_slice(&random(5, 6, 13));
        let fused = ScoreGrad::new(&cand);
        let s = fused.scores(&pos);
        let want = pos.matmul_nt(&cand);
        close(s.as_slice(), want.as_slice(), 1e-5);
    }

    #[test]
    fn empty_shapes_are_fine() {
        let mut out = vec![0.0; 0];
        matmul_nt(0, 0, 0, &[], 1, &[], 1, &mut out, 1);
        matmul(0, 5, 3, &[], 3, &[0.0; 15], 5, &mut out, 5);
        let mut o2 = vec![1.0f32; 4];
        // k == 0: product of (2x0)·(2x0)ᵀ is a zero 2x2
        matmul_nt(2, 2, 0, &[], 1, &[], 1, &mut o2, 2);
        assert_eq!(o2, [0.0; 4]);
    }

    #[test]
    fn transpose_blocked_matches_reference() {
        let (m, n) = (13, 21);
        let a = random(m, n, 14);
        let mut got = vec![0.0; n * m];
        let mut want = vec![0.0; n * m];
        transpose(m, n, &a, n, &mut got, m);
        reference::transpose(m, n, &a, n, &mut want, m);
        assert_eq!(got, want);
    }

    #[test]
    #[should_panic(expected = "slice length")]
    fn short_slice_panics() {
        let mut out = vec![0.0; 4];
        matmul_nt(2, 2, 3, &[0.0; 5], 3, &[0.0; 6], 3, &mut out, 2);
    }

    #[test]
    fn auto_threads_stays_serial_for_training_chunks() {
        // paper-default chunk geometry: C=50, N=100, d=100
        assert_eq!(auto_threads(50, 100, 100), 1);
        // a large eval-sized product may fan out (>= 1 either way)
        assert!(auto_threads(4096, 4096, 400) >= 1);
    }

    #[test]
    fn dispatch_parse_accepts_valid_and_lists_set_on_error() {
        assert_eq!(Variant::parse("scalar").unwrap(), Variant::Scalar);
        assert_eq!(Variant::parse(" SSE2 ").unwrap(), Variant::Sse2);
        assert_eq!(Variant::parse("Avx2").unwrap(), Variant::Avx2);
        let err = Variant::parse("avx512").unwrap_err();
        assert!(err.contains("avx512"), "echoes the bad value: {err}");
        assert!(
            err.contains("scalar, sse2, avx2"),
            "lists the valid set: {err}"
        );
    }

    #[test]
    fn dispatch_resolve_falls_down_the_ladder_with_warning() {
        // Forced-unsupported shim: a host with no SIMD at all.
        let none = |v: Variant| v == Variant::Scalar;
        let (v, warn) = dispatch::resolve(Variant::Avx2, none);
        assert_eq!(v, Variant::Scalar);
        let warn = warn.expect("fallback must warn");
        assert!(warn.contains("avx2") && warn.contains("scalar"), "{warn}");

        // A host with SSE2 but no AVX2: avx2 degrades one rung, not two.
        let sse_only = |v: Variant| v != Variant::Avx2;
        let (v, warn) = dispatch::resolve(Variant::Avx2, sse_only);
        assert_eq!(v, Variant::Sse2);
        assert!(warn.unwrap().contains("sse2"));

        // Supported requests resolve to themselves, silently.
        let (v, warn) = dispatch::resolve(Variant::Scalar, none);
        assert_eq!(v, Variant::Scalar);
        assert!(warn.is_none());
    }

    #[test]
    fn dispatch_best_supported_is_supported_and_scalar_always_is() {
        assert!(dispatch::best_supported().supported());
        assert!(Variant::Scalar.supported());
        assert!(Variant::all().len() >= Variant::supported_variants().len());
    }

    #[test]
    fn every_supported_variant_matches_reference() {
        let (m, n, k) = (13, 21, 17);
        let a = random(m, k, 21);
        let b = random(n, k, 22);
        let mut want_nt = vec![0.0; m * n];
        reference::matmul_nt(m, n, k, &a, k, &b, k, &mut want_nt, n);
        let bt = {
            let mut t = vec![0.0; k * n];
            reference::transpose(n, k, &b, k, &mut t, n);
            t
        };
        let mut want_nn = vec![0.0; m * n];
        reference::matmul(m, n, k, &a, k, &bt, n, &mut want_nn, n);
        for v in Variant::supported_variants() {
            let mut got = vec![0.0; m * n];
            matmul_nt_with(v, m, n, k, &a, k, &b, k, &mut got, n);
            close(&got, &want_nt, 1e-4);
            let mut got_nn = vec![0.0; m * n];
            matmul_with(v, m, n, k, &a, k, &bt, n, &mut got_nn, n);
            close(&got_nn, &want_nn, 1e-4);
        }
    }

    #[test]
    fn scalar_and_sse2_are_bit_identical() {
        if !Variant::Sse2.supported() {
            return;
        }
        let (m, n, k) = (50, 100, 16);
        let a = random(m, k, 31);
        let b = random(n, k, 32);
        let g = random(m, n, 33);
        let mut s_nt = vec![0.0; m * n];
        let mut v_nt = vec![0.0; m * n];
        matmul_nt_with(Variant::Scalar, m, n, k, &a, k, &b, k, &mut s_nt, n);
        matmul_nt_with(Variant::Sse2, m, n, k, &a, k, &b, k, &mut v_nt, n);
        assert_eq!(s_nt, v_nt, "sse2 matmul_nt must be bit-identical");
        let (mut sga, mut sgb) = (vec![0.0; m * k], vec![0.0; n * k]);
        let (mut vga, mut vgb) = (vec![0.0; m * k], vec![0.0; n * k]);
        score_grads_with(
            Variant::Scalar,
            m,
            n,
            k,
            &a,
            k,
            &b,
            k,
            &g,
            n,
            &mut sga,
            k,
            &mut sgb,
            k,
        );
        score_grads_with(
            Variant::Sse2,
            m,
            n,
            k,
            &a,
            k,
            &b,
            k,
            &g,
            n,
            &mut vga,
            k,
            &mut vgb,
            k,
        );
        assert_eq!(sga, vga, "sse2 score_grads ga must be bit-identical");
        assert_eq!(sgb, vgb, "sse2 score_grads gb must be bit-identical");
    }

    #[test]
    fn unsupported_per_call_variant_degrades_to_scalar_result() {
        // `for_call` is the UB guard: on x86_64 everything here is
        // supported so this exercises the identity path, while on other
        // arches it proves the degrade path returns scalar bits.
        let (m, n, k) = (6, 9, 7);
        let a = random(m, k, 41);
        let b = random(n, k, 42);
        let mut want = vec![0.0; m * n];
        matmul_nt_with(Variant::Scalar, m, n, k, &a, k, &b, k, &mut want, n);
        for v in Variant::all() {
            if v == Variant::Avx2 && v.supported() {
                continue; // FMA path legitimately differs in low bits
            }
            let mut got = vec![0.0; m * n];
            matmul_nt_with(v, m, n, k, &a, k, &b, k, &mut got, n);
            assert_eq!(got, want, "variant {} broke bit-compat", v.name());
        }
    }
}
