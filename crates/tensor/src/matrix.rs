//! Row-major dense f32 matrices and the batched products used by PBG.
//!
//! PBG's batched negative sampling (§4.3) computes all chunk-vs-chunk edge
//! scores as one `B × B_n` matrix product; the linear (RESCAL) relation
//! operator is also a matmul. The products delegate to the cache-blocked,
//! panel-packed kernels in [`crate::kernels`]; the naive loops live on as
//! [`crate::kernels::reference`], the differential-test oracle.

use crate::kernels;
use crate::vecmath;

/// A dense row-major matrix of `f32`.
///
/// Rows are the natural unit (an embedding per row), so the API is
/// row-oriented: [`Matrix::row`], [`Matrix::row_mut`], [`Matrix::matmul`],
/// [`Matrix::matmul_nt`].
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Reshapes this matrix in place to `rows × cols`, zero-filled,
    /// reusing the existing allocation when capacity allows. This is the
    /// scratch-buffer primitive for per-thread reuse in HOGWILD workers:
    /// after the first few chunks no allocator traffic remains.
    pub fn resize(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Creates a matrix from owned data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "from_vec: data length mismatch");
        Matrix { rows, cols, data }
    }

    /// Creates a matrix by copying a slice of row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have unequal lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        if rows.is_empty() {
            return Matrix::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "from_rows: ragged rows");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable borrow of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The underlying row-major storage.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning its storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Fills the matrix with values drawn from `f(row, col)`.
    pub fn fill_with(&mut self, mut f: impl FnMut(usize, usize) -> f32) {
        for r in 0..self.rows {
            for c in 0..self.cols {
                self.data[r * self.cols + c] = f(r, c);
            }
        }
    }

    /// Standard product `self * other` (`m×k · k×n = m×n`).
    ///
    /// Delegates to the k-unrolled blocked kernel
    /// ([`crate::kernels::matmul`]).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul: inner dimensions mismatch ({}x{} * {}x{})",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        kernels::matmul(
            self.rows,
            other.cols,
            self.cols,
            &self.data,
            self.cols.max(1),
            &other.data,
            other.cols.max(1),
            &mut out.data,
            other.cols.max(1),
        );
        out
    }

    /// Product with the transpose of `other`: `self * otherᵀ`
    /// (`m×k · (n×k)ᵀ = m×n`).
    ///
    /// This is the score-matrix kernel of batched negative sampling: rows of
    /// `self` are transformed positives, rows of `other` are candidate
    /// negatives, and entry `(i, j)` is their dot product. Delegates to the
    /// blocked panel-packed kernel ([`crate::kernels::matmul_nt_auto`]),
    /// which engages the scoped-thread row split for large shapes.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.cols`.
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_nt: column dimensions mismatch ({}x{} * {}x{}^T)",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.rows);
        kernels::matmul_nt_auto(
            self.rows,
            other.rows,
            self.cols,
            &self.data,
            self.cols.max(1),
            &other.data,
            other.cols.max(1),
            &mut out.data,
            other.rows.max(1),
        );
        out
    }

    /// Accumulates `alpha * other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add_scaled(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!(self.rows, other.rows, "add_scaled: row mismatch");
        assert_eq!(self.cols, other.cols, "add_scaled: col mismatch");
        vecmath::axpy(alpha, &other.data, &mut self.data);
    }

    /// Returns the transpose as a new matrix (tile-blocked copy).
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        kernels::transpose(
            self.rows,
            self.cols,
            &self.data,
            self.cols.max(1),
            &mut out.data,
            self.rows.max(1),
        );
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        vecmath::norm(&self.data)
    }
}

impl Default for Matrix {
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_rectangular() {
        // (2x3) * (3x2)
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 2);
        assert_eq!(c.row(0), &[58.0, 64.0]);
        assert_eq!(c.row(1), &[139.0, 154.0]);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0]]);
        let via_nt = a.matmul_nt(&b);
        let via_t = a.matmul(&b.transpose());
        assert_eq!(via_nt, via_t);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn add_scaled_accumulates() {
        let mut a = Matrix::zeros(1, 2);
        let b = Matrix::from_rows(&[&[1.0, 2.0]]);
        a.add_scaled(0.5, &b);
        assert_eq!(a.row(0), &[0.5, 1.0]);
    }

    #[test]
    #[should_panic(expected = "inner dimensions mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn fill_with_sets_entries() {
        let mut a = Matrix::zeros(2, 2);
        a.fill_with(|r, c| (r * 10 + c) as f32);
        assert_eq!(a.row(1), &[10.0, 11.0]);
    }

    #[test]
    fn empty_matrix_ok() {
        let a = Matrix::from_rows(&[]);
        assert_eq!(a.rows(), 0);
        assert_eq!(a.cols(), 0);
    }

    #[test]
    fn resize_zeroes_and_reuses_capacity() {
        let mut a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        a.resize(1, 2);
        assert_eq!((a.rows(), a.cols()), (1, 2));
        assert_eq!(a.row(0), &[0.0, 0.0]);
        // Growing within the original 4-element capacity must not copy
        // stale data back in.
        a.row_mut(0).copy_from_slice(&[5.0, 6.0]);
        a.resize(2, 2);
        assert_eq!(a.as_slice(), &[0.0, 0.0, 0.0, 0.0]);
    }
}
