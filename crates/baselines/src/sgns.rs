//! Skip-gram with negative sampling (word2vec; Mikolov et al., 2013).
//!
//! DeepWalk's trainer: for each token in each walk, predict its window
//! context with a logistic loss against `k` negatives drawn from the
//! unigram distribution raised to the 3/4 power. Input ("syn0") vectors
//! are the embeddings; output ("syn1neg") vectors are discarded. Training
//! is HOGWILD over walks, like the original C implementation.

use crate::walks::WalkCorpus;
use pbg_tensor::alias::AliasTable;
use pbg_tensor::hogwild::HogwildArray;
use pbg_tensor::matrix::Matrix;
use pbg_tensor::rng::Xoshiro256;

/// SGNS hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct SgnsConfig {
    /// Embedding dimension.
    pub dim: usize,
    /// Context window radius.
    pub window: usize,
    /// Negative samples per (center, context) pair.
    pub negatives: usize,
    /// Initial learning rate (linearly decayed to 1e-4 of itself).
    pub learning_rate: f32,
    /// Passes over the corpus.
    pub epochs: usize,
    /// HOGWILD threads.
    pub threads: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SgnsConfig {
    fn default() -> Self {
        SgnsConfig {
            dim: 64,
            window: 5,
            negatives: 5,
            learning_rate: 0.025,
            epochs: 1,
            threads: 4,
            seed: 0,
        }
    }
}

/// Trainable SGNS model over `num_nodes` tokens.
#[derive(Debug)]
pub struct Sgns {
    input: HogwildArray,
    output: HogwildArray,
    table: AliasTable,
    config: SgnsConfig,
}

impl Sgns {
    /// Initializes from token frequencies (builds the `f^0.75` negative
    /// table).
    ///
    /// # Panics
    ///
    /// Panics if `frequencies` is empty or config fields are zero.
    pub fn new(frequencies: &[f32], config: SgnsConfig) -> Self {
        assert!(!frequencies.is_empty(), "no tokens");
        assert!(
            config.dim > 0 && config.epochs > 0 && config.threads > 0,
            "invalid sgns config"
        );
        let n = frequencies.len();
        let mut rng = Xoshiro256::seed_from_u64(config.seed);
        let init: Vec<f32> = (0..n * config.dim)
            .map(|_| (rng.gen_f32() - 0.5) / config.dim as f32)
            .collect();
        let smoothed: Vec<f32> = frequencies.iter().map(|f| f.powf(0.75)).collect();
        Sgns {
            input: HogwildArray::from_vec(n, config.dim, init),
            output: HogwildArray::zeros(n, config.dim),
            table: AliasTable::new(&smoothed),
            config,
        }
    }

    /// Model bytes (both layers + negative table).
    pub fn bytes(&self) -> usize {
        self.input.bytes() + self.output.bytes() + self.table.bytes()
    }

    /// Trains on the corpus; `on_epoch` runs after each pass (return
    /// `false` to stop early).
    pub fn train_with(&self, corpus: &WalkCorpus, mut on_epoch: impl FnMut(usize, &Sgns) -> bool) {
        let total_epochs = self.config.epochs;
        for epoch in 1..=total_epochs {
            self.train_epoch(corpus, epoch);
            if !on_epoch(epoch, self) {
                break;
            }
        }
    }

    /// Trains all configured epochs.
    pub fn train(&self, corpus: &WalkCorpus) {
        self.train_with(corpus, |_, _| true);
    }

    fn train_epoch(&self, corpus: &WalkCorpus, epoch: usize) {
        let walks = corpus.walks();
        let threads = self.config.threads.min(walks.len().max(1));
        let chunk = walks.len().div_ceil(threads);
        crossbeam::thread::scope(|scope| {
            for (tid, slice) in walks.chunks(chunk.max(1)).enumerate() {
                scope.spawn(move |_| {
                    let mut rng = Xoshiro256::seed_from_u64(
                        self.config
                            .seed
                            .wrapping_add((epoch as u64) << 32)
                            .wrapping_add(tid as u64),
                    );
                    self.train_slice(slice, epoch, &mut rng);
                });
            }
        })
        .expect("sgns scope panicked");
    }

    fn train_slice(&self, walks: &[Vec<u32>], epoch: usize, rng: &mut Xoshiro256) {
        let dim = self.config.dim;
        let mut center_buf = vec![0.0f32; dim];
        let mut ctx_buf = vec![0.0f32; dim];
        let mut center_grad = vec![0.0f32; dim];
        // linear decay across epochs
        let progress = (epoch - 1) as f32 / self.config.epochs as f32;
        let lr =
            (self.config.learning_rate * (1.0 - progress)).max(self.config.learning_rate * 1e-4);
        for walk in walks {
            for (i, &center) in walk.iter().enumerate() {
                let window = 1 + rng.gen_index(self.config.window);
                let lo = i.saturating_sub(window);
                let hi = (i + window + 1).min(walk.len());
                self.input.read_row_into(center as usize, &mut center_buf);
                center_grad.iter_mut().for_each(|g| *g = 0.0);
                for &context in &walk[lo..hi] {
                    if context == center {
                        continue;
                    }
                    // positive pair + negatives on the output layer
                    self.pair_update(
                        &center_buf,
                        &mut center_grad,
                        context,
                        1.0,
                        lr,
                        &mut ctx_buf,
                    );
                    for _ in 0..self.config.negatives {
                        let neg = self.table.sample(rng) as u32;
                        if neg == context {
                            continue;
                        }
                        self.pair_update(&center_buf, &mut center_grad, neg, 0.0, lr, &mut ctx_buf);
                    }
                }
                self.input.add_to_row(center as usize, 1.0, &center_grad);
            }
        }
    }

    #[inline]
    fn pair_update(
        &self,
        center: &[f32],
        center_grad: &mut [f32],
        target: u32,
        label: f32,
        lr: f32,
        ctx_buf: &mut [f32],
    ) {
        self.output.read_row_into(target as usize, ctx_buf);
        let score = pbg_tensor::vecmath::dot(center, ctx_buf);
        let pred = 1.0 / (1.0 + (-score).exp());
        let g = lr * (label - pred);
        for k in 0..center.len() {
            center_grad[k] += g * ctx_buf[k];
            ctx_buf[k] = g * center[k];
        }
        self.output.add_to_row(target as usize, 1.0, ctx_buf);
    }

    /// The learned embeddings (input layer) as a dense matrix.
    pub fn embeddings(&self) -> Matrix {
        Matrix::from_vec(self.input.rows(), self.input.cols(), self.input.to_vec())
    }

    /// The output ("context") layer. SGNS models co-occurrence
    /// probability as `σ(input_u · output_v)`, so input+output
    /// concatenations often rank direct edges better than the input layer
    /// alone.
    pub fn output_embeddings(&self) -> Matrix {
        Matrix::from_vec(self.output.rows(), self.output.cols(), self.output.to_vec())
    }

    /// Concatenation of input and output layers (`n × 2 dim`).
    pub fn concat_embeddings(&self) -> Matrix {
        let n = self.input.rows();
        let d = self.input.cols();
        let mut out = Matrix::zeros(n, 2 * d);
        let input = self.input.to_vec();
        let output = self.output.to_vec();
        for i in 0..n {
            out.row_mut(i)[..d].copy_from_slice(&input[i * d..(i + 1) * d]);
            out.row_mut(i)[d..].copy_from_slice(&output[i * d..(i + 1) * d]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjacency::Adjacency;
    use crate::walks::{WalkConfig, WalkCorpus};
    use pbg_graph::edges::{Edge, EdgeList};

    /// Two cliques joined by one edge — embeddings should separate them.
    fn two_cliques() -> (Adjacency, usize) {
        let mut edges = EdgeList::new();
        for a in 0..8u32 {
            for b in (a + 1)..8 {
                edges.push(Edge::new(a, 0u32, b));
                edges.push(Edge::new(a + 8, 0u32, b + 8));
            }
        }
        edges.push(Edge::new(0u32, 0u32, 8u32));
        (Adjacency::from_edges(&edges, 16), 16)
    }

    #[test]
    fn embeddings_separate_communities() {
        let (adj, n) = two_cliques();
        let corpus = WalkCorpus::generate(
            &adj,
            WalkConfig {
                walks_per_node: 20,
                walk_length: 20,
            },
            1,
        );
        let sgns = Sgns::new(
            &corpus.frequencies(n),
            SgnsConfig {
                dim: 16,
                epochs: 3,
                threads: 2,
                ..Default::default()
            },
        );
        sgns.train(&corpus);
        let emb = sgns.embeddings();
        // average intra-clique cosine must beat inter-clique
        let cos = |a: usize, b: usize| pbg_tensor::vecmath::cosine(emb.row(a), emb.row(b));
        let mut intra = 0.0;
        let mut inter = 0.0;
        let mut n_intra = 0;
        let mut n_inter = 0;
        for a in 0..8 {
            for b in 0..8 {
                if a < b {
                    intra += cos(a, b) + cos(a + 8, b + 8);
                    n_intra += 2;
                }
                inter += cos(a, b + 8);
                n_inter += 1;
            }
        }
        let intra = intra / n_intra as f32;
        let inter = inter / n_inter as f32;
        assert!(intra > inter + 0.1, "intra {intra} not above inter {inter}");
    }

    #[test]
    fn epoch_callback_can_stop_early() {
        let (adj, n) = two_cliques();
        let corpus = WalkCorpus::generate(&adj, WalkConfig::default(), 2);
        let sgns = Sgns::new(
            &corpus.frequencies(n),
            SgnsConfig {
                dim: 8,
                epochs: 10,
                threads: 1,
                ..Default::default()
            },
        );
        let mut seen = 0;
        sgns.train_with(&corpus, |epoch, _| {
            seen = epoch;
            epoch < 2
        });
        assert_eq!(seen, 2);
    }

    #[test]
    fn bytes_accounts_both_layers() {
        let sgns = Sgns::new(&[1.0; 10], SgnsConfig::default());
        assert!(sgns.bytes() >= 2 * 10 * 64 * 4);
    }
}
