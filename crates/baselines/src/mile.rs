//! MILE (Liang et al., 2018): multi-level embedding.
//!
//! "MILE repeatedly coarsens the graph into smaller ones and applies
//! traditional embedding methods on coarsened graph at each level as well
//! as a final refinement step" (§5.2 of the PBG paper). Phases here:
//!
//! 1. **Coarsen** `levels` times by heavy-edge matching ([`crate::coarsen`]).
//! 2. **Base-embed** the coarsest graph with DeepWalk.
//! 3. **Refine** back up: each fine node inherits its super-node's vector,
//!    then several rounds of degree-normalized neighbor propagation blend
//!    in local structure. (MILE trains a GCN for this step; propagation
//!    preserves the multi-level quality/memory tradeoff the comparison
//!    exercises without a GCN substrate — recorded in DESIGN.md.)
//!
//! The paper's Table 1 shows the tradeoff this reproduces: more levels →
//! less memory, lower quality.

use crate::adjacency::Adjacency;
use crate::coarsen::{coarsen, CoarseLevel};
use crate::deepwalk::{DeepWalk, DeepWalkConfig};
use crate::BaselineEmbeddings;
use pbg_graph::edges::{Edge, EdgeList};
use pbg_tensor::matrix::Matrix;
use std::time::Instant;

/// MILE configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct MileConfig {
    /// Coarsening levels (the paper evaluates 1–8).
    pub levels: usize,
    /// Base embedder settings, applied to the coarsest graph.
    pub base: DeepWalkConfig,
    /// Refinement propagation rounds per level.
    pub refine_rounds: usize,
    /// Blend factor: fraction of the propagated neighbor mean mixed into
    /// each node per round.
    pub blend: f32,
}

impl Default for MileConfig {
    fn default() -> Self {
        MileConfig {
            levels: 3,
            base: DeepWalkConfig::default(),
            refine_rounds: 2,
            blend: 0.5,
        }
    }
}

/// MILE runner.
#[derive(Debug)]
pub struct Mile {
    config: MileConfig,
}

impl Mile {
    /// Creates a runner.
    pub fn new(config: MileConfig) -> Self {
        Mile { config }
    }

    /// Embeds the graph.
    ///
    /// # Panics
    ///
    /// Panics if `levels == 0`.
    pub fn embed(&self, edges: &EdgeList, num_nodes: usize) -> BaselineEmbeddings {
        assert!(self.config.levels > 0, "MILE needs at least one level");
        let start = Instant::now();
        let fine = Adjacency::from_edges(edges, num_nodes);
        let levels: Vec<CoarseLevel> =
            coarsen(&fine, self.config.levels, self.config.base.sgns.seed);
        // hierarchy memory: every level's graph + mapping stays resident
        // during refinement
        let hierarchy_bytes: usize = levels
            .iter()
            .map(|l| l.graph.bytes() + l.mapping.len() * 4)
            .sum::<usize>()
            + fine.bytes();
        // base embedding on the coarsest graph
        let coarsest = levels.last().map(|l| &l.graph).unwrap_or(&fine);
        let coarse_edges = adjacency_to_edges(coarsest);
        let base =
            DeepWalk::new(self.config.base.clone()).embed(&coarse_edges, coarsest.num_nodes());
        let mut emb = base.embeddings;
        // refine back up, coarsest to finest
        let graphs_fine_side: Vec<&Adjacency> = std::iter::once(&fine)
            .chain(levels.iter().map(|l| &l.graph))
            .collect();
        for (idx, level) in levels.iter().enumerate().rev() {
            // project: fine node takes its super-node's vector
            let fine_graph = graphs_fine_side[idx];
            let mut projected = Matrix::zeros(fine_graph.num_nodes(), emb.cols());
            for v in 0..fine_graph.num_nodes() {
                let c = level.mapping[v] as usize;
                projected.row_mut(v).copy_from_slice(emb.row(c));
            }
            // propagate
            for _ in 0..self.config.refine_rounds {
                projected = propagate(fine_graph, &projected, self.config.blend);
            }
            emb = projected;
        }
        BaselineEmbeddings {
            embeddings: emb,
            peak_bytes: hierarchy_bytes + base.peak_bytes,
            seconds: start.elapsed().as_secs_f64(),
        }
    }
}

/// One round of degree-normalized neighbor propagation:
/// `e'_v = (1-blend)·e_v + blend·mean_{u∈N(v)} e_u`, then L2 normalize.
fn propagate(graph: &Adjacency, emb: &Matrix, blend: f32) -> Matrix {
    let mut out = Matrix::zeros(emb.rows(), emb.cols());
    for v in 0..graph.num_nodes() {
        let row = out.row_mut(v);
        let neighbors = graph.neighbors(v as u32);
        let weights = graph.weights(v as u32);
        if neighbors.is_empty() {
            row.copy_from_slice(emb.row(v));
            continue;
        }
        let total_w: f32 = weights.iter().sum();
        for (&u, &w) in neighbors.iter().zip(weights) {
            pbg_tensor::vecmath::axpy(w / total_w * blend, emb.row(u as usize), row);
        }
        pbg_tensor::vecmath::axpy(1.0 - blend, emb.row(v), row);
        pbg_tensor::vecmath::normalize(row);
    }
    out
}

fn adjacency_to_edges(adj: &Adjacency) -> EdgeList {
    let mut edges = EdgeList::new();
    for v in 0..adj.num_nodes() as u32 {
        for (&u, &w) in adj.neighbors(v).iter().zip(adj.weights(v)) {
            if u >= v {
                edges.push_weighted(Edge::new(v, 0u32, u), w);
            }
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sgns::SgnsConfig;
    use crate::walks::WalkConfig;

    fn communities(n_per: u32, k: u32, seed: u64) -> (EdgeList, usize) {
        // k cliques of size n_per, sparsely interconnected
        let mut rng = pbg_tensor::rng::Xoshiro256::seed_from_u64(seed);
        let mut edges = EdgeList::new();
        for c in 0..k {
            let base = c * n_per;
            for a in 0..n_per {
                for b in (a + 1)..n_per {
                    edges.push(Edge::new(base + a, 0u32, base + b));
                }
            }
        }
        for _ in 0..k {
            let a = rng.gen_index((n_per * k) as usize) as u32;
            let b = rng.gen_index((n_per * k) as usize) as u32;
            if a != b {
                edges.push(Edge::new(a, 0u32, b));
            }
        }
        (edges, (n_per * k) as usize)
    }

    fn small_config(levels: usize) -> MileConfig {
        MileConfig {
            levels,
            base: DeepWalkConfig {
                walks: WalkConfig {
                    walks_per_node: 10,
                    walk_length: 15,
                },
                sgns: SgnsConfig {
                    dim: 16,
                    epochs: 3,
                    threads: 2,
                    ..Default::default()
                },
            },
            ..Default::default()
        }
    }

    #[test]
    fn embeds_all_fine_nodes() {
        let (edges, n) = communities(8, 4, 1);
        let result = Mile::new(small_config(2)).embed(&edges, n);
        assert_eq!(result.embeddings.rows(), n);
        assert_eq!(result.embeddings.cols(), 16);
    }

    #[test]
    fn communities_separate_after_refinement() {
        let (edges, n) = communities(8, 4, 2);
        let emb = Mile::new(small_config(2)).embed(&edges, n).embeddings;
        let cos = |a: usize, b: usize| pbg_tensor::vecmath::cosine(emb.row(a), emb.row(b));
        let mut intra = 0.0f32;
        let mut inter = 0.0f32;
        let mut ni = 0;
        let mut nx = 0;
        for a in 0..8usize {
            for b in 0..8usize {
                if a < b {
                    intra += cos(a, b);
                    ni += 1;
                }
                inter += cos(a, b + 8);
                nx += 1;
            }
        }
        assert!(
            intra / ni as f32 > inter / nx as f32,
            "intra {} vs inter {}",
            intra / ni as f32,
            inter / nx as f32
        );
    }

    #[test]
    fn more_levels_train_base_on_smaller_graph() {
        // levels shrink the base problem: MILE(3)'s base graph must be
        // smaller than MILE(1)'s — this is the paper's memory lever
        let (edges, n) = communities(8, 8, 3);
        let fine = Adjacency::from_edges(&edges, n);
        let l1 = coarsen(&fine, 1, 0);
        let l3 = coarsen(&fine, 3, 0);
        assert!(l3.last().unwrap().graph.num_nodes() < l1.last().unwrap().graph.num_nodes());
    }

    #[test]
    fn singleton_graph_is_handled() {
        let edges: EdgeList = [Edge::new(0u32, 0u32, 1u32)].into_iter().collect();
        let result = Mile::new(small_config(1)).embed(&edges, 2);
        assert_eq!(result.embeddings.rows(), 2);
    }
}
