//! DeepWalk (Perozzi et al., 2014): random walks + skip-gram.
//!
//! The Table 1 / Figure 5 baseline. Note the memory profile the paper's
//! comparison highlights: DeepWalk materializes a walk corpus (tens of
//! GB on LiveJournal) *and* two embedding layers, where PBG holds only
//! the model — our accounting mirrors that.

use crate::adjacency::Adjacency;
use crate::sgns::{Sgns, SgnsConfig};
use crate::walks::{WalkConfig, WalkCorpus};
use crate::BaselineEmbeddings;
use pbg_graph::edges::EdgeList;
use pbg_tensor::matrix::Matrix;
use std::time::Instant;

/// DeepWalk configuration.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DeepWalkConfig {
    /// Walk generation.
    pub walks: WalkConfig,
    /// Skip-gram training.
    pub sgns: SgnsConfig,
}

/// DeepWalk runner.
#[derive(Debug)]
pub struct DeepWalk {
    config: DeepWalkConfig,
}

impl DeepWalk {
    /// Creates a runner.
    pub fn new(config: DeepWalkConfig) -> Self {
        DeepWalk { config }
    }

    /// Embeds the graph; `on_epoch` observes intermediate embeddings after
    /// each SGNS epoch (for learning curves) and may stop early.
    pub fn embed_with(
        &self,
        edges: &EdgeList,
        num_nodes: usize,
        mut on_epoch: impl FnMut(usize, &Matrix) -> bool,
    ) -> BaselineEmbeddings {
        let start = Instant::now();
        let adj = Adjacency::from_edges(edges, num_nodes);
        let corpus = WalkCorpus::generate(&adj, self.config.walks, self.config.sgns.seed);
        let sgns = Sgns::new(&corpus.frequencies(num_nodes), self.config.sgns.clone());
        let peak = adj.bytes() + corpus.bytes() + sgns.bytes();
        sgns.train_with(&corpus, |epoch, model| on_epoch(epoch, &model.embeddings()));
        BaselineEmbeddings {
            embeddings: sgns.embeddings(),
            peak_bytes: peak,
            seconds: start.elapsed().as_secs_f64(),
        }
    }

    /// Embeds the graph without epoch callbacks.
    pub fn embed(&self, edges: &EdgeList, num_nodes: usize) -> BaselineEmbeddings {
        self.embed_with(edges, num_nodes, |_, _| true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbg_graph::edges::Edge;

    fn ring_with_chords(n: u32) -> EdgeList {
        let mut edges = EdgeList::new();
        for _ in 0..4 {
            for i in 0..n {
                edges.push(Edge::new(i, 0u32, (i + 1) % n));
                edges.push(Edge::new(i, 0u32, (i + 2) % n));
            }
        }
        edges
    }

    #[test]
    fn embeds_all_nodes() {
        let edges = ring_with_chords(30);
        let dw = DeepWalk::new(DeepWalkConfig {
            walks: WalkConfig {
                walks_per_node: 5,
                walk_length: 10,
            },
            sgns: SgnsConfig {
                dim: 16,
                epochs: 2,
                threads: 2,
                ..Default::default()
            },
        });
        let result = dw.embed(&edges, 30);
        assert_eq!(result.embeddings.rows(), 30);
        assert_eq!(result.embeddings.cols(), 16);
        assert!(result.peak_bytes > 0);
        assert!(result.seconds >= 0.0);
    }

    #[test]
    fn neighbors_closer_than_distant_nodes() {
        let edges = ring_with_chords(40);
        let dw = DeepWalk::new(DeepWalkConfig {
            walks: WalkConfig {
                walks_per_node: 20,
                walk_length: 20,
            },
            sgns: SgnsConfig {
                dim: 16,
                epochs: 4,
                threads: 2,
                ..Default::default()
            },
        });
        let emb = dw.embed(&edges, 40).embeddings;
        let mut near = 0.0;
        let mut far = 0.0;
        for i in 0..40usize {
            near += pbg_tensor::vecmath::cosine(emb.row(i), emb.row((i + 1) % 40));
            far += pbg_tensor::vecmath::cosine(emb.row(i), emb.row((i + 20) % 40));
        }
        assert!(
            near / 40.0 > far / 40.0 + 0.1,
            "near {} vs far {}",
            near / 40.0,
            far / 40.0
        );
    }

    #[test]
    fn epoch_callback_sees_each_epoch() {
        let edges = ring_with_chords(20);
        let dw = DeepWalk::new(DeepWalkConfig {
            walks: WalkConfig {
                walks_per_node: 2,
                walk_length: 8,
            },
            sgns: SgnsConfig {
                dim: 8,
                epochs: 3,
                threads: 1,
                ..Default::default()
            },
        });
        let mut epochs = Vec::new();
        dw.embed_with(&edges, 20, |e, emb| {
            assert_eq!(emb.rows(), 20);
            epochs.push(e);
            true
        });
        assert_eq!(epochs, vec![1, 2, 3]);
    }

    #[test]
    fn corpus_memory_dominates_for_many_walks() {
        // the Table 1 effect: DeepWalk's peak includes the walk corpus
        let edges = ring_with_chords(50);
        let small = DeepWalk::new(DeepWalkConfig {
            walks: WalkConfig {
                walks_per_node: 1,
                walk_length: 5,
            },
            sgns: SgnsConfig {
                dim: 8,
                epochs: 1,
                threads: 1,
                ..Default::default()
            },
        })
        .embed(&edges, 50);
        let big = DeepWalk::new(DeepWalkConfig {
            walks: WalkConfig {
                walks_per_node: 20,
                walk_length: 40,
            },
            sgns: SgnsConfig {
                dim: 8,
                epochs: 1,
                threads: 1,
                ..Default::default()
            },
        })
        .embed(&edges, 50);
        assert!(big.peak_bytes > 2 * small.peak_bytes);
    }
}
