//! Compressed sparse-row adjacency for walk generation and coarsening.
//!
//! DeepWalk and MILE treat the graph as undirected and weighted; edges
//! are symmetrized on construction and parallel edges accumulate weight.

use pbg_graph::edges::EdgeList;

/// Undirected weighted CSR adjacency.
#[derive(Debug, Clone, PartialEq)]
pub struct Adjacency {
    offsets: Vec<usize>,
    neighbors: Vec<u32>,
    weights: Vec<f32>,
}

impl Adjacency {
    /// Builds a symmetrized adjacency over `num_nodes` from `edges`
    /// (relation types are ignored; self-loops dropped).
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is `>= num_nodes`.
    pub fn from_edges(edges: &EdgeList, num_nodes: usize) -> Self {
        let mut degree = vec![0usize; num_nodes];
        for i in 0..edges.len() {
            let e = edges.get(i);
            assert!(
                e.src.index() < num_nodes && e.dst.index() < num_nodes,
                "edge endpoint out of range"
            );
            if e.src == e.dst {
                continue;
            }
            degree[e.src.index()] += 1;
            degree[e.dst.index()] += 1;
        }
        let mut offsets = vec![0usize; num_nodes + 1];
        for v in 0..num_nodes {
            offsets[v + 1] = offsets[v] + degree[v];
        }
        let total = offsets[num_nodes];
        let mut neighbors = vec![0u32; total];
        let mut weights = vec![0.0f32; total];
        let mut cursor = offsets.clone();
        for i in 0..edges.len() {
            let e = edges.get(i);
            if e.src == e.dst {
                continue;
            }
            let w = edges.weight(i);
            let s = e.src.index();
            let d = e.dst.index();
            neighbors[cursor[s]] = e.dst.0;
            weights[cursor[s]] = w;
            cursor[s] += 1;
            neighbors[cursor[d]] = e.src.0;
            weights[cursor[d]] = w;
            cursor[d] += 1;
        }
        Adjacency {
            offsets,
            neighbors,
            weights,
        }
    }

    /// Builds directly from weighted neighbor lists (used by coarsening).
    ///
    /// # Panics
    ///
    /// Panics if list lengths disagree.
    pub fn from_lists(lists: Vec<Vec<(u32, f32)>>) -> Self {
        let num_nodes = lists.len();
        let mut offsets = vec![0usize; num_nodes + 1];
        for (v, l) in lists.iter().enumerate() {
            offsets[v + 1] = offsets[v] + l.len();
        }
        let mut neighbors = Vec::with_capacity(offsets[num_nodes]);
        let mut weights = Vec::with_capacity(offsets[num_nodes]);
        for l in lists {
            for (n, w) in l {
                neighbors.push(n);
                weights.push(w);
            }
        }
        Adjacency {
            offsets,
            neighbors,
            weights,
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed neighbor entries (2× undirected edge count).
    pub fn num_entries(&self) -> usize {
        self.neighbors.len()
    }

    /// Neighbors of `v`.
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.neighbors[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Edge weights aligned with [`Adjacency::neighbors`].
    pub fn weights(&self, v: u32) -> &[f32] {
        &self.weights[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: u32) -> usize {
        self.neighbors(v).len()
    }

    /// Resident bytes.
    pub fn bytes(&self) -> usize {
        self.offsets.len() * 8 + self.neighbors.len() * 4 + self.weights.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbg_graph::edges::Edge;

    fn triangle() -> Adjacency {
        let edges: EdgeList = [
            Edge::new(0u32, 0u32, 1u32),
            Edge::new(1u32, 0u32, 2u32),
            Edge::new(2u32, 0u32, 0u32),
        ]
        .into_iter()
        .collect();
        Adjacency::from_edges(&edges, 3)
    }

    #[test]
    fn symmetrization() {
        let adj = triangle();
        for v in 0..3u32 {
            assert_eq!(adj.degree(v), 2, "triangle node {v}");
        }
        assert!(adj.neighbors(0).contains(&1));
        assert!(adj.neighbors(0).contains(&2));
    }

    #[test]
    fn self_loops_dropped() {
        let edges: EdgeList = [Edge::new(0u32, 0u32, 0u32), Edge::new(0u32, 0u32, 1u32)]
            .into_iter()
            .collect();
        let adj = Adjacency::from_edges(&edges, 2);
        assert_eq!(adj.degree(0), 1);
    }

    #[test]
    fn weights_follow_edges() {
        let mut edges = EdgeList::new();
        edges.push_weighted(Edge::new(0u32, 0u32, 1u32), 2.5);
        let adj = Adjacency::from_edges(&edges, 2);
        assert_eq!(adj.weights(0), &[2.5]);
        assert_eq!(adj.weights(1), &[2.5]);
    }

    #[test]
    fn isolated_nodes_have_zero_degree() {
        let edges: EdgeList = [Edge::new(0u32, 0u32, 1u32)].into_iter().collect();
        let adj = Adjacency::from_edges(&edges, 5);
        assert_eq!(adj.degree(4), 0);
        assert_eq!(adj.num_nodes(), 5);
    }

    #[test]
    fn from_lists_roundtrip() {
        let adj = Adjacency::from_lists(vec![
            vec![(1, 1.0)],
            vec![(0, 1.0), (2, 3.0)],
            vec![(1, 3.0)],
        ]);
        assert_eq!(adj.num_nodes(), 3);
        assert_eq!(adj.neighbors(1), &[0, 2]);
        assert_eq!(adj.weights(1), &[1.0, 3.0]);
    }

    #[test]
    fn bytes_accounting_positive() {
        assert!(triangle().bytes() > 0);
    }
}
