//! Baseline embedding systems for the PBG paper's comparisons.
//!
//! Table 1 and Figure 5 compare PBG against **DeepWalk** (Perozzi et al.,
//! 2014) and **MILE** (Liang et al., 2018). The paper ran the original
//! authors' code; we reimplement both from scratch so the comparison runs
//! on the same synthetic graphs with the same evaluation:
//!
//! - [`adjacency`]: CSR adjacency built from an edge list.
//! - [`walks`]: truncated random-walk corpus generation.
//! - [`sgns`]: skip-gram with negative sampling (word2vec's training
//!   objective, which DeepWalk applies to walks).
//! - [`deepwalk`]: walks + SGNS end to end, with memory accounting.
//! - [`coarsen`]: heavy-edge-matching graph coarsening.
//! - [`mile`]: multi-level embedding — coarsen, embed the coarsest graph
//!   with DeepWalk, then project back up with propagation refinement.
//!   (MILE's paper refines with a trained GCN; we substitute normalized
//!   neighbor propagation, which preserves the multi-level structure and
//!   quality/memory tradeoff the comparison exercises — see DESIGN.md.)

pub mod adjacency;
pub mod coarsen;
pub mod deepwalk;
pub mod mile;
pub mod sgns;
pub mod walks;

pub use adjacency::Adjacency;
pub use deepwalk::{DeepWalk, DeepWalkConfig};
pub use mile::{Mile, MileConfig};

/// Output of a baseline embedding run.
#[derive(Debug, Clone)]
pub struct BaselineEmbeddings {
    /// `num_nodes × dim` embedding matrix.
    pub embeddings: pbg_tensor::matrix::Matrix,
    /// Peak bytes held (model + corpus / hierarchy).
    pub peak_bytes: usize,
    /// Wall-clock training seconds.
    pub seconds: f64,
}
