//! Truncated random-walk corpus generation (DeepWalk §3).
//!
//! DeepWalk generates `γ` walks of length `t` from every node and treats
//! them as sentences for skip-gram training. Walks are uniform over
//! neighbors (DeepWalk's setting; weighted transition would give
//! node2vec-style variants).

use crate::adjacency::Adjacency;
use pbg_tensor::rng::Xoshiro256;

/// Walk-generation configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkConfig {
    /// Walks started per node (`γ`).
    pub walks_per_node: usize,
    /// Steps per walk (`t`).
    pub walk_length: usize,
}

impl Default for WalkConfig {
    fn default() -> Self {
        WalkConfig {
            walks_per_node: 10,
            walk_length: 40,
        }
    }
}

/// A corpus of random walks, stored flat.
#[derive(Debug, Clone)]
pub struct WalkCorpus {
    walks: Vec<Vec<u32>>,
}

impl WalkCorpus {
    /// Generates the corpus. Nodes with no neighbors yield length-1
    /// "walks" (just themselves), matching the original implementation.
    pub fn generate(adj: &Adjacency, config: WalkConfig, seed: u64) -> Self {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let n = adj.num_nodes() as u32;
        let mut walks = Vec::with_capacity(n as usize * config.walks_per_node);
        for _ in 0..config.walks_per_node {
            for start in 0..n {
                let mut walk = Vec::with_capacity(config.walk_length);
                let mut current = start;
                walk.push(current);
                for _ in 1..config.walk_length {
                    let neighbors = adj.neighbors(current);
                    if neighbors.is_empty() {
                        break;
                    }
                    current = neighbors[rng.gen_index(neighbors.len())];
                    walk.push(current);
                }
                walks.push(walk);
            }
        }
        WalkCorpus { walks }
    }

    /// The walks.
    pub fn walks(&self) -> &[Vec<u32>] {
        &self.walks
    }

    /// Total tokens across walks.
    pub fn total_tokens(&self) -> usize {
        self.walks.iter().map(|w| w.len()).sum()
    }

    /// Resident bytes of the corpus (the memory DeepWalk pays that PBG
    /// does not).
    pub fn bytes(&self) -> usize {
        self.walks.iter().map(|w| w.len() * 4 + 24).sum()
    }

    /// Token frequencies over `num_nodes` ids (for the SGNS unigram
    /// table).
    pub fn frequencies(&self, num_nodes: usize) -> Vec<f32> {
        let mut freq = vec![0.0f32; num_nodes];
        for walk in &self.walks {
            for &node in walk {
                freq[node as usize] += 1.0;
            }
        }
        freq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbg_graph::edges::{Edge, EdgeList};

    fn ring(n: u32) -> Adjacency {
        let edges: EdgeList = (0..n).map(|i| Edge::new(i, 0u32, (i + 1) % n)).collect();
        Adjacency::from_edges(&edges, n as usize)
    }

    #[test]
    fn corpus_has_expected_shape() {
        let adj = ring(20);
        let corpus = WalkCorpus::generate(
            &adj,
            WalkConfig {
                walks_per_node: 3,
                walk_length: 10,
            },
            1,
        );
        assert_eq!(corpus.walks().len(), 60);
        assert!(corpus.walks().iter().all(|w| w.len() == 10));
        assert_eq!(corpus.total_tokens(), 600);
    }

    #[test]
    fn walks_follow_edges() {
        let adj = ring(10);
        let corpus = WalkCorpus::generate(&adj, WalkConfig::default(), 2);
        for walk in corpus.walks() {
            for pair in walk.windows(2) {
                assert!(
                    adj.neighbors(pair[0]).contains(&pair[1]),
                    "walk step {} -> {} not an edge",
                    pair[0],
                    pair[1]
                );
            }
        }
    }

    #[test]
    fn isolated_node_walks_are_singletons() {
        let edges: EdgeList = [Edge::new(0u32, 0u32, 1u32)].into_iter().collect();
        let adj = Adjacency::from_edges(&edges, 3);
        let corpus = WalkCorpus::generate(
            &adj,
            WalkConfig {
                walks_per_node: 1,
                walk_length: 5,
            },
            3,
        );
        let walk_of_2 = corpus.walks().iter().find(|w| w[0] == 2).unwrap();
        assert_eq!(walk_of_2.len(), 1);
    }

    #[test]
    fn frequencies_count_tokens() {
        let adj = ring(5);
        let corpus = WalkCorpus::generate(
            &adj,
            WalkConfig {
                walks_per_node: 2,
                walk_length: 4,
            },
            4,
        );
        let freq = corpus.frequencies(5);
        let total: f32 = freq.iter().sum();
        assert_eq!(total as usize, corpus.total_tokens());
    }

    #[test]
    fn deterministic_per_seed() {
        let adj = ring(8);
        let a = WalkCorpus::generate(&adj, WalkConfig::default(), 7);
        let b = WalkCorpus::generate(&adj, WalkConfig::default(), 7);
        assert_eq!(a.walks(), b.walks());
    }
}
