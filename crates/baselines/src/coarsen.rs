//! Heavy-edge-matching graph coarsening (MILE's first phase).
//!
//! MILE "repeatedly coarsens the graph into smaller ones" by collapsing
//! matched node pairs; we use the classic heavy-edge matching of
//! multilevel partitioners: visit nodes in random order, match each
//! unmatched node with its heaviest unmatched neighbor, merge matched
//! pairs into super-nodes, and accumulate edge weights between
//! super-nodes.

use crate::adjacency::Adjacency;
use pbg_tensor::rng::Xoshiro256;
use std::collections::HashMap;

/// One coarsening step: the coarse graph and the fine→coarse projection.
#[derive(Debug, Clone)]
pub struct CoarseLevel {
    /// Coarsened adjacency.
    pub graph: Adjacency,
    /// `mapping[fine_node] = coarse_node`.
    pub mapping: Vec<u32>,
}

/// Coarsens `graph` one level.
pub fn coarsen_once(graph: &Adjacency, rng: &mut Xoshiro256) -> CoarseLevel {
    let n = graph.num_nodes();
    let mut order: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        let j = rng.gen_index(i + 1);
        order.swap(i, j);
    }
    const UNMATCHED: u32 = u32::MAX;
    let mut matched = vec![UNMATCHED; n];
    for &v in &order {
        if matched[v as usize] != UNMATCHED {
            continue;
        }
        // heaviest unmatched neighbor
        let mut best: Option<(u32, f32)> = None;
        for (&u, &w) in graph.neighbors(v).iter().zip(graph.weights(v)) {
            if u == v || matched[u as usize] != UNMATCHED {
                continue;
            }
            if best.is_none_or(|(_, bw)| w > bw) {
                best = Some((u, w));
            }
        }
        match best {
            Some((u, _)) => {
                matched[v as usize] = u;
                matched[u as usize] = v;
            }
            None => matched[v as usize] = v, // self-match (singleton)
        }
    }
    // assign coarse ids: pair gets one id
    let mut mapping = vec![UNMATCHED; n];
    let mut next = 0u32;
    for v in 0..n as u32 {
        if mapping[v as usize] != UNMATCHED {
            continue;
        }
        let mate = matched[v as usize];
        mapping[v as usize] = next;
        if mate != v {
            mapping[mate as usize] = next;
        }
        next += 1;
    }
    // accumulate coarse edges
    let coarse_n = next as usize;
    let mut lists: Vec<HashMap<u32, f32>> = vec![HashMap::new(); coarse_n];
    for v in 0..n as u32 {
        let cv = mapping[v as usize];
        for (&u, &w) in graph.neighbors(v).iter().zip(graph.weights(v)) {
            if u < v {
                continue; // count each undirected edge once
            }
            let cu = mapping[u as usize];
            if cu == cv {
                continue; // collapsed edge disappears
            }
            *lists[cv as usize].entry(cu).or_insert(0.0) += w;
            *lists[cu as usize].entry(cv).or_insert(0.0) += w;
        }
    }
    let lists: Vec<Vec<(u32, f32)>> = lists
        .into_iter()
        .map(|m| {
            let mut v: Vec<(u32, f32)> = m.into_iter().collect();
            v.sort_by_key(|(u, _)| *u);
            v
        })
        .collect();
    CoarseLevel {
        graph: Adjacency::from_lists(lists),
        mapping,
    }
}

/// Coarsens repeatedly: `levels` steps or until the graph stops shrinking
/// meaningfully. Returns levels fine-to-coarse.
pub fn coarsen(graph: &Adjacency, levels: usize, seed: u64) -> Vec<CoarseLevel> {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut out = Vec::new();
    let mut current = graph.clone();
    for _ in 0..levels {
        let level = coarsen_once(&current, &mut rng);
        let shrunk = level.graph.num_nodes();
        let stop = shrunk as f64 > 0.95 * current.num_nodes() as f64 || shrunk <= 2;
        current = level.graph.clone();
        out.push(level);
        if stop {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbg_graph::edges::{Edge, EdgeList};

    fn ring(n: u32) -> Adjacency {
        let edges: EdgeList = (0..n).map(|i| Edge::new(i, 0u32, (i + 1) % n)).collect();
        Adjacency::from_edges(&edges, n as usize)
    }

    #[test]
    fn one_level_roughly_halves() {
        let g = ring(64);
        let mut rng = Xoshiro256::seed_from_u64(1);
        let level = coarsen_once(&g, &mut rng);
        let m = level.graph.num_nodes();
        assert!((32..=48).contains(&m), "coarse size {m}");
    }

    #[test]
    fn mapping_is_total_and_in_range() {
        let g = ring(50);
        let mut rng = Xoshiro256::seed_from_u64(2);
        let level = coarsen_once(&g, &mut rng);
        assert_eq!(level.mapping.len(), 50);
        let coarse_n = level.graph.num_nodes() as u32;
        for &c in &level.mapping {
            assert!(c < coarse_n);
        }
    }

    #[test]
    fn pairs_map_to_same_coarse_node() {
        let g = ring(40);
        let mut rng = Xoshiro256::seed_from_u64(3);
        let level = coarsen_once(&g, &mut rng);
        // each coarse node has 1 or 2 fine preimages
        let mut counts = vec![0usize; level.graph.num_nodes()];
        for &c in &level.mapping {
            counts[c as usize] += 1;
        }
        assert!(counts.iter().all(|&c| (1..=2).contains(&c)));
    }

    #[test]
    fn coarse_edges_connect_mapped_endpoints() {
        let g = ring(30);
        let mut rng = Xoshiro256::seed_from_u64(4);
        let level = coarsen_once(&g, &mut rng);
        // every fine edge either collapsed or exists coarsely
        for v in 0..30u32 {
            for &u in g.neighbors(v) {
                let (cv, cu) = (level.mapping[v as usize], level.mapping[u as usize]);
                if cv != cu {
                    assert!(
                        level.graph.neighbors(cv).contains(&cu),
                        "fine edge {v}-{u} lost"
                    );
                }
            }
        }
    }

    #[test]
    fn weights_accumulate_on_merge() {
        // triangle: matching merges two nodes; the two edges to the third
        // node combine into weight 2
        let edges: EdgeList = [
            Edge::new(0u32, 0u32, 1u32),
            Edge::new(1u32, 0u32, 2u32),
            Edge::new(2u32, 0u32, 0u32),
        ]
        .into_iter()
        .collect();
        let g = Adjacency::from_edges(&edges, 3);
        let mut rng = Xoshiro256::seed_from_u64(5);
        let level = coarsen_once(&g, &mut rng);
        assert_eq!(level.graph.num_nodes(), 2);
        let total_weight: f32 = level.graph.weights(0).iter().sum();
        assert_eq!(total_weight, 2.0);
    }

    #[test]
    fn multi_level_shrinks_monotonically() {
        let g = ring(128);
        let levels = coarsen(&g, 4, 6);
        assert!(!levels.is_empty());
        let mut prev = 128;
        for l in &levels {
            assert!(l.graph.num_nodes() <= prev);
            prev = l.graph.num_nodes();
        }
        assert!(prev <= 32, "4 levels should shrink 128 -> ~16, got {prev}");
    }
}
