//! Property-based tests for the baseline substrates.

use pbg_baselines::adjacency::Adjacency;
use pbg_baselines::coarsen::{coarsen, coarsen_once};
use pbg_baselines::walks::{WalkConfig, WalkCorpus};
use pbg_graph::edges::{Edge, EdgeList};
use pbg_tensor::rng::Xoshiro256;
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = (usize, EdgeList)> {
    (4usize..60).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), n..4 * n).prop_map(move |pairs| {
            let edges: EdgeList = pairs
                .into_iter()
                .map(|(s, d)| Edge::new(s, 0u32, d))
                .collect();
            (n, edges)
        })
    })
}

proptest! {
    #[test]
    fn adjacency_is_symmetric((n, edges) in arb_graph()) {
        let adj = Adjacency::from_edges(&edges, n);
        for v in 0..n as u32 {
            for &u in adj.neighbors(v) {
                prop_assert!(
                    adj.neighbors(u).contains(&v),
                    "edge {v}->{u} not symmetric"
                );
            }
        }
        // total entries = 2 × non-loop edge count
        let non_loops = edges.iter().filter(|e| e.src != e.dst).count();
        prop_assert_eq!(adj.num_entries(), 2 * non_loops);
    }

    #[test]
    fn walks_stay_on_edges((n, edges) in arb_graph(), seed in 0u64..100) {
        let adj = Adjacency::from_edges(&edges, n);
        let corpus = WalkCorpus::generate(
            &adj,
            WalkConfig { walks_per_node: 2, walk_length: 8 },
            seed,
        );
        prop_assert_eq!(corpus.walks().len(), 2 * n);
        for walk in corpus.walks() {
            prop_assert!(!walk.is_empty());
            for pair in walk.windows(2) {
                prop_assert!(adj.neighbors(pair[0]).contains(&pair[1]));
            }
        }
    }

    #[test]
    fn coarsening_preserves_connectivity_mass((n, edges) in arb_graph(), seed in 0u64..100) {
        let adj = Adjacency::from_edges(&edges, n);
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let level = coarsen_once(&adj, &mut rng);
        // every fine node maps somewhere valid
        prop_assert_eq!(level.mapping.len(), n);
        let coarse_n = level.graph.num_nodes() as u32;
        prop_assert!(level.mapping.iter().all(|&c| c < coarse_n));
        // coarse graph has at least half as few nodes (matching merges
        // pairs) and no more than the original
        prop_assert!(level.graph.num_nodes() <= n);
        prop_assert!(level.graph.num_nodes() >= n / 2);
        // total edge weight is conserved minus collapsed pairs
        let fine_weight: f32 = (0..n as u32)
            .flat_map(|v| adj.weights(v).to_vec())
            .sum();
        let coarse_weight: f32 = (0..coarse_n)
            .flat_map(|v| level.graph.weights(v).to_vec())
            .sum();
        prop_assert!(coarse_weight <= fine_weight + 1e-3);
    }

    #[test]
    fn multilevel_mappings_compose((n, edges) in arb_graph(), levels in 1usize..4) {
        let adj = Adjacency::from_edges(&edges, n);
        let hierarchy = coarsen(&adj, levels, 7);
        // composing mappings lands every fine node in the coarsest graph
        for v in 0..n as u32 {
            let mut cur = v;
            for level in &hierarchy {
                cur = level.mapping[cur as usize];
            }
            let coarsest = hierarchy.last().unwrap().graph.num_nodes() as u32;
            prop_assert!(cur < coarsest);
        }
    }
}
