//! `pbg-serve`: the memory-mapped embedding serving tier.
//!
//! Training produces a checkpoint directory; this crate turns it into a
//! live inference service without ever copying embedding shards onto the
//! heap. [`EmbedServer`] memory-maps every per-partition shard through
//! [`pbg_core::checkpoint::open_mmap`] (manifest checksums verified over
//! the mapped bytes), so startup cost is page-table setup plus a
//! checksum scan, resident memory is whatever the page cache keeps warm,
//! and N server processes on one host share a single physical copy of
//! the model.
//!
//! The HTTP layer reuses the hardened zero-dependency listener shape
//! from [`pbg_telemetry::http`]: a bound listener, an accept loop on a
//! named thread, one short-lived thread per connection, shutdown by stop
//! flag plus wake-up connect. On top of that it adds per-client
//! token-bucket rate limiting, structured JSONL request logs, and
//! latency/QPS metrics in the shared telemetry registry.
//!
//! Endpoints:
//! - `POST /score` — body `{"src": id, "rel": name-or-index, "dsts":
//!   [id, ...]}`; answers `{"scores": [f32, ...]}` through the same
//!   batched kernel path offline evaluation uses.
//! - `POST /topk` — body `{"src": id, "rel": name-or-index, "k": n}`;
//!   answers the `k` best destinations over the *entire* destination
//!   shard, streamed block-by-block straight off the mapping. Ties
//!   resolve to the lower entity id, matching the offline argmax.
//! - `GET /embedding/{type}/{id}` (or `/embedding/{id}` when the schema
//!   has a single entity type) — one raw embedding row.
//! - `GET /healthz` — model card: dim, similarity, entity counts,
//!   mapped bytes.
//! - `GET /metrics` — Prometheus text exposition of the registry.

use pbg_core::model::MmapEmbeddings;
use pbg_graph::ids::RelationTypeId;
use pbg_telemetry::http::{read_request, write_response, Request, RequestError};
use pbg_telemetry::metrics::names;
use pbg_telemetry::Registry;
use serde_json::{json, Value};
use std::collections::HashMap;
use std::net::{IpAddr, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime};

/// Tuning for one [`EmbedServer`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Sustained per-client request rate (token-bucket refill). Zero or
    /// negative disables rate limiting.
    pub rate_limit_rps: f64,
    /// Burst capacity per client (bucket depth).
    pub rate_limit_burst: f64,
    /// Largest accepted request body; bigger bodies get `413`.
    pub max_body_bytes: usize,
    /// When set, one JSON line per request is appended here: timestamp,
    /// client, method, path, status, latency, response size.
    pub request_log: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            rate_limit_rps: 500.0,
            rate_limit_burst: 1000.0,
            max_body_bytes: 256 * 1024,
            request_log: None,
        }
    }
}

/// Per-client token bucket state.
struct Bucket {
    tokens: f64,
    last: Instant,
}

/// Classic token-bucket limiter keyed by client IP: each client accrues
/// `rps` tokens per second up to `burst`; a request spends one token or
/// is refused. Keyed by IP (not socket) so reconnecting does not reset
/// the budget.
struct RateLimiter {
    rps: f64,
    burst: f64,
    buckets: Mutex<HashMap<IpAddr, Bucket>>,
}

/// Above this many tracked clients, idle buckets get evicted — bounds
/// limiter memory against address-spraying clients.
const LIMITER_MAX_CLIENTS: usize = 10_000;

impl RateLimiter {
    fn new(rps: f64, burst: f64) -> Self {
        RateLimiter {
            rps,
            burst: burst.max(1.0),
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// Spends one token for `ip`; `false` means throttle (answer 429).
    fn allow(&self, ip: IpAddr) -> bool {
        if self.rps <= 0.0 {
            return true;
        }
        let now = Instant::now();
        let mut map = self.buckets.lock().expect("rate limiter poisoned");
        if map.len() > LIMITER_MAX_CLIENTS {
            map.retain(|_, b| now.duration_since(b.last) < Duration::from_secs(60));
        }
        let b = map.entry(ip).or_insert(Bucket {
            tokens: self.burst,
            last: now,
        });
        b.tokens = (b.tokens + now.duration_since(b.last).as_secs_f64() * self.rps).min(self.burst);
        b.last = now;
        if b.tokens >= 1.0 {
            b.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Whole seconds until `ip` has a token again (the `Retry-After`
    /// value), at least 1.
    fn retry_after_secs(&self) -> u64 {
        if self.rps <= 0.0 {
            return 1;
        }
        (1.0 / self.rps).ceil().max(1.0) as u64
    }
}

/// Everything a connection thread needs, shared behind one `Arc`.
struct Ctx {
    model: Arc<MmapEmbeddings>,
    registry: Registry,
    limiter: RateLimiter,
    request_log: Option<Mutex<std::fs::File>>,
    max_body_bytes: usize,
}

/// A fully formed HTTP reply, before serialization to the socket.
struct Reply {
    status: &'static str,
    content_type: &'static str,
    body: String,
    /// `Allow` header value for 405s.
    allow: Option<&'static str>,
    /// `Retry-After` seconds for 429s.
    retry_after: Option<u64>,
}

impl Reply {
    fn json(status: &'static str, body: Value) -> Reply {
        Reply {
            status,
            content_type: "application/json",
            body: serde_json::to_string(&body).unwrap_or_else(|_| "{}".to_string()) + "\n",
            allow: None,
            retry_after: None,
        }
    }

    fn text(status: &'static str, body: impl Into<String>) -> Reply {
        Reply {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
            allow: None,
            retry_after: None,
        }
    }

    /// The numeric status code (for logs and error classification).
    fn code(&self) -> u64 {
        self.status
            .split(' ')
            .next()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0)
    }
}

/// A client mistake: becomes a `400` with a JSON `error` field.
struct ApiError(String);

impl ApiError {
    fn new(msg: impl Into<String>) -> ApiError {
        ApiError(msg.into())
    }
}

type ApiResult = Result<Value, ApiError>;

/// A running embedding inference server. Shuts down on drop.
pub struct EmbedServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl EmbedServer {
    /// Binds `addr` (port 0 picks a free port) and serves `model` until
    /// shutdown or drop. The registry gains `serve.*` request metrics;
    /// `serve.mapped_bytes` is set immediately to the mapped model size.
    ///
    /// # Errors
    ///
    /// Returns the bind error, or the open error for the request log.
    pub fn serve(
        addr: &str,
        model: Arc<MmapEmbeddings>,
        registry: Registry,
        config: ServeConfig,
    ) -> std::io::Result<EmbedServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let request_log = match &config.request_log {
            Some(path) => Some(Mutex::new(
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)?,
            )),
            None => None,
        };
        registry
            .gauge(names::SERVE_MAPPED_BYTES)
            .set(model.mapped_bytes() as u64);
        let ctx = Arc::new(Ctx {
            model,
            registry,
            limiter: RateLimiter::new(config.rate_limit_rps, config.rate_limit_burst),
            request_log,
            max_body_bytes: config.max_body_bytes,
        });
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name(format!("pbg-serve-{}", local_addr.port()))
            .spawn(move || accept_loop(listener, ctx, accept_stop))
            .expect("spawn serve accept thread");
        Ok(EmbedServer {
            local_addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting and joins the accept thread. Idempotent.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // wake the blocking accept with a throwaway connection
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for EmbedServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, ctx: Arc<Ctx>, stop: Arc<AtomicBool>) {
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let ctx = Arc::clone(&ctx);
        let _ = std::thread::Builder::new()
            .name("pbg-serve-conn".to_string())
            .spawn(move || {
                let _ = handle_connection(stream, &ctx);
            });
    }
}

fn handle_connection(mut stream: TcpStream, ctx: &Ctx) -> std::io::Result<()> {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let client_ip = stream
        .peer_addr()
        .map(|a| a.ip())
        .unwrap_or(IpAddr::from([0u8, 0, 0, 0]));
    let started = Instant::now();
    let req = match read_request(&mut stream, ctx.max_body_bytes)? {
        Ok(req) => req,
        Err(e) => {
            ctx.registry.counter(names::SERVE_REQUESTS).inc();
            ctx.registry.counter(names::SERVE_CLIENT_ERRORS).inc();
            let (status, body) = e.response();
            // a refused parse still gets a structured log line
            log_request(
                ctx,
                client_ip,
                "-",
                "-",
                refusal_code(e),
                started,
                body.len(),
            );
            return write_response(&mut stream, status, "text/plain; charset=utf-8", body, &[]);
        }
    };
    let reply = route(&req, client_ip, ctx);

    ctx.registry.counter(names::SERVE_REQUESTS).inc();
    ctx.registry
        .histogram(names::SERVE_REQUEST_LATENCY_NS)
        .observe(started.elapsed().as_nanos() as u64);
    let code = reply.code();
    if code == 429 {
        ctx.registry.counter(names::SERVE_THROTTLED).inc();
    } else if (400..500).contains(&code) {
        ctx.registry.counter(names::SERVE_CLIENT_ERRORS).inc();
    }
    log_request(
        ctx,
        client_ip,
        &req.method,
        req.route(),
        code,
        started,
        reply.body.len(),
    );

    let retry_after = reply.retry_after.map(|s| s.to_string());
    let mut extra: Vec<(&str, &str)> = Vec::new();
    if let Some(allow) = reply.allow {
        extra.push(("Allow", allow));
    }
    if let Some(ra) = retry_after.as_deref() {
        extra.push(("Retry-After", ra));
    }
    write_response(
        &mut stream,
        reply.status,
        reply.content_type,
        &reply.body,
        &extra,
    )
}

fn refusal_code(e: RequestError) -> u64 {
    match e {
        RequestError::HeadTooLarge => 431,
        RequestError::Malformed => 400,
        RequestError::BodyTooLarge => 413,
    }
}

/// Appends one structured JSONL line to the request log, if configured.
/// Logging failures never fail the request.
fn log_request(
    ctx: &Ctx,
    client: IpAddr,
    method: &str,
    path: &str,
    status: u64,
    started: Instant,
    bytes_out: usize,
) {
    let Some(log) = &ctx.request_log else { return };
    let ts_ms = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    let line = json!({
        "ts_ms": ts_ms,
        "client": client.to_string(),
        "method": method,
        "path": path,
        "status": status,
        "latency_ns": started.elapsed().as_nanos() as u64,
        "bytes_out": bytes_out as u64,
    });
    let Ok(text) = serde_json::to_string(&line) else {
        return;
    };
    if let Ok(mut f) = log.lock() {
        use std::io::Write;
        let _ = writeln!(f, "{text}");
    }
}

fn route(req: &Request, client_ip: IpAddr, ctx: &Ctx) -> Reply {
    let path = req.route();
    // observability endpoints: never rate limited, GET only
    match path {
        "/" | "/healthz" => {
            return if req.method == "GET" {
                Reply::json("200 OK", healthz(ctx))
            } else {
                method_not_allowed("GET")
            }
        }
        "/metrics" => {
            return if req.method == "GET" {
                Reply {
                    status: "200 OK",
                    content_type: "text/plain; version=0.0.4; charset=utf-8",
                    body: ctx.registry.snapshot().to_prometheus(),
                    allow: None,
                    retry_after: None,
                }
            } else {
                method_not_allowed("GET")
            }
        }
        _ => {}
    }
    let is_inference =
        path == "/score" || path == "/topk" || path.strip_prefix("/embedding/").is_some();
    if !is_inference {
        return Reply::text("404 Not Found", "not found\n");
    }
    if !ctx.limiter.allow(client_ip) {
        let mut reply = Reply::json(
            "429 Too Many Requests",
            json!({"error": "rate limit exceeded"}),
        );
        reply.retry_after = Some(ctx.limiter.retry_after_secs());
        return reply;
    }
    let result = match (req.method.as_str(), path) {
        ("POST", "/score") => api_score(req, ctx),
        ("POST", "/topk") => api_topk(req, ctx),
        (_, "/score") | (_, "/topk") => return method_not_allowed("POST"),
        ("GET", _) => api_embedding(path, ctx),
        _ => return method_not_allowed("GET"),
    };
    match result {
        Ok(body) => Reply::json("200 OK", body),
        Err(ApiError(msg)) => Reply::json("400 Bad Request", json!({ "error": msg })),
    }
}

fn method_not_allowed(allow: &'static str) -> Reply {
    let mut reply = Reply::text("405 Method Not Allowed", "method not allowed\n");
    reply.allow = Some(allow);
    reply
}

/// The model card `/healthz` answers: enough for a load balancer to
/// check liveness and for an operator to confirm *which* model this is.
fn healthz(ctx: &Ctx) -> Value {
    let m = &ctx.model;
    let entities: Vec<Value> = m
        .schema
        .entity_types()
        .iter()
        .map(|e| json!({"name": e.name(), "num_entities": e.num_entities() as u64}))
        .collect();
    let relations: Vec<Value> = m
        .schema
        .relation_types()
        .iter()
        .map(|r| json!(r.name()))
        .collect();
    json!({
        "status": "ok",
        "dim": m.dim as u64,
        "similarity": format!("{:?}", m.similarity),
        "entity_types": entities,
        "relations": relations,
        "mapped_bytes": m.mapped_bytes() as u64,
    })
}

// ---------------------------------------------------------------------
// Request parsing helpers
// ---------------------------------------------------------------------

fn body_json(req: &Request) -> Result<Value, ApiError> {
    let text = std::str::from_utf8(&req.body)
        .map_err(|_| ApiError::new("request body is not valid UTF-8"))?;
    serde_json::from_str(text).map_err(|e| ApiError(format!("request body is not JSON: {e:?}")))
}

fn field_u32(v: &Value, name: &str) -> Result<u32, ApiError> {
    let f = v
        .get(name)
        .ok_or_else(|| ApiError(format!("missing field \"{name}\"")))?;
    let n = f
        .as_u64()
        .ok_or_else(|| ApiError(format!("field \"{name}\" must be a non-negative integer")))?;
    u32::try_from(n).map_err(|_| ApiError(format!("field \"{name}\" exceeds u32 range")))
}

/// Resolves the request's `rel` field: a relation name or a numeric
/// index, checked against the schema.
fn resolve_rel(v: &Value, model: &MmapEmbeddings) -> Result<RelationTypeId, ApiError> {
    let f = v
        .get("rel")
        .ok_or_else(|| ApiError::new("missing field \"rel\""))?;
    let rels = model.schema.relation_types();
    if let Some(n) = f.as_u64() {
        if (n as usize) < rels.len() {
            return Ok(RelationTypeId(n as u32));
        }
        return Err(ApiError(format!(
            "relation index {n} out of range (model has {} relations)",
            rels.len()
        )));
    }
    if let Some(name) = f.as_str() {
        if let Some(i) = rels.iter().position(|r| r.name() == name) {
            return Ok(RelationTypeId(i as u32));
        }
        return Err(ApiError(format!("unknown relation \"{name}\"")));
    }
    Err(ApiError::new(
        "field \"rel\" must be a relation name or index",
    ))
}

/// Checks `id` against the entity count of `entity_type`.
fn check_entity(
    model: &MmapEmbeddings,
    entity_type: pbg_graph::ids::EntityTypeId,
    id: u32,
    what: &str,
) -> Result<(), ApiError> {
    let def = model.schema.entity_type(entity_type);
    if id >= def.num_entities() {
        return Err(ApiError(format!(
            "{what} {id} out of range: entity type \"{}\" has {} entities",
            def.name(),
            def.num_entities()
        )));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Endpoint handlers
// ---------------------------------------------------------------------

/// `POST /score`: score one source against an explicit destination list
/// through the batched kernel path — float-identical to offline
/// `score_against_destinations`.
fn api_score(req: &Request, ctx: &Ctx) -> ApiResult {
    let v = body_json(req)?;
    let model = &ctx.model;
    let src = field_u32(&v, "src")?;
    let rel = resolve_rel(&v, model)?;
    let rdef = model.schema.relation_type(rel);
    check_entity(model, rdef.source_type(), src, "src")?;
    let dsts_v = v
        .get("dsts")
        .ok_or_else(|| ApiError::new("missing field \"dsts\""))?
        .as_array()
        .ok_or_else(|| ApiError::new("field \"dsts\" must be an array of entity ids"))?;
    if dsts_v.is_empty() {
        return Err(ApiError::new("field \"dsts\" must not be empty"));
    }
    let mut dsts = Vec::with_capacity(dsts_v.len());
    for d in dsts_v {
        let n = d
            .as_u64()
            .and_then(|n| u32::try_from(n).ok())
            .ok_or_else(|| ApiError::new("field \"dsts\" must contain entity ids"))?;
        check_entity(model, rdef.dest_type(), n, "dst")?;
        dsts.push(n);
    }
    let scores = model.score_against_destinations(src, rel, &dsts);
    ctx.registry
        .counter(names::SERVE_ROWS_SCORED)
        .add(dsts.len() as u64);
    let scores: Vec<f64> = scores.into_iter().map(f64::from).collect();
    Ok(json!({ "scores": scores }))
}

/// `POST /topk`: the `k` best destinations over the whole destination
/// shard, streamed off the mapping block-by-block.
fn api_topk(req: &Request, ctx: &Ctx) -> ApiResult {
    let v = body_json(req)?;
    let model = &ctx.model;
    let src = field_u32(&v, "src")?;
    let rel = resolve_rel(&v, model)?;
    let rdef = model.schema.relation_type(rel);
    check_entity(model, rdef.source_type(), src, "src")?;
    let k = match v.get("k") {
        None => 10,
        Some(kv) => {
            let k = kv
                .as_u64()
                .ok_or_else(|| ApiError::new("field \"k\" must be a positive integer"))?;
            if k == 0 || k > 10_000 {
                return Err(ApiError::new("field \"k\" must be between 1 and 10000"));
            }
            k as usize
        }
    };
    let dest_def = model.schema.entity_type(rdef.dest_type());
    let results = model.top_destinations(src, rel, k);
    ctx.registry
        .counter(names::SERVE_ROWS_SCORED)
        .add(u64::from(dest_def.num_entities()));
    let results: Vec<Value> = results
        .into_iter()
        .map(|(dst, score)| json!({"dst": dst, "score": f64::from(score)}))
        .collect();
    Ok(json!({
        "rel": rdef.name(),
        "entity_type": dest_def.name(),
        "results": results,
    }))
}

/// `GET /embedding/{type}/{id}` (or `/embedding/{id}` for single-type
/// schemas): one raw embedding row, zero-copy until serialization.
fn api_embedding(path: &str, ctx: &Ctx) -> ApiResult {
    let model = &ctx.model;
    let rest = path
        .strip_prefix("/embedding/")
        .ok_or_else(|| ApiError::new("bad embedding path"))?;
    let segs: Vec<&str> = rest.split('/').filter(|s| !s.is_empty()).collect();
    let types = model.schema.entity_types();
    let (type_idx, id_str) = match segs.as_slice() {
        [id] if types.len() == 1 => (0usize, *id),
        [_] => {
            return Err(ApiError(format!(
                "model has {} entity types; use /embedding/{{type}}/{{id}}",
                types.len()
            )))
        }
        [ty, id] => {
            let idx = types
                .iter()
                .position(|e| e.name() == *ty)
                .or_else(|| ty.parse::<usize>().ok().filter(|&i| i < types.len()))
                .ok_or_else(|| ApiError(format!("unknown entity type \"{ty}\"")))?;
            (idx, *id)
        }
        _ => {
            return Err(ApiError::new(
                "use /embedding/{id} or /embedding/{type}/{id}",
            ))
        }
    };
    let id: u32 = id_str
        .parse()
        .map_err(|_| ApiError(format!("entity id \"{id_str}\" is not a number")))?;
    check_entity(
        model,
        pbg_graph::ids::EntityTypeId(type_idx as u32),
        id,
        "id",
    )?;
    let row: Vec<f64> = model
        .embedding(type_idx, id)
        .iter()
        .map(|&x| f64::from(x))
        .collect();
    Ok(json!({
        "entity_type": types[type_idx].name(),
        "id": id,
        "dim": model.dim as u64,
        "embedding": row,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbg_core::config::PbgConfig;
    use pbg_core::model::Model;
    use pbg_core::storage::InMemoryStore;
    use pbg_core::{checkpoint, model::TrainedEmbeddings};
    use pbg_graph::schema::{EntityTypeDef, GraphSchema, OperatorKind, RelationTypeDef};
    use std::io::{Read, Write};

    fn snapshot() -> TrainedEmbeddings {
        let schema = GraphSchema::builder()
            .entity_type(EntityTypeDef::new("user", 30).with_partitions(2))
            .entity_type(EntityTypeDef::new("item", 12))
            .relation_type(
                RelationTypeDef::new("buys", 0u32, 1u32).with_operator(OperatorKind::Translation),
            )
            .relation_type(
                RelationTypeDef::new("follows", 0u32, 0u32).with_operator(OperatorKind::Identity),
            )
            .build()
            .unwrap();
        let config = PbgConfig::builder()
            .dim(8)
            .batch_size(4)
            .chunk_size(2)
            .build()
            .unwrap();
        let model = Model::new(schema, config).unwrap();
        let store = InMemoryStore::new(model.store_layout());
        model.snapshot(&store)
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("pbg_serve_{name}_{}", std::process::id()))
    }

    struct Fixture {
        dir: std::path::PathBuf,
        server: EmbedServer,
        model: Arc<MmapEmbeddings>,
        registry: Registry,
    }

    impl Fixture {
        fn start(name: &str, config: ServeConfig) -> Fixture {
            let dir = tmp(name);
            std::fs::remove_dir_all(&dir).ok();
            checkpoint::save(&snapshot(), &dir).unwrap();
            let model = Arc::new(checkpoint::open_mmap(&dir).unwrap());
            let registry = Registry::new();
            let server =
                EmbedServer::serve("127.0.0.1:0", Arc::clone(&model), registry.clone(), config)
                    .unwrap();
            Fixture {
                dir,
                server,
                model,
                registry,
            }
        }
    }

    impl Drop for Fixture {
        fn drop(&mut self) {
            self.server.shutdown();
            std::fs::remove_dir_all(&self.dir).ok();
        }
    }

    fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (String, String) {
        let mut s = TcpStream::connect(addr).unwrap();
        let req = format!(
            "{method} {path} HTTP/1.0\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        s.write_all(req.as_bytes()).unwrap();
        let mut response = String::new();
        s.read_to_string(&mut response).unwrap();
        let (head, payload) = response
            .split_once("\r\n\r\n")
            .unwrap_or((response.as_str(), ""));
        let status = head.lines().next().unwrap_or("").to_string();
        (status, payload.to_string())
    }

    fn unlimited() -> ServeConfig {
        ServeConfig {
            rate_limit_rps: 0.0,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn healthz_reports_model_card() {
        let f = Fixture::start("healthz", unlimited());
        let (status, body) = http(f.server.local_addr(), "GET", "/healthz", "");
        assert!(status.contains("200"), "{status}");
        let v: Value = serde_json::from_str(&body).unwrap();
        assert_eq!(v.get("status").unwrap().as_str(), Some("ok"));
        assert_eq!(v.get("dim").unwrap().as_u64(), Some(8));
        assert_eq!(
            v.get("mapped_bytes").unwrap().as_u64(),
            Some(f.model.mapped_bytes() as u64)
        );
        assert_eq!(v.get("relations").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn metrics_endpoint_is_lint_clean_and_counts_requests() {
        let f = Fixture::start("metrics", unlimited());
        let addr = f.server.local_addr();
        http(addr, "GET", "/healthz", "");
        let (status, body) = http(addr, "GET", "/metrics", "");
        assert!(status.contains("200"), "{status}");
        pbg_telemetry::snapshot::lint_prometheus(&body).unwrap();
        assert!(body.contains("serve_requests"), "{body}");
        assert!(f.registry.counter(names::SERVE_REQUESTS).get() >= 1);
        assert!(f.registry.gauge(names::SERVE_MAPPED_BYTES).get() > 0);
    }

    #[test]
    fn topk_matches_offline_argmax() {
        let f = Fixture::start("topk", unlimited());
        let addr = f.server.local_addr();
        for src in [0u32, 3, 17] {
            // offline reference: score every destination through the
            // batched path and argmax (ties -> lowest id)
            let all: Vec<u32> = (0..12).collect();
            let scores = f
                .model
                .score_against_destinations(src, RelationTypeId(0), &all);
            let mut best = 0usize;
            for (i, &s) in scores.iter().enumerate() {
                if s > scores[best] {
                    best = i;
                }
            }
            let (status, body) = http(
                addr,
                "POST",
                "/topk",
                &format!("{{\"src\": {src}, \"rel\": \"buys\", \"k\": 3}}"),
            );
            assert!(status.contains("200"), "{status} {body}");
            let v: Value = serde_json::from_str(&body).unwrap();
            let results = v.get("results").unwrap().as_array().unwrap();
            assert_eq!(results.len(), 3);
            let top = &results[0];
            assert_eq!(top.get("dst").unwrap().as_u64(), Some(best as u64));
            let served = top.get("score").unwrap().as_f64().unwrap();
            assert!((served - f64::from(scores[best])).abs() < 1e-6);
        }
    }

    #[test]
    fn score_matches_model_and_counts_rows() {
        let f = Fixture::start("score", unlimited());
        let addr = f.server.local_addr();
        let (status, body) = http(
            addr,
            "POST",
            "/score",
            "{\"src\": 5, \"rel\": 0, \"dsts\": [0, 7, 11]}",
        );
        assert!(status.contains("200"), "{status} {body}");
        let v: Value = serde_json::from_str(&body).unwrap();
        let scores = v.get("scores").unwrap().as_array().unwrap();
        let want = f
            .model
            .score_against_destinations(5, RelationTypeId(0), &[0, 7, 11]);
        assert_eq!(scores.len(), 3);
        for (got, want) in scores.iter().zip(&want) {
            assert!((got.as_f64().unwrap() - f64::from(*want)).abs() < 1e-6);
        }
        assert_eq!(f.registry.counter(names::SERVE_ROWS_SCORED).get(), 3);
    }

    #[test]
    fn embedding_roundtrips_by_type_name() {
        let f = Fixture::start("embedding", unlimited());
        let addr = f.server.local_addr();
        let (status, body) = http(addr, "GET", "/embedding/item/4", "");
        assert!(status.contains("200"), "{status} {body}");
        let v: Value = serde_json::from_str(&body).unwrap();
        assert_eq!(v.get("entity_type").unwrap().as_str(), Some("item"));
        let row = v.get("embedding").unwrap().as_array().unwrap();
        let want = f.model.embedding(1, 4);
        assert_eq!(row.len(), want.len());
        for (got, want) in row.iter().zip(want.iter()) {
            assert!((got.as_f64().unwrap() - f64::from(*want)).abs() < 1e-9);
        }
    }

    #[test]
    fn client_mistakes_get_400_with_json_error() {
        let f = Fixture::start("errors", unlimited());
        let addr = f.server.local_addr();
        for (path, body) in [
            ("/score", "not json"),
            ("/score", "{\"src\": 5}"),
            ("/score", "{\"src\": 5, \"rel\": \"nope\", \"dsts\": [1]}"),
            ("/score", "{\"src\": 5, \"rel\": 0, \"dsts\": [99]}"),
            ("/score", "{\"src\": 99, \"rel\": 0, \"dsts\": [1]}"),
            ("/topk", "{\"src\": 1, \"rel\": 0, \"k\": 0}"),
        ] {
            let (status, reply) = http(addr, "POST", path, body);
            assert!(status.contains("400"), "{path} {body}: {status}");
            let v: Value = serde_json::from_str(&reply).unwrap();
            assert!(v.get("error").unwrap().as_str().is_some());
        }
        let (status, _) = http(addr, "GET", "/embedding/ghost/1", "");
        assert!(status.contains("400"), "{status}");
        assert!(f.registry.counter(names::SERVE_CLIENT_ERRORS).get() >= 7);
    }

    #[test]
    fn unknown_route_404_and_wrong_method_405() {
        let f = Fixture::start("routes", unlimited());
        let addr = f.server.local_addr();
        let (status, _) = http(addr, "GET", "/nope", "");
        assert!(status.contains("404"), "{status}");
        let (status, _) = http(addr, "GET", "/score", "");
        assert!(status.contains("405"), "{status}");
        let (status, _) = http(addr, "POST", "/metrics", "");
        assert!(status.contains("405"), "{status}");
        let (status, _) = http(addr, "POST", "/embedding/item/1", "");
        assert!(status.contains("405"), "{status}");
    }

    #[test]
    fn rate_limiter_throttles_with_retry_after() {
        let config = ServeConfig {
            rate_limit_rps: 0.001,
            rate_limit_burst: 2.0,
            ..ServeConfig::default()
        };
        let f = Fixture::start("throttle", config);
        let addr = f.server.local_addr();
        let body = "{\"src\": 1, \"rel\": 0, \"k\": 1}";
        let mut throttled = 0;
        for _ in 0..4 {
            let mut s = TcpStream::connect(addr).unwrap();
            let req = format!(
                "POST /topk HTTP/1.0\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            );
            s.write_all(req.as_bytes()).unwrap();
            let mut response = String::new();
            s.read_to_string(&mut response).unwrap();
            if response.contains("429") {
                throttled += 1;
                assert!(response.contains("Retry-After:"), "{response}");
            }
        }
        // burst of 2 at ~zero refill: at least the last two must throttle
        assert!(throttled >= 2, "only {throttled} throttled");
        assert!(f.registry.counter(names::SERVE_THROTTLED).get() >= 2);
        // health stays reachable while the client is throttled
        let (status, _) = http(addr, "GET", "/healthz", "");
        assert!(status.contains("200"), "{status}");
    }

    #[test]
    fn request_log_captures_structured_lines() {
        let log_path = tmp("reqlog.jsonl");
        std::fs::remove_file(&log_path).ok();
        let config = ServeConfig {
            rate_limit_rps: 0.0,
            request_log: Some(log_path.clone()),
            ..ServeConfig::default()
        };
        let f = Fixture::start("reqlog", config);
        let addr = f.server.local_addr();
        http(addr, "GET", "/healthz", "");
        http(addr, "POST", "/topk", "{\"src\": 1, \"rel\": 0, \"k\": 2}");
        http(addr, "GET", "/nope", "");
        let text = std::fs::read_to_string(&log_path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "{text}");
        for line in &lines {
            let v: Value = serde_json::from_str(line).unwrap();
            for key in ["ts_ms", "client", "method", "path", "status", "latency_ns"] {
                assert!(v.get(key).is_some(), "missing {key} in {line}");
            }
        }
        let topk: Value = serde_json::from_str(lines[1]).unwrap();
        assert_eq!(topk.get("path").unwrap().as_str(), Some("/topk"));
        assert_eq!(topk.get("status").unwrap().as_u64(), Some(200));
        std::fs::remove_file(&log_path).ok();
    }
}
