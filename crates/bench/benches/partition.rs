//! Partitioning substrate throughput: edge bucketization and bucket-order
//! generation (§4.1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pbg_graph::bucket::Buckets;
use pbg_graph::edges::{Edge, EdgeList};
use pbg_graph::ordering::BucketOrdering;
use pbg_graph::partition::EntityPartitioning;
use pbg_tensor::rng::Xoshiro256;

fn edges(n_nodes: u32, n_edges: usize, seed: u64) -> EdgeList {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    (0..n_edges)
        .map(|_| {
            Edge::new(
                rng.gen_index(n_nodes as usize) as u32,
                0u32,
                rng.gen_index(n_nodes as usize) as u32,
            )
        })
        .collect()
}

fn bench_partition(c: &mut Criterion) {
    let e = edges(100_000, 500_000, 1);
    let mut group = c.benchmark_group("bucketize");
    for &p in &[4u32, 16, 64] {
        let part = EntityPartitioning::new(100_000, p);
        group.throughput(Throughput::Elements(e.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, _| {
            b.iter(|| Buckets::from_edges(&e, &part, &part))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("ordering");
    for ordering in [
        BucketOrdering::InsideOut,
        BucketOrdering::RowMajor,
        BucketOrdering::Chained,
        BucketOrdering::Random,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{ordering:?}_P64")),
            &ordering,
            |b, &ordering| {
                let mut rng = Xoshiro256::seed_from_u64(2);
                b.iter(|| ordering.order(64, 64, &mut rng))
            },
        );
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_partition
);
criterion_main!(benches);
