//! Per-operator forward/backward throughput (§3.1 / §4.3: the linear
//! operator's batch matmul advantage).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pbg_core::operator::{apply, backward, init_params};
use pbg_graph::schema::OperatorKind;
use pbg_tensor::matrix::Matrix;
use pbg_tensor::rng::Xoshiro256;

const DIM: usize = 100;
const BATCH: usize = 50;

fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut m = Matrix::zeros(rows, cols);
    m.fill_with(|_, _| rng.gen_normal() * 0.1);
    m
}

fn bench_operators(c: &mut Criterion) {
    let input = random_matrix(BATCH, DIM, 1);
    let grad = random_matrix(BATCH, DIM, 2);
    let ops = [
        OperatorKind::Identity,
        OperatorKind::Translation,
        OperatorKind::Diagonal,
        OperatorKind::ComplexDiagonal,
        OperatorKind::Linear,
    ];
    let mut group = c.benchmark_group("operator_apply");
    for op in ops {
        let params = init_params(op, DIM);
        group.throughput(Throughput::Elements((BATCH * DIM) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(op), &op, |b, &op| {
            b.iter(|| apply(op, &params, &input));
        });
    }
    group.finish();
    let mut group = c.benchmark_group("operator_backward");
    for op in ops {
        let params = init_params(op, DIM);
        group.throughput(Throughput::Elements((BATCH * DIM) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(op), &op, |b, &op| {
            b.iter(|| backward(op, &params, &input, &grad));
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_operators
);
criterion_main!(benches);
