//! Sampler throughput: uniform vs alias-table (data prevalence) vs Zipf —
//! the §3.1 negative-sampling mix's building blocks.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pbg_tensor::alias::AliasTable;
use pbg_tensor::rng::Xoshiro256;
use pbg_tensor::zipf::Zipf;

const N: usize = 1_000_000;
const DRAWS: usize = 10_000;

fn bench_sampling(c: &mut Criterion) {
    let mut setup_rng = Xoshiro256::seed_from_u64(1);
    let weights: Vec<f32> = (0..N)
        .map(|i| 1.0 / (i as f32 + 1.0) + setup_rng.gen_f32() * 1e-3)
        .collect();
    let alias = AliasTable::new(&weights);
    let zipf = Zipf::new(N as u64, 1.0);

    let mut group = c.benchmark_group("sampling");
    group.throughput(Throughput::Elements(DRAWS as u64));
    group.bench_function("uniform", |b| {
        let mut rng = Xoshiro256::seed_from_u64(2);
        b.iter(|| {
            let mut acc = 0usize;
            for _ in 0..DRAWS {
                acc = acc.wrapping_add(rng.gen_index(N));
            }
            acc
        });
    });
    group.bench_function("alias_prevalence", |b| {
        let mut rng = Xoshiro256::seed_from_u64(3);
        b.iter(|| {
            let mut acc = 0usize;
            for _ in 0..DRAWS {
                acc = acc.wrapping_add(alias.sample(&mut rng));
            }
            acc
        });
    });
    group.bench_function("zipf", |b| {
        let mut rng = Xoshiro256::seed_from_u64(4);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..DRAWS {
                acc = acc.wrapping_add(zipf.sample(&mut rng));
            }
            acc
        });
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_sampling
);
criterion_main!(benches);
