//! Criterion bench behind Figure 4: batched vs unbatched negative scoring
//! for one chunk of positives.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pbg_core::config::SimilarityKind;
use pbg_core::negatives::{candidate_offsets, gather, mask_induced_positives};
use pbg_core::similarity::score_matrix;
use pbg_tensor::hogwild::HogwildArray;
use pbg_tensor::rng::Xoshiro256;
use pbg_tensor::vecmath;

const DIM: usize = 100;
const NODES: usize = 10_000;
const CHUNK: usize = 50;

fn embeddings() -> HogwildArray {
    let mut rng = Xoshiro256::seed_from_u64(1);
    let data: Vec<f32> = (0..NODES * DIM).map(|_| rng.gen_normal() * 0.1).collect();
    HogwildArray::from_vec(NODES, DIM, data)
}

fn bench_negative_scoring(c: &mut Criterion) {
    let emb = embeddings();
    let mut group = c.benchmark_group("negative_scoring");
    for &bn in &[10usize, 50, 100, 200] {
        group.throughput(Throughput::Elements((CHUNK * bn) as u64));
        // batched: one gather of (chunk + uniform) rows + one matmul
        group.bench_with_input(BenchmarkId::new("batched", bn), &bn, |b, &bn| {
            let mut rng = Xoshiro256::seed_from_u64(2);
            let chunk_ids: Vec<u32> = (0..CHUNK as u32).collect();
            b.iter(|| {
                let src = gather(&emb, &chunk_ids);
                let uniform = bn.saturating_sub(CHUNK);
                let cand_ids = candidate_offsets(&chunk_ids, uniform, NODES, &mut rng);
                let cands = gather(&emb, &cand_ids);
                let mut scores = score_matrix(SimilarityKind::Dot, &src, &cands);
                mask_induced_positives(&mut scores, &chunk_ids, &cand_ids);
                scores
            });
        });
        // unbatched: per positive, per negative, fresh gather + dot
        group.bench_with_input(BenchmarkId::new("unbatched", bn), &bn, |b, &bn| {
            let mut rng = Xoshiro256::seed_from_u64(3);
            let mut src_buf = vec![0.0f32; DIM];
            let mut neg_buf = vec![0.0f32; DIM];
            b.iter(|| {
                let mut total = 0.0f32;
                for i in 0..CHUNK {
                    emb.read_row_into(i, &mut src_buf);
                    for _ in 0..bn {
                        let neg = rng.gen_index(NODES);
                        emb.read_row_into(neg, &mut neg_buf);
                        total += vecmath::dot(&src_buf, &neg_buf);
                    }
                }
                total
            });
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_negative_scoring
);
criterion_main!(benches);
