//! Partition swap throughput: synchronous vs pipelined (prefetched)
//! bucket transitions on a [`DiskStore`] (§4.1's swap pipeline).
//!
//! Each iteration walks a row-major bucket order over a P×P grid,
//! loading the two partitions a bucket needs, touching their
//! embeddings (stand-in compute), and releasing what the next bucket
//! does not reuse. The pipelined variant additionally issues
//! background prefetches for the next bucket's partitions before the
//! compute phase, so disk I/O overlaps it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pbg_core::storage::{DiskStore, PartitionKey, PartitionStore, StoreLayout};
use pbg_core::trainer::EpochPlan;
use pbg_graph::bucket::BucketId;
use pbg_graph::schema::{EntityTypeDef, GraphSchema, RelationTypeDef};
use std::collections::HashSet;

const NODES: u32 = 40_000;
const DIM: usize = 32;

fn layout(p: u32) -> StoreLayout {
    let schema = GraphSchema::builder()
        .entity_type(EntityTypeDef::new("node", NODES).with_partitions(p))
        .relation_type(RelationTypeDef::new("edge", 0u32, 0u32))
        .build()
        .unwrap();
    StoreLayout::from_schema(&schema, DIM, 0.1, 0.1, 7)
}

fn grid_needed(b: BucketId) -> HashSet<PartitionKey> {
    [
        PartitionKey::new(0u32, b.src.0),
        PartitionKey::new(0u32, b.dst.0),
    ]
    .into_iter()
    .collect()
}

fn plan(p: u32) -> EpochPlan {
    let order: Vec<BucketId> = (0..p)
        .flat_map(|s| (0..p).map(move |d| BucketId::new(s, d)))
        .collect();
    EpochPlan::new(&order, grid_needed)
}

/// Stand-in for bucket compute: touch every embedding row once.
fn touch(data: &pbg_core::storage::PartitionData) -> f32 {
    let mut acc = 0.0f32;
    for r in 0..data.embeddings.rows() {
        acc += data.embeddings.get(r, 0);
    }
    acc
}

/// Walks one epoch of bucket transitions through `store`, issuing
/// prefetches when `prefetch` is set (they are no-ops on a synchronous
/// store anyway, but skipping them keeps the baseline honest).
fn run_epoch(store: &DiskStore, plan: &EpochPlan, prefetch: bool) -> f32 {
    let mut acc = 0.0f32;
    for step in plan.steps() {
        if prefetch {
            for &key in &step.prefetch {
                store.prefetch(key);
            }
        }
        for &key in &step.needed {
            acc += touch(&store.load(key));
        }
        for &key in &step.release {
            store.release(key);
        }
    }
    acc
}

fn bench_swap(c: &mut Criterion) {
    let mut group = c.benchmark_group("bucket_swap");
    group.sample_size(10);
    for &p in &[4u32, 8] {
        let epoch_plan = plan(p);
        let dir = std::env::temp_dir().join(format!("pbg_bench_swap_p{p}_{}", std::process::id()));
        group.bench_with_input(BenchmarkId::new("synchronous", p), &p, |b, _| {
            let store = DiskStore::new_sync(layout(p), dir.join("sync")).unwrap();
            b.iter(|| run_epoch(&store, &epoch_plan, false));
        });
        group.bench_with_input(BenchmarkId::new("pipelined", p), &p, |b, _| {
            let store = DiskStore::new(layout(p), dir.join("pipe")).unwrap();
            b.iter(|| run_epoch(&store, &epoch_plan, true));
        });
        std::fs::remove_dir_all(&dir).ok();
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default();
    targets = bench_swap
);
criterion_main!(benches);
