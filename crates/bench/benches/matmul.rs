//! Score-matrix matmul throughput — the §4.3 kernel (`C × N` scores as
//! one batched product).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pbg_tensor::matrix::Matrix;
use pbg_tensor::rng::Xoshiro256;

fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut m = Matrix::zeros(rows, cols);
    m.fill_with(|_, _| rng.gen_normal());
    m
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("score_matmul_nt");
    for &(rows, cands, dim) in &[
        (50usize, 100usize, 100usize),
        (50, 200, 100),
        (1000, 100, 100),
    ] {
        let a = random_matrix(rows, dim, 1);
        let b = random_matrix(cands, dim, 2);
        group.throughput(Throughput::Elements((rows * cands * dim) as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{rows}x{dim}*{cands}x{dim}T")),
            &(),
            |bench, _| bench.iter(|| a.matmul_nt(&b)),
        );
    }
    group.finish();

    let mut group = c.benchmark_group("square_matmul");
    for &n in &[64usize, 128, 256] {
        let a = random_matrix(n, n, 3);
        let b = random_matrix(n, n, 4);
        group.throughput(Throughput::Elements((n * n * n) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| a.matmul(&b))
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_matmul
);
criterion_main!(benches);
