//! Shared training/evaluation wrappers for the experiment binaries.

use pbg_core::config::PbgConfig;
use pbg_core::eval::{CandidateSampling, LinkPredictionEval};
use pbg_core::model::{RelationSnapshot, TrainedEmbeddings};
use pbg_core::stats::EpochStats;
use pbg_core::trainer::{Storage, Trainer};
use pbg_eval::ranking::RankingMetrics;
use pbg_graph::edges::EdgeList;
use pbg_graph::schema::{GraphSchema, OperatorKind};
use pbg_graph::split::EdgeSplit;
use pbg_tensor::matrix::Matrix;

/// Result of one PBG training run.
#[derive(Debug)]
pub struct PbgRun {
    /// Final model snapshot.
    pub model: TrainedEmbeddings,
    /// Per-epoch stats.
    pub epochs: Vec<EpochStats>,
    /// Peak resident embedding bytes.
    pub peak_bytes: usize,
    /// Total wall-clock training seconds.
    pub seconds: f64,
}

impl PbgRun {
    /// Loads served by a completed background prefetch, summed over
    /// epochs (0 for in-memory runs).
    pub fn total_prefetch_hits(&self) -> usize {
        self.epochs.iter().map(|e| e.prefetch_hits).sum()
    }

    /// Seconds the training hot path spent blocked on partition I/O,
    /// summed over epochs.
    pub fn total_swap_wait_seconds(&self) -> f64 {
        self.epochs.iter().map(|e| e.swap_wait_seconds).sum()
    }

    /// Bytes written back to backing storage, summed over epochs.
    pub fn total_bytes_written_back(&self) -> u64 {
        self.epochs.iter().map(|e| e.bytes_written_back).sum()
    }
}

/// Trains PBG on `train` with `partitions` partitions; disk-swapped when
/// `partitions > 1` and `disk` is set.
///
/// # Panics
///
/// Panics on invalid configs (experiment binaries fail fast).
pub fn train_pbg(
    schema: GraphSchema,
    train: &EdgeList,
    config: PbgConfig,
    disk: Option<std::path::PathBuf>,
) -> PbgRun {
    train_pbg_traced(schema, train, config, disk, None)
}

/// [`train_pbg`] that additionally enables span tracing and writes the
/// run's event trace to `trace` as JSONL (render it with
/// `pbg trace summarize`). Trace I/O failures warn instead of failing the
/// experiment.
///
/// # Panics
///
/// Panics on invalid configs (experiment binaries fail fast).
pub fn train_pbg_traced(
    schema: GraphSchema,
    train: &EdgeList,
    config: PbgConfig,
    disk: Option<std::path::PathBuf>,
    trace: Option<&std::path::Path>,
) -> PbgRun {
    let storage = match disk {
        Some(dir) => Storage::Disk(dir),
        None => Storage::InMemory,
    };
    let mut trainer =
        Trainer::with_storage(schema, train, config, storage).expect("valid experiment config");
    if trace.is_some() {
        trainer.telemetry().set_tracing(true);
    }
    let start = std::time::Instant::now();
    let epochs = trainer.train();
    let seconds = start.elapsed().as_secs_f64();
    if let Some(path) = trace {
        let write = std::fs::File::create(path).and_then(|f| {
            let mut sink = pbg_telemetry::JsonlSink::new(std::io::BufWriter::new(f));
            trainer.telemetry().drain_into(&mut sink)
        });
        match write {
            Ok(()) => println!("(trace saved to {})", path.display()),
            Err(e) => eprintln!("warning: could not write trace {}: {e}", path.display()),
        }
    }
    PbgRun {
        model: trainer.snapshot(),
        peak_bytes: trainer.store().peak_bytes(),
        epochs,
        seconds,
    }
}

/// Derives a per-arm trace path from a `--telemetry` base path:
/// `trace.jsonl` + `p4` becomes `trace.p4.jsonl`.
pub fn arm_trace_path(base: &str, arm: &str) -> std::path::PathBuf {
    let p = std::path::Path::new(base);
    match (p.file_stem(), p.extension()) {
        (Some(stem), Some(ext)) => p.with_file_name(format!(
            "{}.{arm}.{}",
            stem.to_string_lossy(),
            ext.to_string_lossy()
        )),
        _ => std::path::PathBuf::from(format!("{base}.{arm}")),
    }
}

/// Trains PBG, invoking `on_epoch(epoch, elapsed_secs, &snapshot)` after
/// every epoch (for learning curves).
pub fn train_pbg_with_curve(
    schema: GraphSchema,
    train: &EdgeList,
    config: PbgConfig,
    mut on_epoch: impl FnMut(usize, f64, &TrainedEmbeddings),
) -> PbgRun {
    let mut trainer = Trainer::new(schema, train, config).expect("valid experiment config");
    let start = std::time::Instant::now();
    let epochs = trainer.train_with(|stats, t| {
        on_epoch(stats.epoch, start.elapsed().as_secs_f64(), &t.snapshot());
        true
    });
    let seconds = start.elapsed().as_secs_f64();
    PbgRun {
        model: trainer.snapshot(),
        peak_bytes: trainer.store().peak_bytes(),
        epochs,
        seconds,
    }
}

/// Wraps a plain embedding matrix (baseline output) as a
/// [`TrainedEmbeddings`] with an identity relation, so every system is
/// evaluated identically. Baselines are scored with cosine similarity —
/// the natural geometry of SGNS embeddings (dot product would conflate
/// norm with frequency).
pub fn wrap_embeddings(embeddings: Matrix, schema: GraphSchema) -> TrainedEmbeddings {
    wrap_embeddings_with(embeddings, schema, pbg_core::config::SimilarityKind::Cosine)
}

/// [`wrap_embeddings`] with an explicit similarity.
pub fn wrap_embeddings_with(
    embeddings: Matrix,
    schema: GraphSchema,
    similarity: pbg_core::config::SimilarityKind,
) -> TrainedEmbeddings {
    let relations = schema
        .relation_types()
        .iter()
        .map(|r| RelationSnapshot {
            op: OperatorKind::Identity,
            weight: r.weight(),
            forward: Vec::new(),
            reciprocal: None,
        })
        .collect();
    TrainedEmbeddings {
        dim: embeddings.cols(),
        similarity,
        schema,
        embeddings: vec![embeddings],
        relations,
    }
}

/// The standard link-prediction evaluation used across experiments.
pub fn link_prediction(
    model: &TrainedEmbeddings,
    split: &EdgeSplit,
    candidates: usize,
    sampling: CandidateSampling,
) -> RankingMetrics {
    LinkPredictionEval {
        num_candidates: candidates,
        sampling,
        seed: 1234,
        ..Default::default()
    }
    .evaluate(model, &split.test, &split.train, &[])
}

/// Filtered-setting link prediction (FB15k protocol).
pub fn link_prediction_filtered(
    model: &TrainedEmbeddings,
    split: &EdgeSplit,
    candidates: usize,
) -> RankingMetrics {
    LinkPredictionEval {
        num_candidates: candidates,
        sampling: CandidateSampling::Uniform,
        filtered: true,
        seed: 1234,
        ..Default::default()
    }
    .evaluate(
        model,
        &split.test,
        &split.train,
        &[&split.train, &split.valid, &split.test],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbg_datagen::presets;

    #[test]
    fn train_and_wrap_share_eval_path() {
        let dataset = presets::livejournal_like(0.00005, 1); // ~240 nodes
        let split = EdgeSplit::seventy_five_twenty_five(&dataset.edges, 1);
        let config = PbgConfig::builder()
            .dim(8)
            .epochs(1)
            .batch_size(100)
            .chunk_size(10)
            .uniform_negatives(10)
            .threads(1)
            .build()
            .unwrap();
        let run = train_pbg(dataset.schema.clone(), &split.train, config, None);
        let m = link_prediction(&run.model, &split, 20, CandidateSampling::Uniform);
        assert!(m.mrr > 0.0);
        // wrap raw embeddings and evaluate through the same path
        let wrapped = wrap_embeddings(run.model.embeddings[0].clone(), dataset.schema.clone());
        let m2 = link_prediction(&wrapped, &split, 20, CandidateSampling::Uniform);
        assert!(m2.mrr > 0.0);
    }

    #[test]
    fn disk_swapped_run_reports_prefetch_traffic() {
        let dataset = presets::livejournal_like(0.00005, 3);
        let split = EdgeSplit::seventy_five_twenty_five(&dataset.edges, 3);
        let config = PbgConfig::builder()
            .dim(8)
            .epochs(2)
            .batch_size(100)
            .chunk_size(10)
            .uniform_negatives(10)
            .threads(1)
            .build()
            .unwrap();
        let dir = std::env::temp_dir().join(format!("pbg_harness_io_{}", std::process::id()));
        let run = train_pbg(
            dataset.schema_with_partitions(4),
            &split.train,
            config,
            Some(dir.clone()),
        );
        std::fs::remove_dir_all(&dir).ok();
        assert!(
            run.total_prefetch_hits() > 0,
            "pipelined store must prefetch"
        );
        assert!(run.total_bytes_written_back() > 0);
        assert!(run.total_swap_wait_seconds() >= 0.0);
    }

    #[test]
    fn traced_run_writes_summarizable_jsonl() {
        let dataset = presets::livejournal_like(0.00005, 5);
        let split = EdgeSplit::seventy_five_twenty_five(&dataset.edges, 5);
        let config = PbgConfig::builder()
            .dim(8)
            .epochs(1)
            .batch_size(100)
            .chunk_size(10)
            .uniform_negatives(10)
            .threads(1)
            .build()
            .unwrap();
        let path =
            std::env::temp_dir().join(format!("pbg_harness_trace_{}.jsonl", std::process::id()));
        let run = train_pbg_traced(
            dataset.schema.clone(),
            &split.train,
            config,
            None,
            Some(&path),
        );
        let file = std::fs::File::open(&path).unwrap();
        let events = pbg_telemetry::trace::read_jsonl(std::io::BufReader::new(file)).unwrap();
        std::fs::remove_file(&path).ok();
        let summary = pbg_telemetry::trace::summarize(&events);
        let trained: usize = run.epochs.iter().map(|e| e.edges).sum();
        assert_eq!(summary.total_edges as usize, trained);
        let epoch_secs: f64 = run.epochs.iter().map(|e| e.seconds).sum();
        assert!(
            (summary.total_bucket_s - epoch_secs).abs() <= 0.01 * epoch_secs.max(1e-9),
            "trace bucket time {} vs epoch stats {} diverged",
            summary.total_bucket_s,
            epoch_secs
        );
        assert_eq!(
            arm_trace_path("trace.jsonl", "p4"),
            std::path::PathBuf::from("trace.p4.jsonl")
        );
    }

    #[test]
    fn curve_callback_fires_per_epoch() {
        let dataset = presets::livejournal_like(0.00005, 2);
        let split = EdgeSplit::seventy_five_twenty_five(&dataset.edges, 2);
        let config = PbgConfig::builder()
            .dim(8)
            .epochs(3)
            .batch_size(100)
            .chunk_size(10)
            .uniform_negatives(10)
            .threads(1)
            .build()
            .unwrap();
        let mut calls = 0;
        train_pbg_with_curve(dataset.schema.clone(), &split.train, config, |_, _, _| {
            calls += 1;
        });
        assert_eq!(calls, 3);
    }
}
