//! Plain-text tables and result persistence for experiment binaries.

use serde::Serialize;
use std::path::PathBuf;

/// A fixed-width text table mirroring the paper's layout.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = format!("\n== {} ==\n", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Directory where experiment outputs are persisted
/// (`target/experiments/`).
pub fn output_dir() -> PathBuf {
    let dir = PathBuf::from("target/experiments");
    std::fs::create_dir_all(&dir).ok();
    dir
}

/// Persists a serializable result as pretty JSON under
/// `target/experiments/<name>.json`.
pub fn save_json<T: Serialize>(name: &str, value: &T) {
    let path = output_dir().join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                println!("(saved {})", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialize {name}: {e}"),
    }
}

/// Persists raw text (e.g. curve TSVs) under `target/experiments/`.
pub fn save_text(name: &str, text: &str) {
    let path = output_dir().join(name);
    if let Err(e) = std::fs::write(&path, text) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("(saved {})", path.display());
    }
}

/// Parses `--flag value` style options plus `--quick`, shared by every
/// experiment binary.
#[derive(Debug, Clone)]
pub struct ExpArgs {
    /// Dataset scale multiplier override.
    pub scale: Option<f64>,
    /// Epoch count override.
    pub epochs: Option<usize>,
    /// Reduced settings for smoke runs.
    pub quick: bool,
    /// Run the distributed arm (table3/table4).
    pub distributed: bool,
    /// Base path for JSONL span traces (`--telemetry PATH`); experiment
    /// arms derive per-arm files from it.
    pub telemetry: Option<String>,
}

impl ExpArgs {
    /// Parses from `std::env::args`.
    pub fn parse() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let value_of = |flag: &str| -> Option<String> {
            args.iter()
                .position(|a| a == flag)
                .and_then(|i| args.get(i + 1).cloned())
        };
        ExpArgs {
            scale: value_of("--scale").and_then(|v| v.parse().ok()),
            epochs: value_of("--epochs").and_then(|v| v.parse().ok()),
            quick: args.iter().any(|a| a == "--quick"),
            distributed: args.iter().any(|a| a == "--distributed"),
            telemetry: value_of("--telemetry"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["name", "mrr"]);
        t.row(&["pbg".into(), "0.749".into()]);
        t.row(&["deepwalk-long".into(), "0.691".into()]);
        let s = t.render();
        assert!(s.contains("demo"));
        assert!(s.contains("0.749"));
        let lines: Vec<&str> = s.lines().filter(|l| l.contains("0.")).collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].len(), lines[1].len(), "rows not aligned");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn wrong_width_panics() {
        Table::new("t", &["a", "b"]).row(&["only-one".into()]);
    }
}
