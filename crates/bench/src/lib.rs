//! Experiment harness for regenerating every table and figure of the PBG
//! paper. Each binary under `src/bin/` reproduces one experiment; this
//! library holds the shared machinery: dataset scaling, PBG/baseline
//! training wrappers that collect the same metrics the paper reports, and
//! plain-text table/curve rendering.
//!
//! Absolute numbers differ from the paper (scaled datasets, different
//! hardware); each binary prints the paper's reported values alongside so
//! the *shape* — who wins, by what factor, where crossovers fall — can be
//! compared directly. See EXPERIMENTS.md.

pub mod harness;
pub mod report;

pub use harness::{train_pbg, wrap_embeddings, PbgRun};
pub use report::Table;
