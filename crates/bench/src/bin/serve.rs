//! Serving-tier load test: latency and throughput of `pbg-serve` over a
//! memory-mapped checkpoint.
//!
//! Measures what the serving tier promises: near-instant startup (mmap +
//! checksum scan, no heap copy) and stable request latency under
//! concurrent load. Reports cold vs. warm `open_mmap` time, then drives
//! `/topk` (full-shard scans through the blocked score-only kernel) and
//! `/score` (explicit candidate lists) at several client concurrency
//! levels, recording p50/p99 latency and sustained QPS.
//!
//! ```sh
//! cargo run --release -p pbg-bench --bin serve [-- --quick]
//! ```
//!
//! The committed `BENCH_serve.json` at the repo root is this binary's
//! output from a release run.

use pbg_bench::report::{save_json, ExpArgs, Table};
use pbg_core::config::PbgConfig;
use pbg_core::model::Model;
use pbg_core::storage::InMemoryStore;
use pbg_core::{checkpoint, model::MmapEmbeddings};
use pbg_graph::schema::{EntityTypeDef, GraphSchema, OperatorKind, RelationTypeDef};
use pbg_serve::{EmbedServer, ServeConfig};
use serde_json::json;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Instant;

fn percentile_ms(sorted_ns: &[u64], q: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * q).round() as usize;
    sorted_ns[idx] as f64 / 1e6
}

/// One blocking request; returns latency in nanoseconds.
fn request_ns(addr: SocketAddr, path: &str, body: &str) -> u64 {
    let started = Instant::now();
    let mut s = TcpStream::connect(addr).expect("connect");
    let req = format!(
        "POST {path} HTTP/1.0\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    s.write_all(req.as_bytes()).expect("write");
    let mut response = String::new();
    s.read_to_string(&mut response).expect("read");
    assert!(
        response.starts_with("HTTP/1.0 200"),
        "unexpected response: {}",
        response.lines().next().unwrap_or("")
    );
    started.elapsed().as_nanos() as u64
}

/// Drives `requests_per_client × concurrency` requests and returns
/// (sorted latencies ns, wall seconds).
fn drive(
    addr: SocketAddr,
    path: &'static str,
    bodies: Arc<Vec<String>>,
    concurrency: usize,
    requests_per_client: usize,
) -> (Vec<u64>, f64) {
    let started = Instant::now();
    let handles: Vec<_> = (0..concurrency)
        .map(|c| {
            let bodies = Arc::clone(&bodies);
            std::thread::spawn(move || {
                let mut lat = Vec::with_capacity(requests_per_client);
                for i in 0..requests_per_client {
                    let body = &bodies[(c * requests_per_client + i) % bodies.len()];
                    lat.push(request_ns(addr, path, body));
                }
                lat
            })
        })
        .collect();
    let mut all = Vec::new();
    for h in handles {
        all.extend(h.join().expect("client thread"));
    }
    let wall = started.elapsed().as_secs_f64();
    all.sort_unstable();
    (all, wall)
}

fn main() {
    let args = ExpArgs::parse();
    let entities: u32 = if args.quick { 5_000 } else { 50_000 };
    let dim = 64;
    let requests_per_client = if args.quick { 100 } else { 400 };
    let concurrencies = [1usize, 4, 8];

    let schema = GraphSchema::builder()
        .entity_type(EntityTypeDef::new("node", entities).with_partitions(4))
        .relation_type(
            RelationTypeDef::new("link", 0u32, 0u32).with_operator(OperatorKind::Translation),
        )
        .build()
        .unwrap();
    let config = PbgConfig::builder().dim(dim).build().unwrap();
    let model = Model::new(schema, config).unwrap();
    let store = InMemoryStore::new(model.store_layout());
    let snap = model.snapshot(&store);

    let dir = std::env::temp_dir().join(format!("pbg_bench_serve_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    checkpoint::save(&snap, &dir).expect("save checkpoint");

    // cold: first mapping of freshly written files (page cache may hold
    // them from the write, but page tables and the checksum scan are
    // cold); warm: everything resident
    let t = Instant::now();
    let cold: MmapEmbeddings = checkpoint::open_mmap(&dir).expect("open_mmap cold");
    let cold_open_ms = t.elapsed().as_secs_f64() * 1e3;
    let mapped_bytes = cold.mapped_bytes();
    drop(cold);
    let t = Instant::now();
    let mmap = Arc::new(checkpoint::open_mmap(&dir).expect("open_mmap warm"));
    let warm_open_ms = t.elapsed().as_secs_f64() * 1e3;
    println!(
        "model: {entities} entities x {dim} dims, {:.1} MiB mapped; open cold {cold_open_ms:.1} ms, warm {warm_open_ms:.1} ms",
        mapped_bytes as f64 / (1024.0 * 1024.0)
    );

    let serve_config = ServeConfig {
        rate_limit_rps: 0.0, // the bench is the hostile client
        ..ServeConfig::default()
    };
    let server = EmbedServer::serve(
        "127.0.0.1:0",
        Arc::clone(&mmap),
        pbg_telemetry::Registry::new(),
        serve_config,
    )
    .expect("start server");
    let addr = server.local_addr();

    // request bodies: rotating sources so per-row cache effects average out
    let topk_bodies: Vec<String> = (0..256u32)
        .map(|i| format!("{{\"src\": {}, \"rel\": 0, \"k\": 10}}", i % entities))
        .collect();
    let score_bodies: Vec<String> = (0..256u32)
        .map(|i| {
            let s = i % entities;
            let dsts: Vec<String> = (0..64u32).map(|d| (d % entities).to_string()).collect();
            format!(
                "{{\"src\": {s}, \"rel\": 0, \"dsts\": [{}]}}",
                dsts.join(", ")
            )
        })
        .collect();

    let mut table = Table::new(
        "pbg-serve load test",
        &["endpoint", "conc", "requests", "QPS", "p50 ms", "p99 ms"],
    );
    let mut load = Vec::new();
    for (path, bodies) in [
        ("/topk", Arc::new(topk_bodies)),
        ("/score", Arc::new(score_bodies)),
    ] {
        // one warmup pass faults the shard in before any timed arm
        drive(addr, path, Arc::clone(&bodies), 2, 25);
        for &conc in &concurrencies {
            let (lat, wall) = drive(addr, path, Arc::clone(&bodies), conc, requests_per_client);
            let qps = lat.len() as f64 / wall;
            let p50 = percentile_ms(&lat, 0.50);
            let p99 = percentile_ms(&lat, 0.99);
            table.row(&[
                path.to_string(),
                conc.to_string(),
                lat.len().to_string(),
                format!("{qps:.0}"),
                format!("{p50:.3}"),
                format!("{p99:.3}"),
            ]);
            load.push(json!({
                "endpoint": path,
                "concurrency": conc as u64,
                "requests": lat.len() as u64,
                "qps": qps,
                "p50_ms": p50,
                "p99_ms": p99,
            }));
        }
    }
    table.print();

    save_json(
        "serve",
        &json!({
            "bench": "serve",
            "model": json!({
                "entities": entities as u64,
                "dim": dim as u64,
                "mapped_bytes": mapped_bytes as u64,
            }),
            "mmap": json!({
                "cold_open_ms": cold_open_ms,
                "warm_open_ms": warm_open_ms,
            }),
            "load": load,
        }),
    );
    std::fs::remove_dir_all(&dir).ok();
}
