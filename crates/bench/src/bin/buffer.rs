//! Partition-buffer sweep: disk loads, swap-wait, and epoch wall time
//! as a function of buffer capacity B and bucket ordering, at
//! P ∈ {4, 8, 16}.
//!
//! The headline comparison is B=4 greedy-reuse (the BETA-style
//! buffer-aware order) against the B=2 inside-out baseline: with a
//! bigger buffer and a reuse-aware schedule, most buckets find their
//! partitions already resident and the per-epoch disk load count drops.
//! Results land in `BENCH_buffer.json` at the repo root (and under
//! `target/experiments/` like every other experiment).
//!
//! ```sh
//! cargo run --release -p pbg-bench --bin buffer [-- --quick]
//! ```

use pbg_bench::harness::train_pbg;
use pbg_bench::report::{save_json, ExpArgs, Table};
use pbg_core::config::PbgConfig;
use pbg_datagen::presets;
use pbg_graph::ordering::{load_count, BucketOrdering};
use pbg_graph::split::EdgeSplit;
use pbg_tensor::rng::Xoshiro256;
use serde_json::json;

fn main() {
    let args = ExpArgs::parse();
    let scale = args
        .scale
        .unwrap_or(if args.quick { 0.000004 } else { 0.00002 });
    let epochs = args.epochs.unwrap_or(2);
    let dataset = presets::freebase_like(scale, 71);
    let split = EdgeSplit::ninety_five_five(&dataset.edges, 71);
    println!(
        "dataset {}: {} entities, {} edges, {} epochs/arm",
        dataset.name,
        dataset.num_nodes(),
        dataset.edges.len(),
        epochs
    );

    let arms: &[(usize, BucketOrdering)] = &[
        (2, BucketOrdering::InsideOut),
        (4, BucketOrdering::InsideOut),
        (2, BucketOrdering::Hilbert),
        (4, BucketOrdering::Hilbert),
        (2, BucketOrdering::GreedyReuse),
        (4, BucketOrdering::GreedyReuse),
    ];
    let mut grids = Vec::new();
    for p in [4u32, 8, 16] {
        let mut table = Table::new(
            format!("Partition buffer sweep, P={p}"),
            &[
                "B",
                "ordering",
                "loads/epoch",
                "planned",
                "evict/epoch",
                "swap-wait s",
                "skipped KiB",
                "epoch s",
                "vs B=2 i-o",
            ],
        );
        let mut rows = Vec::new();
        let mut baseline_loads = None;
        for &(b, ordering) in arms {
            let config = PbgConfig::builder()
                .dim(16)
                .epochs(epochs)
                .batch_size(500)
                .chunk_size(50)
                .uniform_negatives(20)
                .threads(2)
                .bucket_ordering(ordering)
                .buffer_size(b)
                .seed(7)
                .build()
                .expect("valid config");
            let dir = std::env::temp_dir().join(format!(
                "pbg_bench_buffer_p{p}_b{b}_{}_{}",
                ordering.name(),
                std::process::id()
            ));
            let run = train_pbg(
                dataset.schema_with_partitions(p),
                &split.train,
                config,
                Some(dir.clone()),
            );
            std::fs::remove_dir_all(&dir).ok();

            let loads: usize = run.epochs.iter().map(|e| e.swap_ins).sum();
            let loads_per_epoch = loads as f64 / epochs as f64;
            let evictions: usize = run.epochs.iter().map(|e| e.evictions).sum();
            let swap_wait = run.total_swap_wait_seconds();
            let skipped: u64 = run.epochs.iter().map(|e| e.writeback_skipped_bytes).sum();
            let epoch_secs = run.seconds / epochs as f64;
            // the schedule's projected LRU loads, for cross-checking the
            // measured counter against the pure bucket sequence
            let mut rng = Xoshiro256::seed_from_u64(7);
            let planned = load_count(&ordering.order_with_buffer(p, p, b, &mut rng), b);

            if b == 2 && ordering == BucketOrdering::InsideOut {
                baseline_loads = Some(loads_per_epoch);
            }
            let reduction = baseline_loads
                .map(|base| 1.0 - loads_per_epoch / base)
                .unwrap_or(0.0);
            table.row(&[
                b.to_string(),
                ordering.name().to_string(),
                format!("{loads_per_epoch:.0}"),
                planned.to_string(),
                format!("{:.0}", evictions as f64 / epochs as f64),
                format!("{swap_wait:.3}"),
                format!("{:.0}", skipped as f64 / 1024.0),
                format!("{epoch_secs:.2}"),
                format!("{:+.0}%", -reduction * 100.0),
            ]);
            rows.push(json!({
                "buffer_size": b,
                "ordering": ordering.name(),
                "disk_loads_per_epoch": loads_per_epoch,
                "planned_lru_loads_per_epoch": planned,
                "evictions_per_epoch": evictions as f64 / epochs as f64,
                "swap_wait_seconds": swap_wait,
                "prefetch_hits": run.total_prefetch_hits(),
                "bytes_written_back": run.total_bytes_written_back(),
                "writeback_skipped_bytes": skipped,
                "epoch_seconds": epoch_secs,
                "load_reduction_vs_b2_inside_out": reduction,
            }));
        }
        table.print();
        grids.push(json!({"partitions": p, "arms": rows}));
    }

    // acceptance: at P ≥ 8, B=4 greedy-reuse must load ≥ 20% fewer
    // partitions per epoch than the B=2 inside-out baseline
    let mut points = Vec::new();
    let mut pass = true;
    for grid in &grids {
        let p = grid["partitions"].as_u64().unwrap();
        let arms = grid["arms"].as_array().unwrap();
        let find = |b: u64, name: &str| {
            arms.iter()
                .find(|a| {
                    a["buffer_size"].as_u64() == Some(b) && a["ordering"].as_str() == Some(name)
                })
                .map(|a| a["disk_loads_per_epoch"].as_f64().unwrap())
                .unwrap()
        };
        let base = find(2, "inside-out");
        let greedy = find(4, "greedy-reuse");
        let reduction = 1.0 - greedy / base;
        let ok = p < 8 || reduction >= 0.20;
        pass &= ok;
        println!(
            "P={p}: B=4 greedy-reuse loads {greedy:.0}/epoch vs B=2 \
             inside-out {base:.0}/epoch ({:.0}% fewer){}",
            reduction * 100.0,
            if p >= 8 {
                if ok {
                    " — meets the ≥20% bar"
                } else {
                    " — BELOW the ≥20% bar"
                }
            } else {
                ""
            }
        );
        points.push(json!({
            "partitions": p,
            "baseline_loads_per_epoch": base,
            "greedy_b4_loads_per_epoch": greedy,
            "load_reduction": reduction,
        }));
    }

    // the vendored json! macro takes flat literals only: compose the
    // nested report from pre-built values
    let dataset_info = json!({
        "name": dataset.name.clone(),
        "nodes": dataset.num_nodes(),
        "edges": dataset.edges.len(),
        "epochs": epochs,
    });
    let acceptance = json!({
        "criterion": "≥20% fewer disk partition loads per epoch at P≥8, \
                      B=4 greedy-reuse vs B=2 inside-out",
        "pass": pass,
        "points": points,
    });
    let report = json!({
        "bench": "buffer",
        "dataset": dataset_info,
        "grids": grids,
        "acceptance": acceptance,
    });
    save_json("buffer", &report);
    // the canonical copy lives at the repo root, next to the other
    // BENCH_*.json files
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_buffer.json");
    match serde_json::to_string_pretty(&report) {
        Ok(text) => match std::fs::write(&root, text + "\n") {
            Ok(()) => println!("(saved {})", root.display()),
            Err(e) => eprintln!("warning: could not write {}: {e}", root.display()),
        },
        Err(e) => eprintln!("warning: could not serialize report: {e}"),
    }
    assert!(pass, "acceptance criterion not met");
}
