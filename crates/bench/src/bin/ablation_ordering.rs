//! Ablation for Figure 1 (right)'s claim: the inside-out bucket ordering
//! "produces better embeddings than other alternatives (or random)", and
//! the stratified sub-epoch scheme of §4.1 footnote 3.
//!
//! Compares final MRR after equal epochs for inside-out, row-major,
//! chained, and random orders (random violates the alignment invariant),
//! plus disk-swap counts per ordering, plus bucket_passes ∈ {1, 2, 4}.
//!
//! ```sh
//! cargo run --release -p pbg-bench --bin ablation_ordering [-- --quick]
//! ```

use pbg_bench::harness::{link_prediction, train_pbg};
use pbg_bench::report::{save_json, ExpArgs, Table};
use pbg_core::config::PbgConfig;
use pbg_core::eval::CandidateSampling;
use pbg_datagen::presets;
use pbg_graph::ordering::{invariant_violations, swap_count, BucketOrdering};
use pbg_graph::split::EdgeSplit;
use pbg_tensor::rng::Xoshiro256;
use serde_json::json;

fn main() {
    let args = ExpArgs::parse();
    let scale = args
        .scale
        .unwrap_or(if args.quick { 0.000004 } else { 0.00004 });
    let epochs = args.epochs.unwrap_or(if args.quick { 4 } else { 8 });
    let p = 8u32;
    let dataset = presets::freebase_like(scale, 103);
    let split = EdgeSplit::ninety_five_five(&dataset.edges, 103);
    // candidate pool scaled with node count (see table3/table4)
    let candidates = ((dataset.num_nodes() as usize) / 5).clamp(50, 1000);
    println!(
        "dataset {}: {} entities, {} edges, P={p}",
        dataset.name,
        dataset.num_nodes(),
        dataset.edges.len()
    );

    let mut table = Table::new(
        "Ordering ablation (Figure 1 claim)",
        &[
            "ordering",
            "MRR",
            "Hits@10",
            "swaps/epoch",
            "invariant violations",
        ],
    );
    let mut results = Vec::new();
    for ordering in [
        BucketOrdering::InsideOut,
        BucketOrdering::RowMajor,
        BucketOrdering::Chained,
        BucketOrdering::Random,
    ] {
        let mut mrr_sum = 0.0;
        let mut hits_sum = 0.0;
        let seeds: &[u64] = if args.quick { &[1] } else { &[1, 2, 3] };
        for &seed in seeds {
            let config = PbgConfig::builder()
                .dim(64)
                .epochs(epochs)
                .batch_size(1000)
                .chunk_size(50)
                .uniform_negatives(50)
                .threads(4)
                .bucket_ordering(ordering)
                .seed(seed)
                .build()
                .expect("valid config");
            let run = train_pbg(
                dataset.schema_with_partitions(p),
                &split.train,
                config,
                None,
            );
            let m = link_prediction(
                &run.model,
                &split,
                candidates,
                CandidateSampling::Prevalence,
            );
            mrr_sum += m.mrr;
            hits_sum += m.hits_at_10;
        }
        let mrr = mrr_sum / seeds.len() as f64;
        let hits = hits_sum / seeds.len() as f64;
        let mut rng = Xoshiro256::seed_from_u64(0);
        let order = ordering.order(p, p, &mut rng);
        table.row(&[
            format!("{ordering:?}"),
            format!("{mrr:.3}"),
            format!("{hits:.3}"),
            swap_count(&order).to_string(),
            invariant_violations(&order).to_string(),
        ]);
        results.push(json!({
            "ordering": format!("{ordering:?}"), "mrr": mrr, "hits_at_10": hits,
            "swaps": swap_count(&order),
            "violations": invariant_violations(&order),
        }));
    }
    table.print();
    println!(
        "paper shape: inside-out minimizes swaps with no invariant \
         violations and matches or beats the alternatives; random violates \
         the invariant and trails."
    );

    // stratified sub-epoch ablation (§4.1 footnote 3)
    let mut strat = Table::new(
        "Stratified sub-epoch ablation (footnote 3)",
        &["bucket_passes", "MRR", "Hits@10"],
    );
    let mut strat_results = Vec::new();
    for passes in [1usize, 2, 4] {
        let config = PbgConfig::builder()
            .dim(64)
            .epochs(epochs)
            .batch_size(1000)
            .chunk_size(50)
            .uniform_negatives(50)
            .threads(4)
            .bucket_passes(passes)
            .build()
            .expect("valid config");
        let run = train_pbg(
            dataset.schema_with_partitions(p),
            &split.train,
            config,
            None,
        );
        let m = link_prediction(
            &run.model,
            &split,
            candidates,
            CandidateSampling::Prevalence,
        );
        strat.row(&[
            passes.to_string(),
            format!("{:.3}", m.mrr),
            format!("{:.3}", m.hits_at_10),
        ]);
        strat_results.push(json!({
            "bucket_passes": passes, "mrr": m.mrr, "hits_at_10": m.hits_at_10,
        }));
    }
    strat.print();
    println!(
        "paper claim: switching between buckets more frequently can \
         ameliorate the slower convergence of grouped sampling."
    );
    save_json(
        "ablation_ordering",
        &json!({"orderings": results, "stratified": strat_results}),
    );
}
