//! Table 1 (left): LiveJournal link prediction — PBG vs DeepWalk vs MILE.
//!
//! Paper numbers (4.85M nodes / 69M edges, d=1024-ish settings):
//!
//! | method            | MRR   | MR    | Hits@10 | Memory  |
//! |-------------------|-------|-------|---------|---------|
//! | DeepWalk          | 0.691 | 234.6 | 0.842   | 61.23 GB|
//! | MILE (1 level)    | 0.629 | 174.4 | 0.785   | 60.88 GB|
//! | MILE (5 levels)   | 0.505 | 462.8 | 0.632   | 22.78 GB|
//! | PBG (1 partition) | 0.749 | 245.9 | 0.857   | 20.88 GB|
//!
//! Shape to reproduce: PBG best MRR/Hits@10 at the lowest memory;
//! MILE quality degrades as levels increase while memory falls.
//!
//! ```sh
//! cargo run --release -p pbg-bench --bin table1_livejournal [-- --scale 0.0005 --quick]
//! ```

use pbg_baselines::deepwalk::{DeepWalk, DeepWalkConfig};
use pbg_baselines::mile::{Mile, MileConfig};
use pbg_baselines::sgns::SgnsConfig;
use pbg_baselines::walks::WalkConfig;
use pbg_bench::harness::{link_prediction, train_pbg, wrap_embeddings};
use pbg_bench::report::{save_json, ExpArgs, Table};
use pbg_core::config::PbgConfig;
use pbg_core::eval::CandidateSampling;
use pbg_core::stats::format_bytes;
use pbg_datagen::presets;
use pbg_graph::split::EdgeSplit;
use serde_json::json;

fn main() {
    let args = ExpArgs::parse();
    let scale = args
        .scale
        .unwrap_or(if args.quick { 0.0001 } else { 0.0005 });
    let epochs = args.epochs.unwrap_or(if args.quick { 3 } else { 8 });
    let dataset = presets::livejournal_like(scale, 17);
    let n = dataset.num_nodes() as usize;
    println!(
        "dataset {}: {} nodes, {} edges (paper: 4,847,571 / 68,993,773)",
        dataset.name,
        n,
        dataset.edges.len()
    );
    let split = EdgeSplit::seventy_five_twenty_five(&dataset.edges, 17);
    let dim = 64;
    let candidates = 200;

    let mut table = Table::new(
        "Table 1 (left) — LiveJournal link prediction",
        &["method", "MRR", "MR", "Hits@10", "Memory", "train s"],
    );
    let mut results = Vec::new();
    let push = |table: &mut Table,
                results: &mut Vec<serde_json::Value>,
                name: &str,
                m: pbg_eval::ranking::RankingMetrics,
                bytes: usize,
                secs: f64| {
        table.row(&[
            name.into(),
            format!("{:.3}", m.mrr),
            format!("{:.1}", m.mr),
            format!("{:.3}", m.hits_at_10),
            format_bytes(bytes),
            format!("{secs:.1}"),
        ]);
        results.push(json!({
            "method": name, "mrr": m.mrr, "mr": m.mr,
            "hits_at_10": m.hits_at_10, "memory_bytes": bytes, "seconds": secs,
        }));
    };

    // DeepWalk
    let dw_config = DeepWalkConfig {
        walks: WalkConfig {
            walks_per_node: 10,
            walk_length: 40,
        },
        sgns: SgnsConfig {
            dim,
            epochs: epochs.min(5),
            threads: 4,
            ..Default::default()
        },
    };
    let dw = DeepWalk::new(dw_config.clone()).embed(&split.train, n);
    let m = link_prediction(
        &wrap_embeddings(dw.embeddings.clone(), dataset.schema.clone()),
        &split,
        candidates,
        CandidateSampling::Uniform,
    );
    push(
        &mut table,
        &mut results,
        "DeepWalk",
        m,
        dw.peak_bytes,
        dw.seconds,
    );

    // MILE at 1 and 5 levels
    for levels in [1usize, 5] {
        let mile = Mile::new(MileConfig {
            levels,
            base: dw_config.clone(),
            ..Default::default()
        })
        .embed(&split.train, n);
        let m = link_prediction(
            &wrap_embeddings(mile.embeddings.clone(), dataset.schema.clone()),
            &split,
            candidates,
            CandidateSampling::Uniform,
        );
        push(
            &mut table,
            &mut results,
            &format!("MILE ({levels} level{})", if levels > 1 { "s" } else { "" }),
            m,
            mile.peak_bytes,
            mile.seconds,
        );
    }

    // PBG, 1 partition — grid-search winner (the paper reports "the best
    // results from a grid search" per dataset; here softmax loss with 100
    // uniform negatives wins)
    let config = PbgConfig::builder()
        .dim(dim)
        .epochs(2 * epochs)
        .batch_size(1000)
        .chunk_size(50)
        .uniform_negatives(100)
        .loss(pbg_core::config::LossKind::Softmax)
        .threads(4)
        .build()
        .expect("valid config");
    let run = train_pbg(dataset.schema.clone(), &split.train, config, None);
    let m = link_prediction(&run.model, &split, candidates, CandidateSampling::Uniform);
    push(
        &mut table,
        &mut results,
        "PBG (1 partition)",
        m,
        run.peak_bytes,
        run.seconds,
    );

    table.print();
    println!(
        "paper shape: PBG highest MRR & Hits@10 at lowest memory; DeepWalk \
         pays for its walk corpus; MILE(5) trades quality for memory."
    );
    save_json("table1_livejournal", &results);
}
