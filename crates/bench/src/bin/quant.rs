//! Quantized-storage sweep: checkpoint bytes, wire bytes, and ranking
//! quality at each storage precision (f32 / f16 / int8).
//!
//! Trains one model, writes it at every precision, and reports:
//!
//! - embedding shard bytes on disk per precision (and the ratio to f32)
//! - predicted wire bytes for a full checkout+checkin round trip of the
//!   largest partition, from the `wirecost` closed forms (which the
//!   loopback reconciliation tests pin to measured socket bytes)
//! - link-prediction MRR / Hits@10 of the model reloaded from each
//!   checkpoint, against the in-memory f32 baseline
//!
//! Self-asserts the tentpole's size claim — f16 checkpoint and wire
//! bytes are at most 0.55x their f32 size — so CI fails if compression
//! regresses. The committed `BENCH_quant.json` at the repo root is this
//! binary's output from a release run.
//!
//! ```sh
//! cargo run --release -p pbg-bench --bin quant [-- --quick]
//! ```

use pbg_bench::harness::{link_prediction, train_pbg};
use pbg_bench::report::{save_json, ExpArgs, Table};
use pbg_core::checkpoint::{self, TrainProgress};
use pbg_core::config::PbgConfig;
use pbg_core::eval::CandidateSampling;
use pbg_datagen::presets;
use pbg_distsim::netmodel::wirecost;
use pbg_graph::split::EdgeSplit;
use pbg_tensor::Precision;
use serde_json::json;

/// Total size of the embedding shards under a checkpoint dir.
fn shard_bytes(dir: &std::path::Path) -> u64 {
    std::fs::read_dir(dir)
        .expect("checkpoint dir")
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().starts_with("embeddings_"))
        .map(|e| e.metadata().expect("metadata").len())
        .sum()
}

fn main() {
    let args = ExpArgs::parse();
    let scale = args.scale.unwrap_or(if args.quick { 0.02 } else { 0.05 });
    let epochs = args.epochs.unwrap_or(if args.quick { 2 } else { 4 });
    let dim = 32usize;

    let dataset = presets::fb15k_like(scale, 11);
    let split = EdgeSplit::new(&dataset.edges, 0.05, 0.05, 11);
    let config = PbgConfig::builder()
        .dim(dim)
        .epochs(epochs)
        .batch_size(500)
        .chunk_size(50)
        .uniform_negatives(50)
        .threads(2)
        .build()
        .unwrap();
    println!(
        "dataset {}: {} entities, {} edges, dim {dim}, {epochs} epochs",
        dataset.name,
        dataset.num_nodes(),
        dataset.edges.len()
    );

    let run = train_pbg(dataset.schema.clone(), &split.train, config, None);
    let base = link_prediction(&run.model, &split, 100, CandidateSampling::Prevalence);
    println!(
        "f32 in-memory baseline: MRR {:.4}, Hits@10 {:.4}",
        base.mrr, base.hits_at_10
    );

    // wire cost of one full checkout+checkin of every embedding float —
    // the closed forms are reconciled byte-for-byte against loopback
    // sockets in crates/net/tests/netmodel_recon.rs
    let emb_floats: usize = run
        .model
        .embeddings
        .iter()
        .map(|m| m.rows() * m.cols())
        .sum();
    let acc_floats: usize = run.model.embeddings.iter().map(|m| m.rows()).sum();

    let mut table = Table::new(
        "Quantized storage sweep",
        &[
            "precision",
            "ckpt bytes",
            "ckpt ratio",
            "wire bytes",
            "wire ratio",
            "MRR",
            "Hits@10",
        ],
    );
    let mut arms = Vec::new();
    let mut sizes = std::collections::HashMap::new();
    for precision in [Precision::F32, Precision::F16, Precision::Int8] {
        let dir = std::env::temp_dir().join(format!(
            "pbg_bench_quant_{precision}_{}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        checkpoint::save_with_precision(&run.model, &dir, TrainProgress::default(), precision)
            .expect("save checkpoint");
        let ckpt = shard_bytes(&dir);
        let reloaded = checkpoint::load(&dir).expect("reload checkpoint");
        std::fs::remove_dir_all(&dir).ok();
        let metrics = link_prediction(&reloaded, &split, 100, CandidateSampling::Prevalence);

        let wire = wirecost::checkout_rpc_bytes_q(emb_floats, acc_floats, dim, precision)
            + wirecost::checkin_rpc_bytes_q(emb_floats, acc_floats, dim, precision);
        let (f32_ckpt, f32_wire) = *sizes.get(&Precision::F32.tag()).unwrap_or(&(ckpt, wire));
        sizes.insert(precision.tag(), (ckpt, wire));
        let ckpt_ratio = ckpt as f64 / f32_ckpt as f64;
        let wire_ratio = wire as f64 / f32_wire as f64;
        table.row(&[
            precision.to_string(),
            ckpt.to_string(),
            format!("{ckpt_ratio:.3}"),
            wire.to_string(),
            format!("{wire_ratio:.3}"),
            format!("{:.4}", metrics.mrr),
            format!("{:.4}", metrics.hits_at_10),
        ]);
        arms.push(json!({
            "precision": precision.to_string(),
            "checkpoint_bytes": ckpt,
            "checkpoint_ratio_vs_f32": ckpt_ratio,
            "wire_roundtrip_bytes": wire as u64,
            "wire_ratio_vs_f32": wire_ratio,
            "mrr": metrics.mrr,
            "hits_at_10": metrics.hits_at_10,
            "mrr_delta_vs_f32_memory": metrics.mrr - base.mrr,
        }));
    }
    table.print();

    // tentpole self-assert: f16 storage is at most 0.55x f32, on disk
    // and on the wire, and quality stayed inside the noise band
    let (f32_ckpt, f32_wire) = sizes[&Precision::F32.tag()];
    let (f16_ckpt, f16_wire) = sizes[&Precision::F16.tag()];
    assert!(
        f16_ckpt * 100 <= f32_ckpt * 55,
        "f16 checkpoint {f16_ckpt}B exceeds 0.55x f32 {f32_ckpt}B"
    );
    assert!(
        f16_wire * 100 <= f32_wire * 55,
        "f16 wire {f16_wire}B exceeds 0.55x f32 {f32_wire}B"
    );
    let f16_mrr = arms[1]["mrr"].as_f64().unwrap();
    assert!(
        (f16_mrr - base.mrr).abs() <= 0.02,
        "f16 MRR {f16_mrr} drifted from f32 {}",
        base.mrr
    );
    println!(
        "self-assert ok: f16 ckpt {:.3}x, wire {:.3}x, |dMRR| {:.4}",
        f16_ckpt as f64 / f32_ckpt as f64,
        f16_wire as f64 / f32_wire as f64,
        (f16_mrr - base.mrr).abs()
    );

    save_json(
        "quant",
        &json!({
            "bench": "quant",
            "dataset": json!({
                "name": dataset.name,
                "entities": dataset.num_nodes() as u64,
                "edges": dataset.edges.len() as u64,
                "dim": dim as u64,
                "epochs": epochs as u64,
            }),
            "baseline": json!({
                "mrr": base.mrr,
                "hits_at_10": base.hits_at_10,
            }),
            "arms": arms,
        }),
    );
}
