//! Figure 5: LiveJournal learning curves — test MRR vs wall-clock time
//! for PBG, DeepWalk, and MILE.
//!
//! Paper shape: PBG reaches higher MRR in far less time; DeepWalk's
//! curve rises slowly (the paper limits its walks to fit the plot); MILE
//! runs appear as cheaper-but-lower points.
//!
//! ```sh
//! cargo run --release -p pbg-bench --bin fig5_lj_curve [-- --quick]
//! ```

use pbg_baselines::deepwalk::{DeepWalk, DeepWalkConfig};
use pbg_baselines::mile::{Mile, MileConfig};
use pbg_baselines::sgns::SgnsConfig;
use pbg_baselines::walks::WalkConfig;
use pbg_bench::harness::{link_prediction, train_pbg_with_curve, wrap_embeddings};
use pbg_bench::report::{save_text, ExpArgs};
use pbg_core::config::PbgConfig;
use pbg_core::eval::CandidateSampling;
use pbg_datagen::presets;
use pbg_eval::curve::LearningCurve;
use pbg_graph::split::EdgeSplit;

fn main() {
    let args = ExpArgs::parse();
    let scale = args
        .scale
        .unwrap_or(if args.quick { 0.0001 } else { 0.0003 });
    let epochs = args.epochs.unwrap_or(if args.quick { 4 } else { 10 });
    let dataset = presets::livejournal_like(scale, 71);
    let n = dataset.num_nodes() as usize;
    let split = EdgeSplit::seventy_five_twenty_five(&dataset.edges, 71);
    println!(
        "dataset {}: {} nodes, {} edges; recording MRR after each epoch",
        dataset.name,
        n,
        dataset.edges.len()
    );
    let dim = 64;
    let candidates = 200;

    // PBG curve
    let mut pbg_curve = LearningCurve::start("PBG");
    let config = PbgConfig::builder()
        .dim(dim)
        .epochs(epochs)
        .batch_size(1000)
        .chunk_size(50)
        .uniform_negatives(100)
        .loss(pbg_core::config::LossKind::Softmax)
        .threads(4)
        .build()
        .expect("valid config");
    train_pbg_with_curve(
        dataset.schema.clone(),
        &split.train,
        config,
        |epoch, secs, snap| {
            let m = link_prediction(snap, &split, candidates, CandidateSampling::Uniform);
            pbg_curve.record_at(secs, epoch, m.mrr);
        },
    );

    // DeepWalk curve (per SGNS epoch)
    let mut dw_curve = LearningCurve::start("DeepWalk");
    let dw_start = std::time::Instant::now();
    DeepWalk::new(DeepWalkConfig {
        walks: WalkConfig {
            walks_per_node: 10,
            walk_length: 40,
        },
        sgns: SgnsConfig {
            dim,
            epochs,
            threads: 4,
            ..Default::default()
        },
    })
    .embed_with(&split.train, n, |epoch, emb| {
        let m = link_prediction(
            &wrap_embeddings(emb.clone(), dataset.schema.clone()),
            &split,
            candidates,
            CandidateSampling::Uniform,
        );
        dw_curve.record_at(dw_start.elapsed().as_secs_f64(), epoch, m.mrr);
        true
    });

    // MILE: one point per level count (coarsen + embed + refine is a
    // single run, as in the paper's plotted points)
    let mut mile_curve = LearningCurve::start("MILE");
    for (i, levels) in [1usize, 3].into_iter().enumerate() {
        let result = Mile::new(MileConfig {
            levels,
            base: DeepWalkConfig {
                walks: WalkConfig {
                    walks_per_node: 10,
                    walk_length: 40,
                },
                sgns: SgnsConfig {
                    dim,
                    epochs: epochs.min(5),
                    threads: 4,
                    ..Default::default()
                },
            },
            ..Default::default()
        })
        .embed(&split.train, n);
        let m = link_prediction(
            &wrap_embeddings(result.embeddings, dataset.schema.clone()),
            &split,
            candidates,
            CandidateSampling::Uniform,
        );
        mile_curve.record_at(result.seconds, i + 1, m.mrr);
    }

    let mut out = String::new();
    for curve in [&pbg_curve, &dw_curve, &mile_curve] {
        out.push_str(&curve.by_time_tsv());
        println!("{}", curve.by_time_tsv());
        if let Some(best) = curve.best() {
            println!("{}: best MRR {best:.3}\n", curve.name());
        }
    }
    println!(
        "paper shape: PBG's curve dominates — higher MRR, much earlier; \
         DeepWalk needs far more time per unit of quality; MILE points \
         trade quality for speed."
    );
    save_text("fig5_lj_curve.tsv", &out);
}
