//! Figure 6: Freebase learning curves by machine count — MRR vs epoch
//! (top) and vs wall-clock time (bottom) for M ∈ {1, 2, 4, 8}, P = 2M.
//!
//! Paper shape: per-epoch curves coincide (distribution does not change
//! what an epoch learns, modulo a small M=8 gap); per-time curves fan out
//! — more machines reach the same MRR sooner.
//!
//! ```sh
//! cargo run --release -p pbg-bench --bin fig6_freebase_curve [-- --quick]
//! ```

use pbg_bench::harness::link_prediction;
use pbg_bench::report::{save_text, ExpArgs};
use pbg_core::config::PbgConfig;
use pbg_core::eval::CandidateSampling;
use pbg_datagen::presets;
use pbg_distsim::cluster::{ClusterConfig, ClusterTrainer};
use pbg_eval::curve::LearningCurve;
use pbg_graph::split::EdgeSplit;

fn main() {
    let args = ExpArgs::parse();
    let scale = args
        .scale
        .unwrap_or(if args.quick { 0.000004 } else { 0.00004 });
    let epochs = args.epochs.unwrap_or(if args.quick { 4 } else { 8 });
    let dataset = presets::freebase_like(scale, 83);
    let split = EdgeSplit::ninety_five_five(&dataset.edges, 83);
    // candidate pool scaled with node count (see table3/table4)
    let candidates = ((dataset.num_nodes() as usize) / 5).clamp(50, 1000);
    println!(
        "dataset {}: {} entities, {} edges",
        dataset.name,
        dataset.num_nodes(),
        dataset.edges.len()
    );
    let machine_counts: &[usize] = if args.quick { &[1, 2] } else { &[1, 2, 4, 8] };
    let config = PbgConfig::builder()
        .dim(64)
        .epochs(epochs)
        .batch_size(1000)
        .chunk_size(50)
        .uniform_negatives(50)
        .threads(2)
        .build()
        .expect("valid config");

    let mut out = String::new();
    for &machines in machine_counts {
        let p = (2 * machines) as u32;
        let schema = dataset.schema_with_partitions(p.max(1));
        let mut cluster = ClusterTrainer::new(
            schema,
            &split.train,
            config.clone(),
            ClusterConfig {
                machines,
                ..Default::default()
            },
        )
        .expect("valid cluster");
        let mut curve = LearningCurve::start(format!("freebase M={machines}"));
        let start = std::time::Instant::now();
        cluster.train_with(|stats, trainer| {
            let m = link_prediction(
                &trainer.snapshot(),
                &split,
                candidates,
                CandidateSampling::Prevalence,
            );
            curve.record_at(start.elapsed().as_secs_f64(), stats.epoch, m.mrr);
            true
        });
        out.push_str(&curve.by_epoch_tsv());
        out.push_str(&curve.by_time_tsv());
        println!("{}", curve.by_epoch_tsv());
        println!("{}", curve.by_time_tsv());
    }
    println!(
        "paper shape: MRR-vs-epoch curves overlap across machine counts; \
         MRR-vs-time curves shift left as machines increase."
    );
    save_text("fig6_freebase_curve.tsv", &out);
}
