//! Kernel microbenchmark: the §4.3 negative-scoring hot path.
//!
//! Sweeps the shapes batched negative sampling actually produces — chunk
//! size `C` positives scored against `N = C + 50` candidates at embedding
//! dimension `d` — and times three arms per shape:
//!
//! - `naive`: the sequential triple-loop `reference` kernels (the oracle
//!   the differential harness diffs against, and what the matmuls looked
//!   like before blocking);
//! - `blocked`: the cache-blocked, panel-packed kernels (packing cost
//!   included, as `Matrix::matmul_nt` pays it per call);
//! - `fused`: the [`ScoreGrad`] context — pack once, forward scores plus
//!   the one-pass dual-gradient backward.
//!
//! Forward flops are `2·C·N·d`; the fused arm also does the backward
//! (`4·C·N·d` more) and is normalized accordingly, so all GF/s numbers
//! are comparable. Results go to `target/experiments/kernels.json` and —
//! so the repo carries a committed snapshot — `BENCH_kernels.json` at the
//! crate workspace root.
//!
//! ```sh
//! cargo run --release -p pbg-bench --bin kernels [-- --quick]
//! ```

use std::time::Instant;

use pbg_bench::report::{save_json, ExpArgs, Table};
use pbg_tensor::kernels::{self, dispatch, reference, ScoreGrad, Variant};
use pbg_tensor::matrix::Matrix;
use pbg_tensor::rng::Xoshiro256;
use serde_json::json;

/// Times `f` (called with an iteration count) over `iters` iterations,
/// best of `reps` runs; returns seconds per iteration.
fn best_time(reps: usize, iters: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(start.elapsed().as_secs_f64() / iters as f64);
    }
    best
}

fn random_matrix(rows: usize, cols: usize, rng: &mut Xoshiro256) -> Matrix {
    let mut m = Matrix::zeros(rows, cols);
    m.fill_with(|_, _| rng.gen_normal());
    m
}

fn main() {
    let args = ExpArgs::parse();
    // Shapes: chunk sizes from the paper's training config (C = 50) and a
    // large eval-style batch (C = 1024), at small / paper / large dims.
    let shapes: Vec<(usize, usize)> = if args.quick {
        vec![(64, 50)]
    } else {
        let mut v = Vec::new();
        for &d in &[64usize, 128, 400] {
            for &c in &[50usize, 1024] {
                v.push((d, c));
            }
        }
        v
    };
    let (reps, budget_flops) = if args.quick { (3, 5e7) } else { (5, 2e9) };

    let mut table = Table::new(
        "Kernel bench — C×N scores at dim d (GF/s, forward unless noted)",
        &[
            "d",
            "C",
            "N",
            "naive",
            "blocked",
            "fused fwd+bwd",
            "blocked/naive",
            "fused/naive",
        ],
    );
    let mut records = Vec::new();
    let mut rng = Xoshiro256::seed_from_u64(42);

    for &(d, c) in &shapes {
        let n = c + 50;
        let pos = random_matrix(c, d, &mut rng);
        let cand = random_matrix(n, d, &mut rng);
        // Upstream gradient with the sparsity masking actually produces:
        // roughly a third of the entries are exact zeros.
        let mut grad = random_matrix(c, n, &mut rng);
        for i in 0..c {
            for j in 0..n {
                if rng.gen_index(3) == 0 {
                    grad.row_mut(i)[j] = 0.0;
                }
            }
        }

        let fwd_flops = 2.0 * c as f64 * n as f64 * d as f64;
        let bwd_flops = 2.0 * fwd_flops;
        let iters = ((budget_flops / fwd_flops) as usize).clamp(3, 20_000);

        // Arm 1: naive forward (the reference oracle's triple loop).
        let mut out = vec![0.0f32; c * n];
        let t_naive = best_time(reps, iters, || {
            reference::matmul_nt(c, n, d, pos.as_slice(), d, cand.as_slice(), d, &mut out, n);
        });

        // Arm 2: blocked forward, packing per call like Matrix::matmul_nt.
        // Goes through the runtime dispatcher (PBG_KERNEL / best CPU path).
        let t_blocked = best_time(reps, iters, || {
            kernels::matmul_nt(c, n, d, pos.as_slice(), d, cand.as_slice(), d, &mut out, n);
        });

        // Arm 2b: the same blocked forward pinned to each microkernel
        // variant this CPU supports, so the dispatch win is visible in
        // one run instead of needing three PBG_KERNEL invocations.
        let mut variant_gfs: Vec<(String, f64)> = Vec::new();
        for v in Variant::supported_variants() {
            let t = best_time(reps, iters, || {
                kernels::matmul_nt_with(
                    v,
                    c,
                    n,
                    d,
                    pos.as_slice(),
                    d,
                    cand.as_slice(),
                    d,
                    &mut out,
                    n,
                );
            });
            let fwd = 2.0 * c as f64 * n as f64 * d as f64;
            variant_gfs.push((v.name().to_string(), fwd / t / 1e9));
        }

        // Arm 3: fused — pack once, forward + one-pass dual backward.
        let t_fused = best_time(reps, iters.div_ceil(3), || {
            let fused = ScoreGrad::new(&cand);
            let scores = fused.scores(&pos);
            let (ga, gb) = fused.backward(&pos, &grad);
            std::hint::black_box((scores, ga, gb));
        });

        // Arm 4: the same forward + backward work through the naive
        // kernels, for the fused speedup denominator.
        let mut ga = vec![0.0f32; c * d];
        let mut gb = vec![0.0f32; n * d];
        let t_naive_fb = best_time(reps, iters.div_ceil(3).min(50), || {
            reference::matmul_nt(c, n, d, pos.as_slice(), d, cand.as_slice(), d, &mut out, n);
            reference::score_grads(
                c,
                n,
                d,
                pos.as_slice(),
                d,
                cand.as_slice(),
                d,
                grad.as_slice(),
                n,
                &mut ga,
                d,
                &mut gb,
                d,
            );
        });

        let gfs = |flops: f64, secs: f64| flops / secs / 1e9;
        let naive_gf = gfs(fwd_flops, t_naive);
        let blocked_gf = gfs(fwd_flops, t_blocked);
        let fused_gf = gfs(fwd_flops + bwd_flops, t_fused);
        let naive_fb_gf = gfs(fwd_flops + bwd_flops, t_naive_fb);
        let blocked_vs_naive = t_naive / t_blocked;
        let fused_vs_naive = t_naive_fb / t_fused;

        table.row(&[
            d.to_string(),
            c.to_string(),
            n.to_string(),
            format!("{naive_gf:.2}"),
            format!("{blocked_gf:.2}"),
            format!("{fused_gf:.2}"),
            format!("{blocked_vs_naive:.2}x"),
            format!("{fused_vs_naive:.2}x"),
        ]);
        let variants_value = serde_json::Value::Map(
            variant_gfs
                .iter()
                .map(|(name, gf)| (name.clone(), serde_json::Value::F64(*gf)))
                .collect(),
        );
        let gflops = json!({
            "naive_nt": naive_gf,
            "blocked_nt": blocked_gf,
            "blocked_nt_variants": variants_value,
            "fused_fwd_bwd": fused_gf,
            "naive_fwd_bwd": naive_fb_gf,
        });
        records.push(json!({
            "d": d,
            "c": c,
            "n": n,
            "gflops": gflops,
            "speedup_blocked_vs_naive": blocked_vs_naive,
            "speedup_fused_vs_naive": fused_vs_naive,
        }));
        println!(
            "d={d:<4} C={c:<5} N={n:<5} naive {naive_gf:6.2} GF/s  \
             blocked {blocked_gf:6.2} GF/s ({blocked_vs_naive:.2}x)  \
             fused fwd+bwd {fused_gf:6.2} GF/s ({fused_vs_naive:.2}x)"
        );
        let per_variant: Vec<String> = variant_gfs
            .iter()
            .map(|(name, gf)| format!("{name} {gf:.2}"))
            .collect();
        println!(
            "                      blocked by variant: {}",
            per_variant.join("  ")
        );
    }

    table.print();
    let result = json!({
        "bench": "kernels",
        "quick": args.quick,
        "dispatch_active": dispatch::active().name(),
        "shapes": records,
    });
    save_json("kernels", &result);
    // Committed snapshot at the workspace root (BENCH_kernels.json).
    match serde_json::to_string_pretty(&result) {
        Ok(text) => {
            if let Err(e) = std::fs::write("BENCH_kernels.json", text) {
                eprintln!("warning: could not write BENCH_kernels.json: {e}");
            } else {
                println!("(saved BENCH_kernels.json)");
            }
        }
        Err(e) => eprintln!("warning: could not serialize kernel bench: {e}"),
    }
}
