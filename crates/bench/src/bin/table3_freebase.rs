//! Table 3: full-Freebase partition and machine sweeps.
//!
//! Paper numbers (121M nodes / 2.4B train edges, d=100, 10 epochs):
//!
//! Left (1 machine):                Right (distributed, P = 2M):
//! | P  | MRR   | H@10 | h   | GB  |  | M | P  | MRR   | H@10 | h    | GB  |
//! |----|-------|------|-----|-----|  |---|----|-------|------|------|-----|
//! | 1  | 0.170 | .285 | 30  | 59.6|  | 1 | 1  | 0.170 | .285 | 30   | 59.6|
//! | 4  | 0.174 | .286 | 31  | 30.4|  | 2 | 4  | 0.170 | .280 | 23   | 64.4|
//! | 8  | 0.172 | .288 | 33  | 15.5|  | 4 | 8  | 0.171 | .285 | 13   | 30.5|
//! | 16 | 0.174 | .290 | 40  | 6.8 |  | 8 | 16 | 0.163 | .276 | 7.7  | 15.0|
//!
//! Shape: quality flat in P (small dip at M=8); memory ~1/P; time mildly
//! increasing with P on one machine, strongly decreasing with machines.
//!
//! Quality/memory come from real (scaled) runs; the hour columns come
//! from the discrete-event projector calibrated with the measured
//! edges/second.
//!
//! ```sh
//! cargo run --release -p pbg-bench --bin table3_freebase [-- --distributed --quick]
//! ```

use pbg_bench::harness::{arm_trace_path, link_prediction, train_pbg_traced};
use pbg_bench::report::{save_json, ExpArgs, Table};
use pbg_core::config::PbgConfig;
use pbg_core::eval::CandidateSampling;
use pbg_core::stats::format_bytes;
use pbg_datagen::presets;
use pbg_distsim::cluster::{ClusterConfig, ClusterTrainer};
use pbg_distsim::event::{simulate, EventSimConfig};
use pbg_graph::split::EdgeSplit;
use serde_json::json;

const PAPER_NODES: u64 = 121_216_723;
const PAPER_TRAIN_EDGES: u64 = 2_452_563_539;

/// Paper-scale projection; `pipelined: false` reproduces the paper's
/// synchronous swapping (the published hour columns), `true` projects
/// the pipelined swap implementation.
fn project(
    partitions: u32,
    machines: usize,
    edges_per_sec: f64,
    pipelined: bool,
) -> pbg_distsim::event::EventSimReport {
    simulate(&EventSimConfig {
        nodes: PAPER_NODES,
        edges: PAPER_TRAIN_EDGES,
        dim: 100,
        partitions,
        machines,
        epochs: 10,
        edges_per_sec,
        pipelined,
        ..Default::default()
    })
}

fn main() {
    let args = ExpArgs::parse();
    let scale = args
        .scale
        .unwrap_or(if args.quick { 0.000004 } else { 0.00004 });
    let epochs = args.epochs.unwrap_or(if args.quick { 4 } else { 10 });
    let dataset = presets::freebase_like(scale, 41);
    println!(
        "dataset {}: {} entities, {} relations, {} edges (paper: 121,216,723 / 25,291 / 2.7B)",
        dataset.name,
        dataset.num_nodes(),
        dataset.schema.num_relation_types(),
        dataset.edges.len(),
    );
    let split = EdgeSplit::ninety_five_five(&dataset.edges, 41);
    // the paper uses 10,000 prevalence-sampled candidates against 121M
    // nodes; scale the candidate pool with the scaled node count
    let candidates = ((dataset.num_nodes() as usize) / 5).clamp(50, 1000);
    let config_base = PbgConfig::builder()
        .dim(64)
        .epochs(epochs)
        .batch_size(1000)
        .chunk_size(50)
        .uniform_negatives(50)
        .threads(4)
        .build()
        .expect("valid config");
    let mut results = Vec::new();

    if !args.distributed {
        let mut table = Table::new(
            "Table 3 (left) — Freebase, single machine, partition sweep",
            &[
                "P",
                "MRR",
                "Hits@10",
                "measured s",
                "peak mem",
                "prefetch hits",
                "swap wait s",
                "projected h (paper scale)",
                "pipelined h",
            ],
        );
        let mut measured_eps = 250_000.0;
        for p in [1u32, 4, 8, 16] {
            let schema = dataset.schema_with_partitions(p);
            let dir = (p > 1)
                .then(|| std::env::temp_dir().join(format!("pbg_t3_p{p}_{}", std::process::id())));
            let trace = args
                .telemetry
                .as_ref()
                .map(|base| arm_trace_path(base, &format!("p{p}")));
            let run = train_pbg_traced(
                schema,
                &split.train,
                config_base.clone(),
                dir.clone(),
                trace.as_deref(),
            );
            if let Some(d) = dir {
                std::fs::remove_dir_all(&d).ok();
            }
            let m = link_prediction(
                &run.model,
                &split,
                candidates,
                CandidateSampling::Prevalence,
            );
            let total_train_secs: f64 = run.epochs.iter().map(|e| e.seconds).sum();
            let eps = split.train.len() as f64 * epochs as f64 / total_train_secs.max(1e-9);
            if p == 1 {
                measured_eps = eps;
            }
            let projection = project(p, 1, measured_eps, false);
            let overlapped = project(p, 1, measured_eps, true);
            let prefetch_hits: usize = run.epochs.iter().map(|e| e.prefetch_hits).sum();
            let swap_wait: f64 = run.epochs.iter().map(|e| e.swap_wait_seconds).sum();
            let written_back: u64 = run.epochs.iter().map(|e| e.bytes_written_back).sum();
            table.row(&[
                p.to_string(),
                format!("{:.3}", m.mrr),
                format!("{:.3}", m.hits_at_10),
                format!("{:.1}", run.seconds),
                format_bytes(run.peak_bytes),
                prefetch_hits.to_string(),
                format!("{swap_wait:.3}"),
                format!(
                    "{:.0} h / {}",
                    projection.total_hours,
                    format_bytes(projection.peak_memory_bytes as usize)
                ),
                format!("{:.0}", overlapped.total_hours),
            ]);
            results.push(json!({
                "partitions": p, "mrr": m.mrr, "hits_at_10": m.hits_at_10,
                "measured_seconds": run.seconds, "peak_bytes": run.peak_bytes,
                "prefetch_hits": prefetch_hits,
                "swap_wait_seconds": swap_wait,
                "bytes_written_back": written_back,
                "projected_hours": projection.total_hours,
                "projected_pipelined_hours": overlapped.total_hours,
                "projected_peak_bytes": projection.peak_memory_bytes,
            }));
        }
        table.print();
        println!(
            "paper shape: MRR flat (0.170–0.174); memory ≈ 1/P \
             (59.6→6.8 GB); projected hours mildly increasing (30→40 h); \
             the pipelined column shows overlap hiding that I/O growth."
        );
        save_json("table3_freebase_partitions", &results);
    } else {
        let mut table = Table::new(
            "Table 3 (right) — Freebase, distributed, machine sweep (P = 2M)",
            &[
                "M",
                "P",
                "MRR",
                "Hits@10",
                "measured s",
                "peak/machine",
                "prefetch hits",
                "projected h",
                "pipelined h",
            ],
        );
        // per-machine throughput calibrated once from the M=1 run: at
        // paper scale each machine trains at the single-machine rate and
        // the event simulator models the scheduling/transfer overheads
        let mut calibrated_eps = 0.0f64;
        for machines in [1usize, 2, 4, 8] {
            let p = (2 * machines) as u32;
            let schema = dataset.schema_with_partitions(p.max(1));
            let mut cluster = ClusterTrainer::new(
                schema,
                &split.train,
                config_base.clone(),
                ClusterConfig {
                    machines,
                    ..Default::default()
                },
            )
            .expect("valid cluster");
            let start = std::time::Instant::now();
            let stats = cluster.train();
            let seconds = start.elapsed().as_secs_f64();
            let m = link_prediction(
                &cluster.snapshot(),
                &split,
                candidates,
                CandidateSampling::Prevalence,
            );
            if machines == 1 {
                calibrated_eps = split.train.len() as f64 * epochs as f64
                    / stats.iter().map(|e| e.seconds).sum::<f64>().max(1e-9);
            }
            let projection = project(p.max(1), machines, calibrated_eps.max(1.0), false);
            let overlapped = project(p.max(1), machines, calibrated_eps.max(1.0), true);
            let peak = stats
                .iter()
                .map(|e| e.peak_machine_bytes)
                .max()
                .unwrap_or(0);
            let prefetch_hits: usize = stats.iter().map(|e| e.prefetch_hits).sum();
            let sim_pipelined: f64 = stats.iter().map(|e| e.sim_pipelined_seconds).sum();
            table.row(&[
                machines.to_string(),
                p.to_string(),
                format!("{:.3}", m.mrr),
                format!("{:.3}", m.hits_at_10),
                format!("{seconds:.1}"),
                format_bytes(peak),
                prefetch_hits.to_string(),
                format!("{:.0}", projection.total_hours),
                format!("{:.0}", overlapped.total_hours),
            ]);
            results.push(json!({
                "machines": machines, "partitions": p, "mrr": m.mrr,
                "hits_at_10": m.hits_at_10, "measured_seconds": seconds,
                "peak_machine_bytes": peak,
                "prefetch_hits": prefetch_hits,
                "sim_pipelined_seconds": sim_pipelined,
                "projected_hours": projection.total_hours,
                "projected_pipelined_hours": overlapped.total_hours,
            }));
        }
        table.print();
        println!(
            "paper shape: quality flat through M=4 with a small dip at M=8 \
             (0.170→0.163); time falls 30→7.7 h (~4× on 8 machines)."
        );
        save_json("table3_freebase_machines", &results);
    }
}
