//! Figure 4: training speed vs number of negatives, batched vs unbatched
//! (d = 100).
//!
//! Paper shape: with unbatched negatives, edges/second is inversely
//! proportional to B_n; with batched negatives, speed is nearly constant
//! for B_n ≤ 100 and degrades slowly beyond.
//!
//! ```sh
//! cargo run --release -p pbg-bench --bin fig4_negatives [-- --quick]
//! ```

use pbg_bench::report::{save_json, save_text, ExpArgs, Table};
use pbg_core::config::{NegativeMode, PbgConfig};
use pbg_core::trainer::Trainer;
use pbg_datagen::social::SocialGraphConfig;
use serde_json::json;

fn main() {
    let args = ExpArgs::parse();
    let (num_nodes, num_edges) = if args.quick {
        (2_000u32, 20_000usize)
    } else {
        (5_000, 100_000)
    };
    let graph = SocialGraphConfig {
        num_nodes,
        num_edges,
        num_communities: 64,
        intra_prob: 0.8,
        zipf_exponent: 1.0,
        seed: 61,
    };
    let (edges, _) = graph.generate();
    let schema = graph.schema(1);
    println!(
        "graph: {} nodes, {} edges, d=100 (paper setting)",
        num_nodes, num_edges
    );

    let sweep: &[usize] = if args.quick {
        &[2, 10, 50, 100, 200]
    } else {
        &[2, 10, 25, 50, 100, 200, 500]
    };
    let mut table = Table::new(
        "Figure 4 — edges/sec vs negatives per edge",
        &["B_n", "batched e/s", "unbatched e/s", "ratio"],
    );
    let mut results = Vec::new();
    let mut tsv = String::from("# bn\tbatched_eps\tunbatched_eps\n");

    for &bn in sweep {
        let batched = run_epoch(&schema, &edges, bn, NegativeMode::Batched);
        let unbatched = run_epoch(&schema, &edges, bn, NegativeMode::Unbatched);
        table.row(&[
            bn.to_string(),
            format!("{batched:.0}"),
            format!("{unbatched:.0}"),
            format!("{:.1}x", batched / unbatched),
        ]);
        tsv.push_str(&format!("{bn}\t{batched:.0}\t{unbatched:.0}\n"));
        results.push(json!({
            "negatives": bn, "batched_eps": batched, "unbatched_eps": unbatched,
        }));
    }
    table.print();
    println!(
        "paper shape: unbatched decays ~1/B_n; batched nearly flat for \
         B_n ≤ 100."
    );
    save_json("fig4_negatives", &results);
    save_text("fig4_negatives.tsv", &tsv);
}

/// Trains one epoch with `bn` negatives per positive per side and returns
/// edges/second.
fn run_epoch(
    schema: &pbg_graph::schema::GraphSchema,
    edges: &pbg_graph::edges::EdgeList,
    bn: usize,
    mode: NegativeMode,
) -> f64 {
    // Figure 3's B_n counts negatives across BOTH corrupted sides:
    // each side contributes B_n/2 (chunk nodes first, then uniform)
    let per_side = (bn / 2).max(1);
    let (chunk, uniform) = match mode {
        // batched: the chunk's own nodes + uniform samples make up B_n/2
        NegativeMode::Batched => {
            let chunk = per_side.min(50);
            (chunk, per_side - chunk)
        }
        // unbatched: every negative is freshly sampled
        NegativeMode::Unbatched => (1, per_side),
    };
    let config = PbgConfig::builder()
        .dim(100)
        .epochs(1)
        .batch_size(1000.max(chunk))
        .chunk_size(chunk)
        .uniform_negatives(uniform.max(if mode == NegativeMode::Unbatched {
            1
        } else {
            0
        }))
        .negative_mode(mode)
        .threads(4)
        .build()
        .expect("valid config");
    let mut trainer = Trainer::new(schema.clone(), edges, config).expect("valid trainer");
    let stats = trainer.train_epoch();
    stats.edges as f64 / stats.seconds.max(1e-9)
}
