//! Table 2: FB15k knowledge-graph link prediction.
//!
//! Paper numbers (14,951 entities / 1,345 relations / 592,213 edges):
//!
//! | method        | raw MRR | filt MRR | filt Hits@10 |
//! |---------------|---------|----------|--------------|
//! | PBG (TransE)  | 0.265   | 0.594    | 0.785        |
//! | PBG (ComplEx) | 0.242   | 0.790    | 0.872        |
//!
//! Shape to reproduce: filtered ≫ raw for both; ComplEx (complex-diagonal
//! operator + softmax + reciprocal relations) beats TransE (translation +
//! cosine + margin ranking) on filtered metrics.
//!
//! ```sh
//! cargo run --release -p pbg-bench --bin table2_fb15k [-- --scale 0.2 --quick]
//! ```

use pbg_bench::harness::{link_prediction, link_prediction_filtered, train_pbg};
use pbg_bench::report::{save_json, ExpArgs, Table};
use pbg_core::config::{LossKind, PbgConfig, SimilarityKind};
use pbg_core::eval::CandidateSampling;
use pbg_datagen::knowledge::KnowledgeGraphConfig;
use pbg_datagen::presets;
use pbg_graph::schema::OperatorKind;
use pbg_graph::split::EdgeSplit;
use serde_json::json;

fn main() {
    let args = ExpArgs::parse();
    let scale = args.scale.unwrap_or(if args.quick { 0.05 } else { 0.2 });
    let epochs = args.epochs.unwrap_or(if args.quick { 4 } else { 12 });
    // the preset fixes the operator in the schema; regenerate the same
    // edges for each model variant
    let reference = presets::fb15k_like(scale, 31);
    println!(
        "dataset {}: {} entities, {} relations, {} edges (paper: 14,951 / 1,345 / 592,213)",
        reference.name,
        reference.num_nodes(),
        reference.schema.num_relation_types(),
        reference.edges.len(),
    );
    let split = EdgeSplit::new(&reference.edges, 0.05, 0.05, 31);
    let candidates = 500;

    let mut table = Table::new(
        "Table 2 — FB15k",
        &["method", "raw MRR", "filt MRR", "filt Hits@10", "train s"],
    );
    let mut results = Vec::new();

    for (name, op, loss, sim, reciprocal, dim) in [
        (
            "PBG (TransE)",
            OperatorKind::Translation,
            LossKind::MarginRanking,
            SimilarityKind::Cosine,
            false,
            64usize,
        ),
        (
            "PBG (ComplEx)",
            OperatorKind::ComplexDiagonal,
            LossKind::Softmax,
            SimilarityKind::Dot,
            true,
            64,
        ),
    ] {
        // same entities/edges, operator choice only affects the schema
        let kg = KnowledgeGraphConfig {
            num_entities: reference.num_nodes(),
            num_relations: reference.schema.num_relation_types() as u32,
            operator: op,
            ..Default::default()
        };
        let schema = kg.schema(1);
        let config = PbgConfig::builder()
            .dim(dim)
            .epochs(epochs)
            .batch_size(1000)
            .chunk_size(50)
            .uniform_negatives(100)
            .loss(loss)
            .similarity(sim)
            .reciprocal_relations(reciprocal)
            .margin(0.1)
            .learning_rate(0.1)
            .threads(4)
            .build()
            .expect("valid config");
        let run = train_pbg(schema, &split.train, config, None);
        let raw = link_prediction(&run.model, &split, candidates, CandidateSampling::Uniform);
        let filt = link_prediction_filtered(&run.model, &split, candidates);
        table.row(&[
            name.into(),
            format!("{:.3}", raw.mrr),
            format!("{:.3}", filt.mrr),
            format!("{:.3}", filt.hits_at_10),
            format!("{:.1}", run.seconds),
        ]);
        results.push(json!({
            "method": name, "raw_mrr": raw.mrr, "filtered_mrr": filt.mrr,
            "filtered_hits_at_10": filt.hits_at_10, "seconds": run.seconds,
        }));
    }

    table.print();
    println!(
        "paper shape: filtered ≫ raw for both models; ComplEx ≥ TransE on \
         filtered MRR/Hits@10."
    );
    save_json("table2_fb15k", &results);
}
