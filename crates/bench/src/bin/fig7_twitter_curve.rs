//! Figure 7: Twitter learning curves by machine count — MRR vs epoch and
//! vs wall-clock for M ∈ {1, 2, 4, 8}, P = 2M.
//!
//! Paper shape: same as Figure 6 but with *more linear* time scaling than
//! Freebase (single relation, less skew → better occupancy).
//!
//! ```sh
//! cargo run --release -p pbg-bench --bin fig7_twitter_curve [-- --quick]
//! ```

use pbg_bench::harness::link_prediction;
use pbg_bench::report::{save_text, ExpArgs};
use pbg_core::config::PbgConfig;
use pbg_core::eval::CandidateSampling;
use pbg_datagen::presets;
use pbg_distsim::cluster::{ClusterConfig, ClusterTrainer};
use pbg_eval::curve::LearningCurve;
use pbg_graph::split::EdgeSplit;

fn main() {
    let args = ExpArgs::parse();
    let scale = args
        .scale
        .unwrap_or(if args.quick { 0.00001 } else { 0.00003 });
    let epochs = args.epochs.unwrap_or(if args.quick { 4 } else { 8 });
    let dataset = presets::twitter_like(scale, 97);
    let split = EdgeSplit::ninety_five_five(&dataset.edges, 97);
    // candidate pool scaled with node count (see table3/table4)
    let candidates = ((dataset.num_nodes() as usize) / 5).clamp(50, 1000);
    println!(
        "dataset {}: {} nodes, {} edges",
        dataset.name,
        dataset.num_nodes(),
        dataset.edges.len()
    );
    let machine_counts: &[usize] = if args.quick { &[1, 2] } else { &[1, 2, 4, 8] };
    let config = PbgConfig::builder()
        .dim(64)
        .epochs(epochs)
        .batch_size(1000)
        .chunk_size(50)
        .uniform_negatives(50)
        .threads(2)
        .build()
        .expect("valid config");

    let mut out = String::new();
    let mut epoch_seconds = Vec::new();
    for &machines in machine_counts {
        let p = (2 * machines) as u32;
        let schema = dataset.schema_with_partitions(p.max(1));
        let mut cluster = ClusterTrainer::new(
            schema,
            &split.train,
            config.clone(),
            ClusterConfig {
                machines,
                ..Default::default()
            },
        )
        .expect("valid cluster");
        let mut curve = LearningCurve::start(format!("twitter M={machines}"));
        let start = std::time::Instant::now();
        let mut train_secs = 0.0;
        cluster.train_with(|stats, trainer| {
            train_secs += stats.seconds;
            let m = link_prediction(
                &trainer.snapshot(),
                &split,
                candidates,
                CandidateSampling::Prevalence,
            );
            curve.record_at(start.elapsed().as_secs_f64(), stats.epoch, m.mrr);
            true
        });
        epoch_seconds.push((machines, train_secs / epochs as f64));
        out.push_str(&curve.by_epoch_tsv());
        out.push_str(&curve.by_time_tsv());
        println!("{}", curve.by_epoch_tsv());
        println!("{}", curve.by_time_tsv());
    }
    println!("mean seconds/epoch by machine count:");
    for (m, s) in &epoch_seconds {
        println!("  M={m}: {s:.2}s");
    }
    println!(
        "paper shape: per-epoch curves overlap; per-time curves shift left \
         nearly linearly with machines (Twitter scales better than \
         Freebase)."
    );
    save_text("fig7_twitter_curve.tsv", &out);
}
