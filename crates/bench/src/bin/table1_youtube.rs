//! Table 1 (right): YouTube downstream node classification —
//! micro-/macro-F1 of one-vs-rest logistic regression on the embeddings,
//! 10-fold cross validation.
//!
//! Paper numbers (1.14M nodes / 3M edges, 47 group labels):
//!
//! | method          | Micro-F1 | Macro-F1 |
//! |-----------------|----------|----------|
//! | DeepWalk        | 45.2%    | 34.7%    |
//! | MILE (6 levels) | 46.1%    | 38.5%    |
//! | MILE (8 levels) | 44.3%    | 35.3%    |
//! | PBG (1 part.)   | 48.0%    | 40.9%    |
//!
//! Shape to reproduce: PBG at least matches the baselines; very deep MILE
//! coarsening degrades.
//!
//! ```sh
//! cargo run --release -p pbg-bench --bin table1_youtube [-- --scale 0.002 --quick]
//! ```

use pbg_baselines::deepwalk::{DeepWalk, DeepWalkConfig};
use pbg_baselines::mile::{Mile, MileConfig};
use pbg_baselines::sgns::SgnsConfig;
use pbg_baselines::walks::WalkConfig;
use pbg_bench::harness::train_pbg;
use pbg_bench::report::{save_json, ExpArgs, Table};
use pbg_core::config::PbgConfig;
use pbg_datagen::presets;
use pbg_eval::crossval::k_fold;
use pbg_eval::f1::f1_scores;
use pbg_eval::logreg::OneVsRest;
use pbg_tensor::matrix::Matrix;
use serde_json::json;

/// 10-fold CV micro/macro F1 of one-vs-rest logreg on `embeddings`.
fn classify(embeddings: &Matrix, labels: &pbg_datagen::labels::Labels, folds: usize) -> (f64, f64) {
    let nodes = labels.labeled_nodes();
    // L2-normalized features: MILE's refinement emits unit vectors, so
    // normalizing every system keeps the logreg comparison fair
    let features: Vec<Vec<f32>> = nodes
        .iter()
        .map(|&v| {
            let mut f = embeddings.row(v as usize).to_vec();
            pbg_tensor::vecmath::normalize(&mut f);
            f
        })
        .collect();
    let truth: Vec<Vec<u16>> = nodes.iter().map(|&v| labels.of(v).to_vec()).collect();
    let mut micro_sum = 0.0;
    let mut macro_sum = 0.0;
    for fold in k_fold(nodes.len(), folds, 77) {
        let train_x: Vec<Vec<f32>> = fold.train.iter().map(|&i| features[i].clone()).collect();
        let train_y: Vec<Vec<u16>> = fold.train.iter().map(|&i| truth[i].clone()).collect();
        let ovr = OneVsRest::fit(&train_x, &train_y, labels.num_classes(), 7);
        let pred: Vec<Vec<u16>> = fold
            .test
            .iter()
            .map(|&i| ovr.predict(&features[i]))
            .collect();
        let test_y: Vec<Vec<u16>> = fold.test.iter().map(|&i| truth[i].clone()).collect();
        let scores = f1_scores(&test_y, &pred, labels.num_classes());
        micro_sum += scores.micro;
        macro_sum += scores.macro_;
    }
    (micro_sum / folds as f64, macro_sum / folds as f64)
}

fn main() {
    let args = ExpArgs::parse();
    let scale = args.scale.unwrap_or(if args.quick { 0.001 } else { 0.003 });
    let epochs = args.epochs.unwrap_or(if args.quick { 3 } else { 8 });
    let folds = if args.quick { 3 } else { 10 };
    let dataset = presets::youtube_like(scale, 23);
    let labels = dataset.labels.as_ref().expect("youtube preset has labels");
    let n = dataset.num_nodes() as usize;
    println!(
        "dataset {}: {} nodes, {} edges, {} labeled ({} classes); paper: 1,138,499 / 2,990,443 / 47 classes",
        dataset.name,
        n,
        dataset.edges.len(),
        labels.labeled_nodes().len(),
        labels.num_classes(),
    );
    let dim = 64;
    let mut table = Table::new(
        "Table 1 (right) — YouTube user-category classification",
        &["method", "Micro-F1", "Macro-F1"],
    );
    let mut results = Vec::new();

    let dw_config = DeepWalkConfig {
        walks: WalkConfig {
            walks_per_node: 10,
            walk_length: 40,
        },
        sgns: SgnsConfig {
            dim,
            epochs: epochs.min(5),
            threads: 4,
            ..Default::default()
        },
    };

    let dw = DeepWalk::new(dw_config.clone()).embed(&dataset.edges, n);
    let (micro, macro_) = classify(&dw.embeddings, labels, folds);
    table.row(&[
        "DeepWalk".into(),
        format!("{:.1}%", micro * 100.0),
        format!("{:.1}%", macro_ * 100.0),
    ]);
    results.push(json!({"method": "DeepWalk", "micro_f1": micro, "macro_f1": macro_}));

    for levels in [2usize, 6] {
        let mile = Mile::new(MileConfig {
            levels,
            base: dw_config.clone(),
            ..Default::default()
        })
        .embed(&dataset.edges, n);
        let (micro, macro_) = classify(&mile.embeddings, labels, folds);
        let name = format!("MILE ({levels} levels)");
        table.row(&[
            name.clone(),
            format!("{:.1}%", micro * 100.0),
            format!("{:.1}%", macro_ * 100.0),
        ]);
        results.push(json!({"method": name, "micro_f1": micro, "macro_f1": macro_}));
    }

    // grid-search winner for this dataset: softmax loss, 100 uniform
    // negatives (the paper grid-searches per dataset)
    let config = PbgConfig::builder()
        .dim(dim)
        .epochs(2 * epochs)
        .batch_size(1000)
        .chunk_size(50)
        .uniform_negatives(100)
        .loss(pbg_core::config::LossKind::Softmax)
        .threads(4)
        .build()
        .expect("valid config");
    let run = train_pbg(dataset.schema.clone(), &dataset.edges, config, None);
    let (micro, macro_) = classify(&run.model.embeddings[0], labels, folds);
    table.row(&[
        "PBG (1 partition)".into(),
        format!("{:.1}%", micro * 100.0),
        format!("{:.1}%", macro_ * 100.0),
    ]);
    results.push(json!({"method": "PBG (1 partition)", "micro_f1": micro, "macro_f1": macro_}));

    table.print();
    println!("paper shape: PBG ≥ DeepWalk/MILE on both F1s; deeper MILE coarsening drops quality.");
    save_json("table1_youtube", &results);
}
