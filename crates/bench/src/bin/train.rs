//! End-to-end training throughput: edges/sec across threads × pinning.
//!
//! The microkernel bench (`kernels`) isolates GEMM throughput; this one
//! measures what the paper actually reports — HOGWILD training speed on a
//! realistic synthetic social graph. Each arm trains the same graph with
//! the same config and differs only in `threads` and `pin_cores`, so the
//! table reads directly as "what did affinity pinning buy at T threads".
//!
//! Throughput is best-of-reps (`edges × epochs / min epoch-sum seconds`),
//! which is the right statistic for placement effects: pinning removes
//! migration noise, so its win shows up in the *minimum* wall time, and
//! best-of filters scheduler hiccups that would otherwise drown a 1-core
//! CI container in variance.
//!
//! Results go to `target/experiments/train.json` and the committed
//! snapshot `BENCH_train.json` at the workspace root.
//!
//! ```sh
//! cargo run --release -p pbg-bench --bin train [-- --quick]
//! ```

use pbg_bench::report::{save_json, ExpArgs, Table};
use pbg_core::config::PbgConfig;
use pbg_core::trainer::Trainer;
use pbg_datagen::social::SocialGraphConfig;
use pbg_tensor::affinity::CorePlan;
use pbg_tensor::kernels::dispatch;
use serde_json::json;

/// One full training run; returns edges/sec over all epochs.
fn throughput(
    schema: &pbg_graph::schema::GraphSchema,
    edges: &pbg_graph::edges::EdgeList,
    config: &PbgConfig,
) -> f64 {
    let mut trainer = Trainer::new(schema.clone(), edges, config.clone()).expect("trainer setup");
    let stats = trainer.train();
    let total_edges: usize = stats.iter().map(|s| s.edges).sum();
    let total_secs: f64 = stats.iter().map(|s| s.seconds).sum();
    if total_secs > 0.0 {
        total_edges as f64 / total_secs
    } else {
        0.0
    }
}

fn main() {
    let args = ExpArgs::parse();
    let (num_nodes, num_edges, epochs, reps) = if args.quick {
        (2_000u32, 20_000usize, 1usize, 2usize)
    } else {
        (10_000, 200_000, 2, 5)
    };
    let epochs = args.epochs.unwrap_or(epochs);

    let gen = SocialGraphConfig {
        num_nodes,
        num_edges,
        seed: 17,
        ..SocialGraphConfig::default()
    };
    let (edges, _) = gen.generate();
    let schema = gen.schema(1);

    let plan = CorePlan::detect();
    let available = plan.cores().len();
    // Thread counts that make sense on this host: never oversubscribe
    // past the affinity mask (pinning T > cores threads would stack them).
    let thread_counts: Vec<usize> = [1usize, 2, 4, 8]
        .into_iter()
        .filter(|&t| t == 1 || t <= available)
        .collect();

    println!(
        "train bench: {} nodes, {} edges, {} epochs, kernel={}, {} core(s) available",
        num_nodes,
        edges.len(),
        epochs,
        dispatch::active().name(),
        available
    );

    let mut table = Table::new(
        "Training throughput — edges/sec (best of reps)",
        &["threads", "unpinned", "pinned", "pinned/unpinned"],
    );
    let mut records = Vec::new();
    for &threads in &thread_counts {
        let build = |pin: bool| {
            PbgConfig::builder()
                .dim(64)
                .epochs(epochs)
                .threads(threads)
                .seed(7)
                .pin_cores(pin)
                .build()
                .expect("bench config")
        };
        // Interleave the arms rep by rep so slow clock/thermal drift over
        // the run hits both equally instead of biasing whichever ran last.
        let (mut unpinned, mut pinned) = (0.0f64, 0.0f64);
        for _ in 0..reps {
            unpinned = unpinned.max(throughput(&schema, &edges, &build(false)));
            pinned = pinned.max(throughput(&schema, &edges, &build(true)));
        }
        let ratio = if unpinned > 0.0 {
            pinned / unpinned
        } else {
            0.0
        };
        table.row(&[
            threads.to_string(),
            format!("{unpinned:.0}"),
            format!("{pinned:.0}"),
            format!("{ratio:.3}x"),
        ]);
        println!(
            "threads={threads:<2} unpinned {unpinned:>10.0} e/s  pinned {pinned:>10.0} e/s  ({ratio:.3}x)"
        );
        records.push(json!({
            "threads": threads,
            "edges_per_sec_unpinned": unpinned,
            "edges_per_sec_pinned": pinned,
            "pinned_vs_unpinned": ratio,
        }));
    }

    table.print();
    let result = json!({
        "bench": "train",
        "quick": args.quick,
        "dispatch_active": dispatch::active().name(),
        "cores_available": available,
        "num_nodes": num_nodes,
        "num_edges": edges.len(),
        "epochs": epochs,
        "arms": records,
    });
    save_json("train", &result);
    match serde_json::to_string_pretty(&result) {
        Ok(text) => {
            if let Err(e) = std::fs::write("BENCH_train.json", text) {
                eprintln!("warning: could not write BENCH_train.json: {e}");
            } else {
                println!("(saved BENCH_train.json)");
            }
        }
        Err(e) => eprintln!("warning: could not serialize train bench: {e}"),
    }
}
