//! Minimal offline stand-in for the `bytes` crate.
//!
//! The workspace vendors its external dependencies because the build
//! environment has no network access to crates.io. Provides the subset
//! pbg-rs uses: [`Buf`] for `&[u8]`, [`BufMut`]/[`BytesMut`] for
//! encoding, and immutable [`Bytes`]. Multi-byte integers use
//! big-endian, matching the real crate's `get_*`/`put_*` defaults.

use std::ops::Deref;

/// Read-side cursor over a contiguous byte buffer (big-endian getters).
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// Current readable slice.
    fn chunk(&self) -> &[u8];
    /// Consumes `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// `true` while bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies `dst.len()` bytes out, advancing past them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a big-endian u16.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Reads a big-endian u32.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian u64.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Reads a big-endian f32.
    fn get_f32(&mut self) -> f32 {
        f32::from_bits(self.get_u32())
    }

    /// Reads a big-endian f64.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write-side interface (big-endian putters).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian f32.
    fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    /// Appends a big-endian f64.
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

/// Growable byte buffer.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Immutable byte buffer.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes { data: Vec::new() }
    }

    /// Wraps an owned byte vector.
    pub fn from_vec(data: Vec<u8>) -> Self {
        Bytes { data }
    }

    /// Number of bytes held.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Extracts the underlying vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_integers_big_endian() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(7);
        buf.put_u16(0xBEEF);
        buf.put_u64(0x0123_4567_89AB_CDEF);
        buf.put_f32(1.5);
        let frozen = buf.freeze();
        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.get_u8(), 7);
        assert_eq!(cursor.get_u16(), 0xBEEF);
        assert_eq!(cursor.get_u64(), 0x0123_4567_89AB_CDEF);
        assert_eq!(cursor.get_f32(), 1.5);
        assert_eq!(cursor.remaining(), 0);
    }
}
