//! Minimal offline stand-in for the `proptest` crate.
//!
//! The workspace vendors its external dependencies because the build
//! environment has no network access to crates.io. This stand-in keeps
//! proptest's strategy-combinator surface (`Strategy`, `prop_map`,
//! `prop_flat_map`, `collection::{vec, btree_set}`, range strategies,
//! tuple strategies) and the `proptest!` macro, but runs a fixed number
//! of deterministic cases per property and reports failures through
//! plain `assert!` panics instead of shrinking.

/// Cases executed per property (real proptest defaults to 256 with
/// shrinking; a smaller deterministic sweep keeps the suite fast).
pub const CASES_PER_PROPERTY: u32 = 64;

pub mod test_runner {
    //! Deterministic RNG driving strategy generation.

    /// SplitMix64-based generator; each test case gets its own stream.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for case number `case` of a property.
        pub fn from_case(case: u32) -> Self {
            TestRng {
                state: 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(case) + 1),
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform draw in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty range in strategy");
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    //! The `Strategy` trait and combinators.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// Type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { base: self, f }
        }

        /// Builds a dependent strategy from each generated value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { base: self, f }
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.base.generate(rng))
        }
    }

    /// Output of [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S, F, S2> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    let draw = (rng.next_u64() as u128) % span;
                    (lo as i128 + draw as i128) as $t
                }
            }
        )*};
    }

    int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let unit = rng.next_f64() as $t;
                    let v = self.start + unit * (self.end - self.start);
                    if v >= self.end { self.start } else { v }
                }
            }
        )*};
    }

    float_range_strategies!(f32, f64);

    macro_rules! tuple_strategies {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }
}

pub mod collection {
    //! Collection strategies: `vec` and `btree_set`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Length specification: an exact size or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.min < self.max, "empty size range");
            self.min + rng.below((self.max - self.min) as u64) as usize
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of `element` draws.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy producing `BTreeSet`s of `element` draws.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `BTreeSet` strategy targeting a size drawn from `size`; may yield
    /// fewer elements when the element domain is too small.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < target * 20 + 20 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a property condition (panics instead of proptest's
/// shrink-and-report).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// expands to a test running [`CASES_PER_PROPERTY`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$attr:meta])*
        fn $name:ident( $($arg:pat in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            for __case in 0..$crate::CASES_PER_PROPERTY {
                let mut __rng = $crate::test_runner::TestRng::from_case(__case);
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )*
                $body
            }
        }
    )*};
}
