//! Minimal offline stand-in for `serde_derive`.
//!
//! Real serde_derive parses items with `syn`; neither `syn` nor `quote`
//! is available offline, so this macro walks the raw `TokenStream`
//! directly and emits impls as parsed strings. It supports exactly the
//! item shapes the workspace derives on:
//!
//! - named-field structs       -> JSON objects in declaration order
//! - single-field tuple structs -> transparent newtypes
//! - enums with unit variants   -> variant-name strings
//!
//! Anything else (generics, data-carrying enums, unions) produces a
//! `compile_error!` naming the unsupported shape.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Item {
    NamedStruct { name: String, fields: Vec<String> },
    NewtypeStruct { name: String },
    UnitEnum { name: String, variants: Vec<String> },
}

/// Derives the vendored `serde::Serialize` for supported item shapes.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derives the vendored `serde::Deserialize` for supported item shapes.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    let code = match parse_item(input) {
        Ok(item) => gen(&item),
        Err(msg) => format!("compile_error!(\"{}\");", msg.replace('"', "\\\"")),
    };
    code.parse()
        .expect("vendored serde_derive produced unparseable code")
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut tokens: Vec<TokenTree> = input.into_iter().collect();
    strip_attrs_and_vis(&mut tokens);
    let mut iter = tokens.into_iter();

    let keyword = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => {
            return Err(format!(
                "expected `struct` or `enum`, got {:?}",
                other.map(|t| t.to_string())
            ))
        }
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => {
            return Err(format!(
                "expected item name, got {:?}",
                other.map(|t| t.to_string())
            ))
        }
    };
    let body = match iter.next() {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            return Err(format!(
                "derive on generic type `{}` is not supported by the vendored serde_derive",
                name
            ));
        }
        Some(TokenTree::Group(g)) => g,
        Some(other) => return Err(format!("unexpected token `{}` after `{}`", other, name)),
        None => return Err(format!("`{}` has no body (unit structs unsupported)", name)),
    };

    match (keyword.as_str(), body.delimiter()) {
        ("struct", Delimiter::Brace) => Ok(Item::NamedStruct {
            name,
            fields: parse_named_fields(body.stream())?,
        }),
        ("struct", Delimiter::Parenthesis) => {
            let arity = count_top_level_fields(body.stream());
            if arity == 1 {
                Ok(Item::NewtypeStruct { name })
            } else {
                Err(format!(
                    "tuple struct `{}` has {} fields; only newtypes are supported",
                    name, arity
                ))
            }
        }
        ("enum", Delimiter::Brace) => Ok(Item::UnitEnum {
            name: name.clone(),
            variants: parse_unit_variants(body.stream(), &name)?,
        }),
        _ => Err(format!("unsupported item shape for `{}`", name)),
    }
}

/// Drops leading `#[...]` attributes and `pub` / `pub(...)` visibility.
fn strip_attrs_and_vis(tokens: &mut Vec<TokenTree>) {
    let mut start = 0;
    loop {
        match tokens.get(start) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => start += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                start += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(start) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        start += 1;
                    }
                }
            }
            _ => break,
        }
    }
    tokens.drain(..start);
}

/// Splits a brace-group token stream into per-field token runs at
/// top-level commas. Angle brackets (`Option<Vec<f32>>`) are the only
/// nesting that hides commas in field types: parens/brackets/braces
/// arrive as single `Group` trees.
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0usize;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1);
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                out.push(std::mem::take(&mut current));
                continue;
            }
            _ => {}
        }
        current.push(tt);
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

fn count_top_level_fields(stream: TokenStream) -> usize {
    split_top_level(stream).len()
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    for mut run in split_top_level(stream) {
        strip_attrs_and_vis(&mut run);
        if run.is_empty() {
            continue;
        }
        match (&run[0], run.get(1)) {
            (TokenTree::Ident(id), Some(TokenTree::Punct(p))) if p.as_char() == ':' => {
                fields.push(id.to_string());
            }
            _ => {
                let text: String = run.iter().map(ToString::to_string).collect();
                return Err(format!("cannot parse struct field `{}`", text));
            }
        }
    }
    Ok(fields)
}

fn parse_unit_variants(stream: TokenStream, enum_name: &str) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    for mut run in split_top_level(stream) {
        strip_attrs_and_vis(&mut run);
        if run.is_empty() {
            continue;
        }
        match (&run[0], run.len()) {
            (TokenTree::Ident(id), 1) => variants.push(id.to_string()),
            (TokenTree::Ident(id), _) => {
                return Err(format!(
                    "variant `{}::{}` carries data; only unit variants are supported",
                    enum_name, id
                ));
            }
            _ => {
                return Err(format!("cannot parse variant of enum `{}`", enum_name));
            }
        }
    }
    Ok(variants)
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(\"{f}\".to_string(), ::serde::Serialize::serialize(&self.{f})),",
                        f = f
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Content {{\n\
                         ::serde::Content::Map(vec![{entries}])\n\
                     }}\n\
                 }}",
                name = name,
                entries = entries
            )
        }
        Item::NewtypeStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn serialize(&self) -> ::serde::Content {{\n\
                     ::serde::Serialize::serialize(&self.0)\n\
                 }}\n\
             }}",
            name = name
        ),
        Item::UnitEnum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => \"{v}\",", name = name, v = v))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Content {{\n\
                         ::serde::Content::Str((match self {{ {arms} }}).to_string())\n\
                     }}\n\
                 }}",
                name = name,
                arms = arms
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::get_field(__fields, \"{f}\")?,", f = f))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(__content: &::serde::Content) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match __content {{\n\
                             ::serde::Content::Map(__fields) => Ok({name} {{ {inits} }}),\n\
                             _ => Err(::serde::Error::custom(\"expected map for struct {name}\")),\n\
                         }}\n\
                     }}\n\
                 }}",
                name = name,
                inits = inits
            )
        }
        Item::NewtypeStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn deserialize(__content: &::serde::Content) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                     Ok({name}(::serde::Deserialize::deserialize(__content)?))\n\
                 }}\n\
             }}",
            name = name
        ),
        Item::UnitEnum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => Ok({name}::{v}),", name = name, v = v))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(__content: &::serde::Content) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match __content {{\n\
                             ::serde::Content::Str(__s) => match __s.as_str() {{\n\
                                 {arms}\n\
                                 __other => Err(::serde::Error::custom(format!(\n\
                                     \"unknown variant `{{}}` for enum {name}\", __other))),\n\
                             }},\n\
                             _ => Err(::serde::Error::custom(\"expected string for enum {name}\")),\n\
                         }}\n\
                     }}\n\
                 }}",
                name = name,
                arms = arms
            )
        }
    }
}
