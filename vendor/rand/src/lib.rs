//! Minimal offline stand-in for the `rand` crate.
//!
//! The workspace vendors its external dependencies because the build
//! environment has no network access to crates.io. Only the surface
//! pbg-rs actually uses is provided: the [`RngCore`] trait (implemented
//! by `pbg_tensor::rng::Xoshiro256`) and the [`Error`] type.

use std::fmt;

/// Core random-number-generator interface (API-compatible subset of
/// `rand::RngCore` 0.8).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// RNG error type (never produced by the in-tree generators).
#[derive(Debug)]
pub struct Error {
    msg: &'static str,
}

impl Error {
    /// Creates an error with a static message.
    pub fn new(msg: &'static str) -> Self {
        Error { msg }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.msg)
    }
}

impl std::error::Error for Error {}
