//! Minimal offline stand-in for the `serde_json` crate.
//!
//! The workspace vendors its external dependencies because the build
//! environment has no network access to crates.io. [`Value`] is the
//! vendored serde's `Content` tree; this crate adds JSON text parsing,
//! printing, and the `json!` macro subset the workspace uses
//! (object/array literals with expression values).

use std::fmt;

pub use serde::Content as Value;

/// JSON (de)serialization failure.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Result alias matching serde_json's.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Never fails for the vendored data model; the `Result` is kept for
/// serde_json API compatibility.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String> {
    Ok(value.serialize().to_json())
}

/// Serializes a value to pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Never fails for the vendored data model.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String> {
    Ok(value.serialize().to_json_pretty())
}

/// Parses JSON text into any deserializable type.
///
/// # Errors
///
/// Fails on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let value = parse_value(s)?;
    Ok(T::deserialize(&value)?)
}

/// Converts a [`Value`] tree into a concrete type.
///
/// # Errors
///
/// Fails when the tree's shape does not match `T`.
pub fn from_value<T: serde::Deserialize>(value: Value) -> Result<T> {
    Ok(T::deserialize(&value)?)
}

/// Converts any serializable value into a [`Value`] tree.
///
/// # Errors
///
/// Never fails for the vendored data model.
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value> {
    Ok(value.serialize())
}

#[doc(hidden)]
pub fn __json_to_value<T: serde::Serialize>(value: T) -> Value {
    value.serialize()
}

/// Builds a [`Value`] from a JSON-shaped literal. Supports the subset
/// the workspace uses: `null`, object literals with string-literal keys,
/// array literals, and plain serializable expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $value:expr),* $(,)? }) => {
        $crate::Value::Map(vec![
            $( (($key).to_string(), $crate::__json_to_value(&$value)) ),*
        ])
    };
    ([ $($value:expr),* $(,)? ]) => {
        $crate::Value::Seq(vec![ $( $crate::__json_to_value(&$value) ),* ])
    };
    ($other:expr) => { $crate::__json_to_value(&$other) };
}

// ---------------------------------------------------------------------
// JSON text parser (recursive descent over a char buffer).
// ---------------------------------------------------------------------

fn parse_value(text: &str) -> Result<Value> {
    let chars: Vec<char> = text.chars().collect();
    let mut parser = Parser { chars, pos: 0 };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.chars.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    Ok(value)
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<char> {
        let c = self
            .peek()
            .ok_or_else(|| Error::new("unexpected end of JSON input"))?;
        self.pos += 1;
        Ok(c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: char) -> Result<()> {
        let got = self.bump()?;
        if got == c {
            Ok(())
        } else {
            Err(Error::new(format!("expected `{}`, found `{}`", c, got)))
        }
    }

    fn expect_keyword(&mut self, word: &str) -> Result<()> {
        for expected in word.chars() {
            self.expect(expected)?;
        }
        Ok(())
    }

    fn value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some('n') => {
                self.expect_keyword("null")?;
                Ok(Value::Null)
            }
            Some('t') => {
                self.expect_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some('f') => {
                self.expect_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some('"') => Ok(Value::Str(self.string()?)),
            Some('[') => self.array(),
            Some('{') => self.object(),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error::new(format!("unexpected character `{}`", c))),
            None => Err(Error::new("unexpected end of JSON input")),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump()? {
                ',' => continue,
                ']' => return Ok(Value::Seq(items)),
                c => return Err(Error::new(format!("expected `,` or `]`, found `{}`", c))),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect('{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.bump()? {
                ',' => continue,
                '}' => return Ok(Value::Map(entries)),
                c => return Err(Error::new(format!("expected `,` or `}}`, found `{}`", c))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.bump()? {
                '"' => return Ok(out),
                '\\' => match self.bump()? {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    '/' => out.push('/'),
                    'b' => out.push('\u{0008}'),
                    'f' => out.push('\u{000C}'),
                    'n' => out.push('\n'),
                    'r' => out.push('\r'),
                    't' => out.push('\t'),
                    'u' => {
                        let first = self.hex4()?;
                        let code = if (0xD800..0xDC00).contains(&first) {
                            // Surrogate pair: the low half must follow.
                            self.expect('\\')?;
                            self.expect('u')?;
                            let low = self.hex4()?;
                            0x10000 + ((first - 0xD800) << 10) + (low - 0xDC00)
                        } else {
                            first
                        };
                        out.push(
                            char::from_u32(code).ok_or_else(|| Error::new("invalid \\u escape"))?,
                        );
                    }
                    c => return Err(Error::new(format!("invalid escape `\\{}`", c))),
                },
                c => out.push(c),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let mut code = 0u32;
        for _ in 0..4 {
            let c = self.bump()?;
            let digit = c
                .to_digit(16)
                .ok_or_else(|| Error::new(format!("invalid hex digit `{}`", c)))?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some('-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                '0'..='9' => self.pos += 1,
                '.' | 'e' | 'E' | '+' | '-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{}`", text)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested_document() {
        let text =
            r#"{"name":"pbg","dims":[16,32],"lr":0.1,"nested":{"ok":true,"none":null},"neg":-3}"#;
        let value: Value = from_str(text).unwrap();
        assert_eq!(value["name"].as_str(), Some("pbg"));
        assert_eq!(value["dims"][1].as_u64(), Some(32));
        assert_eq!(value["nested"]["ok"].as_bool(), Some(true));
        assert!(value["nested"]["none"].is_null());
        assert_eq!(value["neg"].as_i64(), Some(-3));
        let reparsed: Value = from_str(&to_string(&value).unwrap()).unwrap();
        assert_eq!(reparsed, value);
        let repretty: Value = from_str(&to_string_pretty(&value).unwrap()).unwrap();
        assert_eq!(repretty, value);
    }

    #[test]
    fn json_macro_builds_objects() {
        let v = json!({ "a": 1u32, "b": [1.5f64, 2.0], "s": "x" });
        assert_eq!(v["a"].as_u64(), Some(1));
        assert_eq!(v["b"][0].as_f64(), Some(1.5));
        assert_eq!(v["s"].as_str(), Some("x"));
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = Value::Str("line\nquote\"backslash\\tab\tunicode\u{1F600}".to_string());
        let reparsed: Value = from_str(&to_string(&original).unwrap()).unwrap();
        assert_eq!(reparsed, original);
        let escaped: Value = from_str(r#""smile 😀""#).unwrap();
        assert_eq!(escaped.as_str(), Some("smile \u{1F600}"));
    }
}
