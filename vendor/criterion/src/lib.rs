//! Minimal offline stand-in for the `criterion` crate.
//!
//! The workspace vendors its external dependencies because the build
//! environment has no network access to crates.io. This stand-in keeps
//! criterion's macro/builder API so `benches/*.rs` compile unchanged,
//! and measures mean wall-clock time per iteration with a warmup pass
//! and a fixed sample loop (no statistical analysis, plots, or HTML
//! reports). When the binary is run without `--bench` (e.g. by
//! `cargo test`), each benchmark executes a single smoke iteration.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level driver; collects settings and runs benchmarks eagerly.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    bench_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(500),
            bench_mode: std::env::args().any(|a| a == "--bench"),
        }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark records.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the target measurement budget per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warmup budget (accepted for API compatibility).
    #[must_use]
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(self, None, &id.0, f, None);
        self
    }
}

/// Benchmark identifier; renders as `function/parameter`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Identifier from a function name and parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", function.into(), parameter))
    }

    /// Identifier from just a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Units processed per iteration, used to report rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Logical elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A set of benchmarks sharing a name prefix and throughput settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Overrides the measurement budget for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(self.criterion, Some(&self.name), &id.0, f, self.throughput);
        self
    }

    /// Runs a benchmark that borrows an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_benchmark(
            self.criterion,
            Some(&self.name),
            &id.0,
            |b| f(b, input),
            self.throughput,
        );
        self
    }

    /// Ends the group (no-op beyond API compatibility).
    pub fn finish(self) {}
}

/// Batch sizing hints (accepted for API compatibility).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// Fresh setup every iteration.
    PerIteration,
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on values produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }

    /// Like [`Bencher::iter_batched`] with mutable borrows of the setup
    /// value.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_benchmark<F>(
    criterion: &Criterion,
    group: Option<&str>,
    id: &str,
    mut f: F,
    throughput: Option<Throughput>,
) where
    F: FnMut(&mut Bencher),
{
    let full_name = match group {
        Some(g) => format!("{}/{}", g, id),
        None => id.to_string(),
    };

    if !criterion.bench_mode {
        // Test mode (`cargo test`): one smoke iteration for coverage.
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        return;
    }

    // Calibration: time one iteration to size the sample loops.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let estimate = bencher.elapsed.max(Duration::from_nanos(1));
    let budget_per_sample = criterion.measurement_time / criterion.sample_size as u32;
    let iters_per_sample =
        (budget_per_sample.as_nanos() / estimate.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut samples = Vec::with_capacity(criterion.sample_size);
    for _ in 0..criterion.sample_size {
        let mut bencher = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        samples.push(bencher.elapsed.as_secs_f64() / iters_per_sample as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;

    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!("  {:>12}/s", format_rate(n as f64 / median)),
        Throughput::Bytes(n) => format!("  {:>12}B/s", format_rate(n as f64 / median)),
    });
    println!(
        "{:<50} median {:>12}  mean {:>12}{}",
        full_name,
        format_time(median),
        format_time(mean),
        rate.unwrap_or_default()
    );
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{:.3} s", secs)
    }
}

fn format_rate(per_sec: f64) -> String {
    if per_sec >= 1e9 {
        format!("{:.2} G", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.2} M", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.2} K", per_sec / 1e3)
    } else {
        format!("{:.1} ", per_sec)
    }
}

/// Declares a benchmark group runner function, mirroring criterion's
/// macro forms (`name=/config=/targets=` and the positional shorthand).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),*
        );
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $( $group(); )*
        }
    };
}
