//! Minimal offline stand-in for the `crossbeam` crate.
//!
//! The workspace vendors its external dependencies because the build
//! environment has no network access to crates.io. Provides the two
//! pieces pbg-rs uses: [`thread::scope`] (over `std::thread::scope`) and
//! [`channel`] (over `std::sync::mpsc`).

pub mod thread {
    //! Scoped threads with the crossbeam 0.8 calling convention
    //! (`scope(|s| { s.spawn(|_| ...) })`), backed by `std::thread::scope`.

    use std::any::Any;

    /// Error payload of a panicked scope (crossbeam returns it; we only
    /// surface panics through `join`/scope-exit like std does).
    pub type PanicPayload = Box<dyn Any + Send + 'static>;

    /// A scope handle passed to [`scope`] closures and to spawned threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a thread spawned in a [`Scope`].
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, returning its value or panic
        /// payload.
        pub fn join(self) -> Result<T, PanicPayload> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope. The closure receives the
        /// scope (crossbeam convention) so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || {
                    let scope = Scope { inner };
                    f(&scope)
                }),
            }
        }
    }

    /// Runs `f` with a scope in which borrowing threads can be spawned;
    /// all spawned threads are joined before `scope` returns.
    ///
    /// Unlike crossbeam, a panic in an unjoined child propagates as a
    /// panic here rather than an `Err` — every call site immediately
    /// `expect`s the result, so the observable behavior is identical.
    ///
    /// # Errors
    ///
    /// Never returns `Err` (kept for crossbeam API compatibility).
    pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| {
            let scope = Scope { inner: s };
            f(&scope)
        }))
    }
}

pub mod channel {
    //! Multi-producer channels with the crossbeam calling convention,
    //! backed by `std::sync::mpsc`.

    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    /// Sending half of an unbounded channel.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, failing only when the receiver is gone.
        ///
        /// # Errors
        ///
        /// Returns the message back when the channel is disconnected.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.inner.send(msg)
        }
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives.
        ///
        /// # Errors
        ///
        /// Fails when all senders are gone and the queue is drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv()
        }

        /// Non-blocking receive.
        ///
        /// # Errors
        ///
        /// Fails when empty or disconnected.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv()
        }
    }

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }
}
