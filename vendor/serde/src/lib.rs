//! Minimal offline stand-in for the `serde` crate.
//!
//! The workspace vendors its external dependencies because the build
//! environment has no network access to crates.io. Instead of serde's
//! visitor-based zero-copy architecture, this stand-in routes every type
//! through one self-describing value tree, [`Content`] — the same shape
//! `serde_json::Value` exposes. `#[derive(Serialize, Deserialize)]`
//! (re-exported from the companion `serde_derive`) covers the shapes the
//! workspace uses: named-field structs, newtype structs, and unit-only
//! enums.

use std::fmt;
use std::time::Duration;

pub use serde_derive::{Deserialize, Serialize};

/// Self-describing value tree: the data model every `Serialize` /
/// `Deserialize` implementation converts through. Maps preserve
/// insertion order so emitted JSON matches declaration order.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null` (also the encoding of `None`).
    Null,
    /// Boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer (positives normalize to [`Content::U64`]).
    I64(i64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence (`Vec`, tuple).
    Seq(Vec<Content>),
    /// Ordered key-value map (structs, `Duration`).
    Map(Vec<(String, Content)>),
}

static NULL_CONTENT: Content = Content::Null;

impl Content {
    /// Integer value if non-negative integral.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Content::U64(v) => Some(*v),
            Content::I64(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// Signed integer value if integral and in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Content::U64(v) => i64::try_from(*v).ok(),
            Content::I64(v) => Some(*v),
            _ => None,
        }
    }

    /// Numeric value as f64.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Content::U64(v) => Some(*v as f64),
            Content::I64(v) => Some(*v as f64),
            Content::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// String contents, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean value, if a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Content::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Sequence elements, if a sequence.
    pub fn as_array(&self) -> Option<&Vec<Content>> {
        match self {
            Content::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// Map entry by key, if a map containing it.
    pub fn get(&self, key: &str) -> Option<&Content> {
        match self {
            Content::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// `true` for [`Content::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Content::Null)
    }

    /// Compact JSON rendering.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out, None, 0);
        out
    }

    /// Pretty JSON rendering (two-space indent).
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out, Some(2), 0);
        out
    }

    fn write_json(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Content::Null => out.push_str("null"),
            Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Content::U64(v) => out.push_str(&v.to_string()),
            Content::I64(v) => out.push_str(&v.to_string()),
            Content::F64(v) => {
                if v.is_finite() {
                    // {:?} keeps the shortest roundtrip form and a
                    // trailing .0 on integral floats, like serde_json.
                    out.push_str(&format!("{:?}", v));
                } else {
                    out.push_str("null");
                }
            }
            Content::Str(s) => write_json_string(out, s),
            Content::Seq(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_newline_indent(out, indent, depth + 1);
                    item.write_json(out, indent, depth + 1);
                }
                write_newline_indent(out, indent, depth);
                out.push(']');
            }
            Content::Map(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_newline_indent(out, indent, depth + 1);
                    write_json_string(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write_json(out, indent, depth + 1);
                }
                write_newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn write_newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Content {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}

impl std::ops::Index<&str> for Content {
    type Output = Content;

    fn index(&self, key: &str) -> &Content {
        self.get(key).unwrap_or(&NULL_CONTENT)
    }
}

impl std::ops::Index<usize> for Content {
    type Output = Content;

    fn index(&self, idx: usize) -> &Content {
        match self {
            Content::Seq(items) => items.get(idx).unwrap_or(&NULL_CONTENT),
            _ => &NULL_CONTENT,
        }
    }
}

/// Serialization/deserialization failure: a message describing the
/// mismatch between the value tree and the target type.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error from any displayable message.
    pub fn custom<T: fmt::Display>(msg: T) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Converts a value into the [`Content`] data model.
pub trait Serialize {
    /// Builds the value tree for `self`.
    fn serialize(&self) -> Content;
}

/// Reconstructs a value from the [`Content`] data model.
pub trait Deserialize: Sized {
    /// Parses `content` into `Self`.
    ///
    /// # Errors
    ///
    /// Fails when the tree's shape does not match `Self`.
    fn deserialize(content: &Content) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Content {
        (**self).serialize()
    }
}

impl Serialize for Content {
    fn serialize(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn deserialize(content: &Content) -> Result<Self, Error> {
        Ok(content.clone())
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(content: &Content) -> Result<Self, Error> {
        content
            .as_bool()
            .ok_or_else(|| Error::custom("expected bool"))
    }
}

macro_rules! impl_serde_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Content {
                Content::U64(*self as u64)
            }
        }

        impl Deserialize for $t {
            fn deserialize(content: &Content) -> Result<Self, Error> {
                let v = content
                    .as_u64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(v)
                    .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}

impl_serde_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Content {
                let v = *self as i64;
                if v >= 0 {
                    Content::U64(v as u64)
                } else {
                    Content::I64(v)
                }
            }
        }

        impl Deserialize for $t {
            fn deserialize(content: &Content) -> Result<Self, Error> {
                let v = content
                    .as_i64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(v)
                    .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}

impl_serde_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(content: &Content) -> Result<Self, Error> {
        content
            .as_f64()
            .ok_or_else(|| Error::custom("expected f64"))
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Content {
        // Route through the f32's shortest decimal form so JSON shows
        // "0.1" rather than the widened f64 0.10000000149011612.
        let shortest: f64 = format!("{:?}", self).parse().unwrap_or(f64::from(*self));
        Content::F64(shortest)
    }
}

impl Deserialize for f32 {
    fn deserialize(content: &Content) -> Result<Self, Error> {
        content
            .as_f64()
            .map(|v| v as f32)
            .ok_or_else(|| Error::custom("expected f32"))
    }
}

impl Serialize for String {
    fn serialize(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(content: &Content) -> Result<Self, Error> {
        content
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn serialize(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for std::path::PathBuf {
    fn serialize(&self) -> Content {
        Content::Str(self.to_string_lossy().into_owned())
    }
}

impl Deserialize for std::path::PathBuf {
    fn deserialize(content: &Content) -> Result<Self, Error> {
        content
            .as_str()
            .map(std::path::PathBuf::from)
            .ok_or_else(|| Error::custom("expected path string"))
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Content {
        self.as_slice().serialize()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(content: &Content) -> Result<Self, Error> {
        content
            .as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Content {
        match self {
            Some(v) => v.serialize(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl Serialize for Duration {
    fn serialize(&self) -> Content {
        Content::Map(vec![
            ("secs".to_string(), Content::U64(self.as_secs())),
            (
                "nanos".to_string(),
                Content::U64(self.subsec_nanos().into()),
            ),
        ])
    }
}

impl Deserialize for Duration {
    fn deserialize(content: &Content) -> Result<Self, Error> {
        let secs = content
            .get("secs")
            .and_then(Content::as_u64)
            .ok_or_else(|| Error::custom("expected duration map with `secs`"))?;
        let nanos = content
            .get("nanos")
            .and_then(Content::as_u64)
            .ok_or_else(|| Error::custom("expected duration map with `nanos`"))?;
        Ok(Duration::new(secs, nanos as u32))
    }
}

/// Looks up a struct field by name for derived `Deserialize` impls.
/// Missing fields deserialize from `Null` so `Option` fields default to
/// `None`; other types report the field as missing.
///
/// # Errors
///
/// Fails when the field is absent (for non-optional types) or its value
/// has the wrong shape.
pub fn get_field<T: Deserialize>(fields: &[(String, Content)], name: &str) -> Result<T, Error> {
    match fields.iter().find(|(k, _)| k == name) {
        Some((_, value)) => {
            T::deserialize(value).map_err(|e| Error::custom(format!("field `{}`: {}", name, e)))
        }
        None => T::deserialize(&Content::Null)
            .map_err(|_| Error::custom(format!("missing field `{}`", name))),
    }
}
