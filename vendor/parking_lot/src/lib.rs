//! Minimal offline stand-in for the `parking_lot` crate.
//!
//! The workspace vendors its external dependencies because the build
//! environment has no network access to crates.io. Provides poison-free
//! `Mutex`, `RwLock`, and `Condvar` with parking_lot's infallible API,
//! backed by `std::sync` (poisoning is swallowed, matching parking_lot's
//! semantics of continuing after a panicking holder).

use std::sync;
use std::time::Duration;

/// Guard for a locked [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Guard for a read-locked [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard for a write-locked [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutex whose `lock` never fails (parking_lot API).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader-writer lock whose acquisitions never fail (parking_lot API).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Result of a timed condition-variable wait.
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// `true` when the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable with parking_lot's `&mut guard` API.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified, atomically releasing and reacquiring the
    /// guard's mutex.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // std's Condvar consumes and returns the guard; emulate
        // parking_lot's in-place API with a scratch swap.
        take_guard(guard, |g| match self.inner.wait(g) {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        });
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        take_guard(guard, |g| {
            let (g, result) = match self.inner.wait_timeout(g, timeout) {
                Ok((g, r)) => (g, r),
                Err(poisoned) => {
                    let (g, r) = poisoned.into_inner();
                    (g, r)
                }
            };
            timed_out = result.timed_out();
            g
        });
        WaitTimeoutResult { timed_out }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Runs `f` on the guard by value, storing the returned guard back.
fn take_guard<T: ?Sized>(
    slot: &mut MutexGuard<'_, T>,
    f: impl FnOnce(sync::MutexGuard<'_, T>) -> sync::MutexGuard<'_, T>,
) {
    // SAFETY-free guard shuffle: we cannot move out of `&mut Guard`
    // without a placeholder, so wrap the std wait in an abort-on-unwind
    // scope via replace_with-style manual code. Instead of unsafe, use
    // Option dance at the call sites that own the Option. Since std
    // guards have no Default, fall back to ptr::read/write semantics
    // guarded against unwinds by aborting (wait only panics on poison,
    // which we already map away).
    struct AbortOnDrop;
    impl Drop for AbortOnDrop {
        fn drop(&mut self) {
            std::process::abort();
        }
    }
    let bomb = AbortOnDrop;
    unsafe {
        let guard = std::ptr::read(slot);
        let guard = f(guard);
        std::ptr::write(slot, guard);
    }
    std::mem::forget(bomb);
}
