//! Observability end-to-end: cross-rank distributed tracing and live
//! Prometheus exposition over a real loopback cluster.
//!
//! This drill pins the PR's acceptance criteria:
//!
//! 1. A 2-rank loopback training run with tracing on yields, per rank, a
//!    JSONL span file whose `rpc` spans carry wire-propagated span ids —
//!    and the lock server's registry holds `handle` spans whose
//!    `parent_span` equals a trainer rank's `rpc` span id. That is the
//!    cross-process parent/child link: the request's trace context rode
//!    the frame's reserved header bytes.
//! 2. Merging the per-rank JSONL streams and exporting with
//!    [`pbg::telemetry::export::to_chrome_trace`] produces one valid
//!    Chrome/Perfetto trace-event JSON with per-rank process tracks and
//!    flow arrows for the linked RPC.
//! 3. A live `/metrics` scrape during the run returns Prometheus text
//!    exposition that passes the format lint.

use pbg::core::config::PbgConfig;
use pbg::core::model::Model;
use pbg::distsim::lockserver::LockServer;
use pbg::distsim::{EpochLock, NetworkModel, ParameterServer, PartitionServer};
use pbg::graph::edges::{Edge, EdgeList};
use pbg::graph::schema::GraphSchema;
use pbg::net::{
    train_rank, NetLock, NetParams, NetPartitions, NetServer, RankConfig, RankServices,
};
use pbg::telemetry::context::trace_id_from_seed;
use pbg::telemetry::snapshot::lint_prometheus;
use pbg::telemetry::trace::{read_jsonl, TraceEvent, TraceValue};
use pbg::telemetry::{JsonlSink, MetricsServer, Registry};
use pbg::tensor::rng::Xoshiro256;
use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

const NUM_NODES: u32 = 60;
const NUM_EDGES: usize = 400;
const PARTS: u32 = 2;
const SEED: u64 = 77;

fn dataset() -> (GraphSchema, EdgeList) {
    let schema = GraphSchema::homogeneous(NUM_NODES, PARTS).expect("schema");
    let mut rng = Xoshiro256::seed_from_u64(99);
    let mut edges = EdgeList::new();
    while edges.len() < NUM_EDGES {
        let src = rng.gen_range(NUM_NODES as u64) as u32;
        let mut dst = rng.gen_range(NUM_NODES as u64) as u32;
        dst -= dst % PARTS;
        dst += src % PARTS;
        if dst >= NUM_NODES || dst == src {
            continue;
        }
        edges.push(Edge::new(src, 0u32, dst));
    }
    (schema, edges)
}

fn config() -> PbgConfig {
    PbgConfig::builder()
        .dim(8)
        .epochs(1)
        .batch_size(100)
        .chunk_size(25)
        .uniform_negatives(10)
        .threads(1)
        .seed(SEED)
        .build()
        .expect("config")
}

/// Serializes a registry's drained events through the production JSONL
/// path and parses them back — the same bytes a per-rank `--telemetry`
/// file holds.
fn drain_to_events(registry: &Registry) -> Vec<TraceEvent> {
    let mut buf = Vec::new();
    {
        let mut sink = JsonlSink::new(&mut buf);
        registry.drain_into(&mut sink).expect("drain");
    }
    read_jsonl(BufReader::new(buf.as_slice())).expect("reparse")
}

fn field_str<'a>(event: &'a TraceEvent, name: &str) -> Option<&'a str> {
    match event.field(name) {
        Some(TraceValue::Str(s)) => Some(s),
        _ => None,
    }
}

/// Minimal HTTP GET against the metrics server; returns the body.
fn http_get(addr: &str, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect metrics");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
    )
    .expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    let (head, body) = response.split_once("\r\n\r\n").expect("header/body split");
    assert!(head.contains(" 200 "), "bad status: {head}");
    body.to_string()
}

#[test]
fn cross_rank_spans_link_and_metrics_scrape_lints() {
    let (schema, edges) = dataset();
    let cfg = config();

    // --- servers, each with a traced rank-tagged registry (role ranks) ---
    let model = Model::new(schema.clone(), cfg.clone()).expect("model");
    let net = Arc::new(NetworkModel::new(1e9, 0.0));
    let lock_state = Arc::new(EpochLock::new(LockServer::new(), cfg.epochs, PARTS, PARTS));
    let part_state = Arc::new(PartitionServer::new(
        model.store_layout(),
        2,
        Arc::clone(&net),
    ));
    let param_state = Arc::new(ParameterServer::new(1, net));

    let lock_reg = Registry::new();
    lock_reg.set_rank(1000);
    lock_reg.set_trace_id(trace_id_from_seed(SEED));
    lock_reg.set_tracing(true);
    let part_reg = Registry::new();
    part_reg.set_rank(1001);
    part_reg.set_trace_id(trace_id_from_seed(SEED));
    part_reg.set_tracing(true);

    let lock_srv = NetServer::lock_with("127.0.0.1:0", lock_state, &lock_reg).expect("lock");
    let part_srv =
        NetServer::partitions_with("127.0.0.1:0", part_state, &part_reg).expect("partitions");
    let param_srv =
        NetServer::params_with("127.0.0.1:0", param_state, Registry::disabled()).expect("params");

    // --- live /metrics on the lock server's registry, scraped mid-test ---
    let metrics_srv = MetricsServer::serve("127.0.0.1:0", lock_reg.clone()).expect("metrics");
    let metrics_addr = metrics_srv.local_addr().to_string();

    // --- two trainer ranks over real sockets, tracing on ---
    let rank_regs: Vec<Registry> = (0..2)
        .map(|_| {
            let r = Registry::new();
            r.set_tracing(true);
            r
        })
        .collect();
    std::thread::scope(|scope| {
        for (rank, reg) in rank_regs.iter().enumerate() {
            let (schema, edges, cfg) = (&schema, &edges, cfg.clone());
            let (lock_addr, part_addr, param_addr) = (
                lock_srv.local_addr().to_string(),
                part_srv.local_addr().to_string(),
                param_srv.local_addr().to_string(),
            );
            scope.spawn(move || {
                let services = RankServices {
                    lock: NetLock::new(lock_addr, reg),
                    partitions: NetPartitions::new(part_addr, reg),
                    params: NetParams::new(param_addr, reg),
                };
                train_rank(schema, edges, cfg, &services, &RankConfig::new(rank), reg)
                    .expect("train_rank");
            });
        }
    });

    // --- criterion 3: the scrape is valid Prometheus exposition ---
    let scraped = http_get(&metrics_addr, "/metrics");
    lint_prometheus(&scraped).unwrap_or_else(|e| panic!("scrape failed lint: {e}\n{scraped}"));
    assert!(
        scraped.contains("net_requests_handled"),
        "lock server handled requests during the run:\n{scraped}"
    );

    // --- criterion 1: cross-rank parent/child linkage ---
    let rank_events: Vec<Vec<TraceEvent>> = rank_regs.iter().map(drain_to_events).collect();
    let lock_events = drain_to_events(&lock_reg);
    let part_events = drain_to_events(&part_reg);

    // trainer-side lock-acquire rpc spans, keyed by wire-propagated span id
    let mut lock_rpc_ids = Vec::new();
    for (rank, events) in rank_events.iter().enumerate() {
        for e in events {
            assert_eq!(
                e.field_i64("rank"),
                Some(rank as i64),
                "every trainer event is rank-tagged: {e:?}"
            );
            if e.name == "rpc" && field_str(e, "tag") == Some("lock_acquire") {
                let id = e.field_i64("span_id").expect("rpc span carries its id");
                // span ids partition by rank: high bits are rank + 1
                assert_eq!(id >> 40, rank as i64 + 1, "span id {id:#x} of rank {rank}");
                lock_rpc_ids.push(id);
            }
        }
    }
    assert!(!lock_rpc_ids.is_empty(), "ranks recorded lock_acquire rpcs");

    // lock-server handle spans point straight back at them
    let handle_parents: Vec<i64> = lock_events
        .iter()
        .filter(|e| e.name == "handle" && field_str(e, "tag") == Some("lock_acquire"))
        .map(|e| e.field_i64("parent_span").expect("handle records parent"))
        .collect();
    assert!(
        !handle_parents.is_empty(),
        "lock server recorded handle spans"
    );
    let linked: Vec<i64> = lock_rpc_ids
        .iter()
        .copied()
        .filter(|id| handle_parents.contains(id))
        .collect();
    assert!(
        !linked.is_empty(),
        "no lock-server handle span is a child of any trainer lock_acquire rpc \
         (rpc ids {lock_rpc_ids:?}, handle parents {handle_parents:?})"
    );
    for e in &lock_events {
        assert_eq!(
            e.field_i64("rank"),
            Some(1000),
            "server events carry the role rank"
        );
    }

    // partition transfers link the same way (checkout/checkin handles)
    assert!(
        part_events.iter().any(|e| e.name == "handle"),
        "partition server recorded handle spans"
    );

    // --- criterion 2: one merged Perfetto timeline over all ranks ---
    let mut merged: Vec<TraceEvent> = Vec::new();
    for events in &rank_events {
        merged.extend(events.iter().cloned());
    }
    merged.extend(lock_events.iter().cloned());
    merged.extend(part_events.iter().cloned());
    let json = pbg::telemetry::export::to_chrome_trace(&merged);
    assert!(
        json.starts_with("{\"traceEvents\":["),
        "trace-event envelope"
    );
    for pid in [0, 1, 1000] {
        assert!(
            json.contains(&format!("\"process_name\",\"pid\":{pid}")),
            "rank {pid} has a named process track"
        );
    }
    // the linked RPC appears as a flow: start on the trainer, end on the
    // server, same hex id
    let flow_id = format!("{:#x}", linked[0]);
    assert!(
        json.contains(&format!(
            "\"ph\":\"s\",\"name\":\"rpc_flow\",\"cat\":\"rpc\",\"id\":\"{flow_id}\""
        )),
        "flow start for span {flow_id}"
    );
    assert!(
        json.contains(&format!(
            "\"ph\":\"f\",\"bp\":\"e\",\"name\":\"rpc_flow\",\"cat\":\"rpc\",\"id\":\"{flow_id}\""
        )),
        "flow end for span {flow_id}"
    );
}
