//! Partitioned / disk-swapped training across the public API: Table 3
//! (left) in miniature — quality flat in P, memory falling in P.

use pbg::core::config::PbgConfig;
use pbg::core::eval::{CandidateSampling, LinkPredictionEval};
use pbg::core::trainer::{Storage, Trainer};
use pbg::datagen::presets;
use pbg::graph::ordering::BucketOrdering;
use pbg::graph::split::EdgeSplit;

fn config(epochs: usize) -> PbgConfig {
    PbgConfig::builder()
        .dim(32)
        .epochs(epochs)
        .batch_size(500)
        .chunk_size(50)
        .uniform_negatives(50)
        .threads(2)
        .build()
        .unwrap()
}

fn mrr_of(trainer: &Trainer, split: &EdgeSplit) -> f64 {
    LinkPredictionEval {
        num_candidates: 100,
        sampling: CandidateSampling::Prevalence,
        ..Default::default()
    }
    .evaluate(&trainer.snapshot(), &split.test, &split.train, &[])
    .mrr
}

#[test]
fn quality_flat_and_memory_falls_with_partitions() {
    let dataset = presets::freebase_like(0.000005, 9); // ~600 entities
    let split = EdgeSplit::ninety_five_five(&dataset.edges, 9);
    let mut results = Vec::new();
    for p in [1u32, 4, 8] {
        let schema = dataset.schema_with_partitions(p);
        let dir = std::env::temp_dir().join(format!("pbg_int_part_{p}_{}", std::process::id()));
        let storage = if p == 1 {
            Storage::InMemory
        } else {
            Storage::Disk(dir.clone())
        };
        let mut t = Trainer::with_storage(schema, &split.train, config(5), storage).unwrap();
        t.train();
        results.push((p, mrr_of(&t, &split), t.store().peak_bytes()));
        std::fs::remove_dir_all(&dir).ok();
    }
    let (_, mrr1, mem1) = results[0];
    for &(p, mrr, mem) in &results[1..] {
        assert!(
            mem < mem1,
            "P={p}: peak {mem} not below unpartitioned {mem1}"
        );
        assert!(mrr > 0.5 * mrr1, "P={p}: MRR {mrr} collapsed vs P=1 {mrr1}");
    }
    // P=8 peak must be well under half of the full model
    let (_, _, mem8) = results[2];
    assert!(
        (mem8 as f64) < 0.45 * mem1 as f64,
        "P=8 peak {mem8} vs full {mem1}"
    );
}

#[test]
fn all_invariant_satisfying_orderings_work() {
    let dataset = presets::livejournal_like(0.0001, 10); // ~500 nodes
    let split = EdgeSplit::seventy_five_twenty_five(&dataset.edges, 10);
    for ordering in [
        BucketOrdering::InsideOut,
        BucketOrdering::RowMajor,
        BucketOrdering::Chained,
    ] {
        let cfg = PbgConfig::builder()
            .dim(16)
            .epochs(4)
            .batch_size(200)
            .chunk_size(25)
            .uniform_negatives(25)
            .threads(2)
            .bucket_ordering(ordering)
            .build()
            .unwrap();
        let schema = dataset.schema_with_partitions(4);
        let mut t = Trainer::new(schema, &split.train, cfg).unwrap();
        t.train();
        let mrr = mrr_of(&t, &split);
        assert!(mrr > 0.05, "{ordering:?}: MRR {mrr}");
    }
}

#[test]
fn stratified_bucket_passes_match_plain_epochs() {
    let dataset = presets::livejournal_like(0.0001, 12);
    let split = EdgeSplit::seventy_five_twenty_five(&dataset.edges, 12);
    let schema = dataset.schema_with_partitions(2);
    let plain = {
        let mut t = Trainer::new(schema.clone(), &split.train, config(4)).unwrap();
        t.train();
        mrr_of(&t, &split)
    };
    let stratified = {
        let cfg = PbgConfig::builder()
            .dim(32)
            .epochs(4)
            .batch_size(500)
            .chunk_size(50)
            .uniform_negatives(50)
            .threads(2)
            .bucket_passes(3)
            .build()
            .unwrap();
        let mut t = Trainer::new(schema, &split.train, cfg).unwrap();
        t.train();
        mrr_of(&t, &split)
    };
    assert!(
        stratified > 0.5 * plain,
        "stratified {stratified} vs plain {plain}"
    );
}
