//! Determinism regression tests.
//!
//! With `threads = 1` training is a fixed sequence of float operations:
//! seeded `Xoshiro256` draws, relation-grouped batches in a deterministic
//! order, and kernels whose summation order is a pure function of shape
//! (the scoped-thread row split is bit-identical to the serial kernel and
//! never engages at training-chunk shapes anyway). So two runs must agree
//! *bit for bit* — and any future kernel rewrite that silently changes
//! summation order shows up as a diff against the golden score vector
//! committed in `tests/golden_scores_threads1.txt`.
//!
//! To regenerate the golden file after an intentional numeric change:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test --test determinism
//! ```

use pbg::core::config::PbgConfig;
use pbg::core::trainer::Trainer;
use pbg::datagen::social::SocialGraphConfig;
use pbg::graph::edges::EdgeList;
use pbg::graph::schema::GraphSchema;
use pbg::tensor::kernels::{dispatch, Variant};

/// The golden vectors were recorded under the scalar kernel path; the
/// AVX2 variant fuses multiply-adds and differs by ULPs, so every test in
/// this binary pins the dispatcher before any kernel runs. (All tests
/// force the same value, so concurrent test threads can't race.)
fn pin_scalar_kernels() {
    let active = dispatch::force(Variant::Scalar);
    assert_eq!(
        active,
        Variant::Scalar,
        "kernel dispatch was already resolved to {active:?}; \
         golden comparisons require the scalar variant"
    );
}

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/golden_scores_threads1.txt"
);
const NUM_NODES: u32 = 200;
const SCORED_EDGES: usize = 32;

fn dataset() -> (GraphSchema, EdgeList) {
    let graph = SocialGraphConfig {
        num_nodes: NUM_NODES,
        num_edges: 2_000,
        num_communities: 8,
        intra_prob: 0.8,
        zipf_exponent: 1.0,
        seed: 97,
    };
    let (edges, _) = graph.generate();
    (graph.schema(1), edges)
}

fn config() -> PbgConfig {
    PbgConfig::builder()
        .dim(16)
        .epochs(2)
        .batch_size(200)
        .chunk_size(25)
        .uniform_negatives(25)
        .threads(1)
        .seed(1234)
        .build()
        .unwrap()
}

/// Trains once and returns (flat embedding table, scores of the first
/// [`SCORED_EDGES`] edges under the dot similarity).
fn train_and_score() -> (Vec<f32>, Vec<f32>) {
    let (schema, edges) = dataset();
    let mut trainer = Trainer::new(schema, &edges, config()).unwrap();
    trainer.train();
    let model = trainer.snapshot();
    let mut table = Vec::new();
    for node in 0..NUM_NODES {
        table.extend_from_slice(model.embedding(0, node));
    }
    let scores: Vec<f32> = (0..SCORED_EDGES.min(edges.len()))
        .map(|i| {
            let src = model.embedding(0, edges.sources()[i]);
            let dst = model.embedding(0, edges.destinations()[i]);
            src.iter().zip(dst).map(|(a, b)| a * b).sum()
        })
        .collect();
    (table, scores)
}

#[test]
fn threads1_training_is_bit_identical_across_runs() {
    pin_scalar_kernels();
    let (table1, scores1) = train_and_score();
    let (table2, scores2) = train_and_score();
    assert_eq!(table1.len(), table2.len());
    for (i, (a, b)) in table1.iter().zip(&table2).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "embedding element {i} differs across identical runs: {a} vs {b}"
        );
    }
    for (i, (a, b)) in scores1.iter().zip(&scores2).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "score {i} differs: {a} vs {b}");
    }
}

#[test]
fn threads1_scores_match_committed_golden() {
    pin_scalar_kernels();
    let (_, scores) = train_and_score();
    let rendered: String = scores
        .iter()
        .map(|s| format!("{:08x} # {s:e}\n", s.to_bits()))
        .collect();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, &rendered).unwrap();
        eprintln!("golden file updated: {GOLDEN_PATH}");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH).unwrap_or_else(|e| {
        panic!("cannot read {GOLDEN_PATH}: {e}; run with UPDATE_GOLDEN=1 to create it")
    });
    let want: Vec<u32> = golden
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| {
            let hex = l.split('#').next().unwrap().trim();
            u32::from_str_radix(hex, 16).unwrap_or_else(|e| panic!("bad golden line {l:?}: {e}"))
        })
        .collect();
    assert_eq!(
        scores.len(),
        want.len(),
        "golden has {} scores, run produced {}",
        want.len(),
        scores.len()
    );
    for (i, (&got, &bits)) in scores.iter().zip(&want).enumerate() {
        let want_f = f32::from_bits(bits);
        assert_eq!(
            got.to_bits(),
            bits,
            "score {i}: got {got:e} ({:08x}), golden {want_f:e} ({bits:08x}) — \
             a kernel or trainer change altered threads=1 numerics; if \
             intentional, regenerate with UPDATE_GOLDEN=1",
            got.to_bits()
        );
    }
}
