//! Networked distributed training over real loopback TCP.
//!
//! The headline claim (paper §3.3): distributing training across
//! machines does not change what is learned. With a conflict-free
//! bucket grid (every edge's endpoints share a partition, so only
//! diagonal buckets are non-empty and their updates touch disjoint
//! partitions) and paramless identity operators, a 2-rank cluster run
//! over 127.0.0.1 sockets must be **bit-identical** to the
//! single-machine `threads = 1` run — same seeds, same float ops, same
//! order within every partition.
//!
//! The score golden (`tests/golden_scores_net.txt`) pins those numbers
//! the same way `tests/determinism.rs` pins the single-machine ones; to
//! regenerate after an intentional numeric change:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test --test integration_net
//! ```
//!
//! The fault tests drive a `FaultPlan` over the same sockets: a rank
//! killed mid-bucket (lease held, partitions checked out, connections
//! dropped) must be reaped, its bucket retrained exactly once, and its
//! stale fenced check-ins rejected.

use pbg::core::config::PbgConfig;
use pbg::core::model::{Model, TrainedEmbeddings};
use pbg::core::trainer::Trainer;
use pbg::distsim::fault::{CrashFault, FaultPlan};
use pbg::distsim::lockserver::LockServer;
use pbg::distsim::{EpochLock, NetworkModel, ParameterServer, PartitionServer};
use pbg::graph::edges::{Edge, EdgeList};
use pbg::graph::schema::GraphSchema;
use pbg::net::{
    snapshot_model, train_rank, NetLock, NetParams, NetPartitions, NetServer, RankConfig,
    RankServices, RankStats,
};
use pbg::telemetry::Registry;
use pbg::tensor::kernels::{dispatch, Variant};
use pbg::tensor::rng::Xoshiro256;
use std::sync::Arc;
use std::time::Duration;

/// The golden vectors (and the single-machine ↔ cluster bit-identity
/// claim) were recorded under the scalar kernel path; AVX2's fused
/// multiply-adds differ by ULPs. Every test in this binary pins the
/// dispatcher before any kernel runs — all force the same value, so
/// concurrent test threads can't race.
fn pin_scalar_kernels() {
    let active = dispatch::force(Variant::Scalar);
    assert_eq!(
        active,
        Variant::Scalar,
        "kernel dispatch was already resolved to {active:?}; \
         golden comparisons require the scalar variant"
    );
}

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/golden_scores_net.txt"
);
const NUM_NODES: u32 = 120;
const NUM_EDGES: usize = 1_200;
const PARTS: u32 = 2;
const SCORED_EDGES: usize = 32;

/// A partitioned graph whose edges all stay inside one partition
/// (`src % PARTS == dst % PARTS`): only diagonal buckets are non-empty,
/// so buckets never share data and rank scheduling cannot affect floats.
fn dataset() -> (GraphSchema, EdgeList) {
    let schema = GraphSchema::homogeneous(NUM_NODES, PARTS).expect("schema");
    let mut rng = Xoshiro256::seed_from_u64(4242);
    let mut edges = EdgeList::new();
    while edges.len() < NUM_EDGES {
        let src = rng.gen_range(NUM_NODES as u64) as u32;
        let mut dst = rng.gen_range(NUM_NODES as u64) as u32;
        // steer dst into src's partition (partition = id % PARTS)
        dst -= dst % PARTS;
        dst += src % PARTS;
        if dst >= NUM_NODES || dst == src {
            continue;
        }
        edges.push(Edge::new(src, 0u32, dst));
    }
    (schema, edges)
}

fn config() -> PbgConfig {
    PbgConfig::builder()
        .dim(16)
        .epochs(2)
        .batch_size(200)
        .chunk_size(25)
        .uniform_negatives(25)
        .threads(1)
        .seed(1234)
        .build()
        .expect("config")
}

/// Flattens an embedding table for bitwise comparison.
fn table(model: &TrainedEmbeddings) -> Vec<f32> {
    let mut out = Vec::new();
    for node in 0..NUM_NODES {
        out.extend_from_slice(model.embedding(0, node));
    }
    out
}

fn scores(model: &TrainedEmbeddings, edges: &EdgeList) -> Vec<f32> {
    (0..SCORED_EDGES.min(edges.len()))
        .map(|i| {
            let src = model.embedding(0, edges.sources()[i]);
            let dst = model.embedding(0, edges.destinations()[i]);
            src.iter().zip(dst).map(|(a, b)| a * b).sum()
        })
        .collect()
}

fn single_machine() -> TrainedEmbeddings {
    let (schema, edges) = dataset();
    let mut trainer = Trainer::new(schema, &edges, config()).expect("trainer");
    trainer.train();
    trainer.snapshot()
}

/// The three servers behind one handle, with ephemeral loopback ports.
struct Servers {
    lock: NetServer,
    partitions: NetServer,
    params: NetServer,
    partition_state: Arc<PartitionServer>,
}

fn spawn_servers(schema: &GraphSchema, config: &PbgConfig, lease: Option<Duration>) -> Servers {
    let model = Model::new(schema.clone(), config.clone()).expect("server model");
    let layout = model.store_layout();
    let inner = match lease {
        Some(ttl) => LockServer::with_lease(ttl),
        None => LockServer::new(),
    };
    let lock = Arc::new(EpochLock::new(inner, config.epochs, PARTS, PARTS));
    let net = Arc::new(NetworkModel::new(1e9, 0.0));
    let partition_state = Arc::new(PartitionServer::new(layout, 2, Arc::clone(&net)));
    let params = Arc::new(ParameterServer::new(1, net));
    Servers {
        lock: NetServer::lock("127.0.0.1:0", lock).expect("bind lock"),
        partitions: NetServer::partitions("127.0.0.1:0", Arc::clone(&partition_state))
            .expect("bind partitions"),
        params: NetServer::params("127.0.0.1:0", params).expect("bind params"),
        partition_state,
    }
}

fn rank_services(
    servers: &Servers,
    telemetry: &Registry,
) -> RankServices<NetLock, NetPartitions, NetParams> {
    RankServices {
        lock: NetLock::new(servers.lock.local_addr().to_string(), telemetry),
        partitions: NetPartitions::new(servers.partitions.local_addr().to_string(), telemetry),
        params: NetParams::new(servers.params.local_addr().to_string(), telemetry),
    }
}

/// Runs `ranks` trainer ranks concurrently against `servers` and
/// returns their stats plus the final snapshot.
fn run_cluster(
    servers: &Servers,
    ranks: usize,
    fault_for: impl Fn(usize) -> FaultPlan + Sync,
) -> (Vec<RankStats>, TrainedEmbeddings) {
    let (schema, edges) = dataset();
    let stats: Vec<RankStats> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..ranks)
            .map(|rank| {
                let schema = &schema;
                let edges = &edges;
                let fault_for = &fault_for;
                scope.spawn(move || {
                    let telemetry = Registry::new();
                    let services = rank_services(servers, &telemetry);
                    let mut run = RankConfig::new(rank);
                    run.faults = fault_for(rank);
                    train_rank(schema, edges, config(), &services, &run, &telemetry)
                        .expect("train_rank")
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank"))
            .collect()
    });
    let telemetry = Registry::new();
    let services = rank_services(servers, &telemetry);
    let snapshot = snapshot_model(&schema, config(), &services.partitions, &services.params)
        .expect("snapshot");
    (stats, snapshot)
}

#[test]
fn loopback_two_ranks_bit_identical_to_single_machine() {
    pin_scalar_kernels();
    let (schema, edges) = dataset();
    let servers = spawn_servers(&schema, &config(), None);
    let (stats, net_model) = run_cluster(&servers, 2, |_| FaultPlan::none());

    let total_buckets: usize = stats.iter().map(|s| s.buckets_trained).sum();
    assert_eq!(
        total_buckets,
        config().epochs * (PARTS * PARTS) as usize,
        "every (epoch, bucket) pair trained exactly once across ranks"
    );
    assert!(stats.iter().all(|s| !s.crashed));

    let local_model = single_machine();
    let net_table = table(&net_model);
    let local_table = table(&local_model);
    assert_eq!(net_table.len(), local_table.len());
    for (i, (n, l)) in net_table.iter().zip(&local_table).enumerate() {
        assert_eq!(
            n.to_bits(),
            l.to_bits(),
            "embedding element {i} differs between loopback cluster and \
             single machine: {n:e} vs {l:e}"
        );
    }
    for (i, (n, l)) in scores(&net_model, &edges)
        .iter()
        .zip(&scores(&local_model, &edges))
        .enumerate()
    {
        assert_eq!(
            n.to_bits(),
            l.to_bits(),
            "score {i} differs: {n:e} vs {l:e}"
        );
    }
}

#[test]
fn loopback_scores_match_committed_golden() {
    pin_scalar_kernels();
    let (schema, edges) = dataset();
    let servers = spawn_servers(&schema, &config(), None);
    let (_, net_model) = run_cluster(&servers, 2, |_| FaultPlan::none());
    let scores = scores(&net_model, &edges);
    let rendered: String = scores
        .iter()
        .map(|s| format!("{:08x} # {s:e}\n", s.to_bits()))
        .collect();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, &rendered).unwrap();
        eprintln!("golden file updated: {GOLDEN_PATH}");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH).unwrap_or_else(|e| {
        panic!("cannot read {GOLDEN_PATH}: {e}; run with UPDATE_GOLDEN=1 to create it")
    });
    let want: Vec<u32> = golden
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| {
            let hex = l.split('#').next().unwrap().trim();
            u32::from_str_radix(hex, 16).unwrap_or_else(|e| panic!("bad golden line {l:?}: {e}"))
        })
        .collect();
    assert_eq!(scores.len(), want.len(), "golden length mismatch");
    for (i, (&got, &bits)) in scores.iter().zip(&want).enumerate() {
        assert_eq!(
            got.to_bits(),
            bits,
            "score {i}: got {got:e} ({:08x}), golden ({bits:08x}) — a wire or \
             rank-driver change altered networked numerics; if intentional, \
             regenerate with UPDATE_GOLDEN=1",
            got.to_bits()
        );
    }
}

#[test]
fn crashed_rank_is_reaped_and_its_bucket_retrained_exactly_once() {
    pin_scalar_kernels();
    let (schema, edges) = dataset();
    let cfg = config();
    let servers = spawn_servers(&schema, &cfg, Some(Duration::from_millis(250)));

    // phase 1: rank 1 runs alone and dies on its very first grant —
    // lease held, partition checked out, sockets dropped mid-protocol
    let telemetry1 = Registry::new();
    let services1 = rank_services(&servers, &telemetry1);
    let mut run1 = RankConfig::new(1);
    run1.faults = FaultPlan {
        crash: Some(CrashFault {
            machine: 1,
            buckets: 0,
            epoch: 1,
        }),
        ..FaultPlan::none()
    };
    let stats1 = train_rank(&schema, &edges, cfg.clone(), &services1, &run1, &telemetry1)
        .expect("crashing rank");
    assert!(stats1.crashed, "the injected crash must fire");
    assert_eq!(stats1.buckets_trained, 0, "rank died before training");
    drop(services1); // the crash: every connection goes away

    // phase 2: rank 0 must wait out the lease, reap it, fence the dead
    // rank's checkout, and train every (epoch, bucket) pair itself
    let telemetry0 = Registry::new();
    let services0 = rank_services(&servers, &telemetry0);
    let run0 = RankConfig::new(0);
    let stats0 =
        train_rank(&schema, &edges, cfg.clone(), &services0, &run0, &telemetry0).expect("survivor");
    assert_eq!(stats0.recovered_buckets, 1, "exactly one lease reaped");
    assert_eq!(
        stats0.buckets_trained,
        cfg.epochs * (PARTS * PARTS) as usize,
        "survivor retrains the reaped bucket and everything else exactly once"
    );
    assert!(!stats0.crashed);

    // the cluster still converges to a usable model
    let snapshot = snapshot_model(&schema, cfg, &services0.partitions, &services0.params)
        .expect("snapshot after recovery");
    assert!(table(&snapshot).iter().all(|v| v.is_finite()));
}

#[test]
fn stale_fenced_checkin_is_rejected_over_tcp() {
    pin_scalar_kernels();
    use pbg::core::storage::PartitionKey;
    use pbg::distsim::service::PartitionService;

    let (schema, _) = dataset();
    let servers = spawn_servers(&schema, &config(), None);
    let telemetry = Registry::new();
    let client = NetPartitions::new(servers.partitions.local_addr().to_string(), &telemetry);

    let key = PartitionKey::new(0u32, 1u32);
    let (emb, acc, stale_token) = client.checkout(key).expect("checkout");
    // a reaper fences the checkout (what a surviving rank does after
    // reaping the holder's lease)
    client.revoke(key).expect("revoke");
    assert!(
        !client
            .checkin(key, emb.clone(), acc.clone(), stale_token)
            .expect("stale checkin must not error, only be discarded"),
        "check-in with a fenced token must be rejected"
    );
    // and the reject really discarded the write
    let fresh = client.checkout(key).expect("checkout after fence");
    assert_eq!(fresh.0, emb, "server kept the last committed version");
    // the state machine behind the socket agrees with the wire result
    assert!(servers.partition_state.stored_bytes() > 0);
}
