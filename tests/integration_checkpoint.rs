//! Checkpointing through the public API: save a trained model, reload,
//! verify evaluation is bit-identical.

use pbg::core::checkpoint;
use pbg::core::config::PbgConfig;
use pbg::core::eval::{CandidateSampling, LinkPredictionEval};
use pbg::core::trainer::Trainer;
use pbg::datagen::presets;
use pbg::graph::split::EdgeSplit;

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("pbg_int_ckpt_{name}_{}", std::process::id()))
}

#[test]
fn checkpoint_reload_preserves_eval_metrics() {
    let dataset = presets::fb15k_like(0.02, 2); // ~300 entities
    let split = EdgeSplit::new(&dataset.edges, 0.0, 0.1, 2);
    let config = PbgConfig::builder()
        .dim(16)
        .epochs(3)
        .batch_size(250)
        .chunk_size(25)
        .uniform_negatives(25)
        .threads(2)
        .build()
        .unwrap();
    let mut trainer = Trainer::new(dataset.schema.clone(), &split.train, config).unwrap();
    trainer.train();
    let model = trainer.snapshot();

    let dir = tmp("metrics");
    checkpoint::save(&model, &dir).unwrap();
    let reloaded = checkpoint::load(&dir).unwrap();
    std::fs::remove_dir_all(&dir).ok();

    let eval = LinkPredictionEval {
        num_candidates: 100,
        sampling: CandidateSampling::Uniform,
        seed: 33,
        ..Default::default()
    };
    let a = eval.evaluate(&model, &split.test, &split.train, &[]);
    let b = eval.evaluate(&reloaded, &split.test, &split.train, &[]);
    assert_eq!(a.mrr, b.mrr, "metrics changed across checkpoint reload");
    assert_eq!(a.hits_at_10, b.hits_at_10);
}

#[test]
fn config_travels_with_checkpoint() {
    let config = PbgConfig::builder().dim(24).seed(99).build().unwrap();
    let dir = tmp("config");
    checkpoint::save_config(&config, &dir).unwrap();
    let loaded = checkpoint::load_config(&dir).unwrap();
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(config, loaded);
}

#[test]
fn edges_roundtrip_through_shared_filesystem_format() {
    // the distributed trainers read bucketed edges from a shared
    // filesystem (Figure 2); verify the binary edge format end to end
    let dataset = presets::livejournal_like(0.00005, 6);
    let dir = tmp("edges");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("edges.bin");
    pbg::graph::io::write_edges(std::fs::File::create(&path).unwrap(), &dataset.edges).unwrap();
    let back = pbg::graph::io::read_edges(std::fs::File::open(&path).unwrap()).unwrap();
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(dataset.edges, back);
}
