//! Checkpointing through the public API: save a trained model, reload,
//! verify evaluation is bit-identical.

use pbg::core::checkpoint;
use pbg::core::config::PbgConfig;
use pbg::core::eval::{CandidateSampling, LinkPredictionEval};
use pbg::core::trainer::Trainer;
use pbg::datagen::presets;
use pbg::graph::split::EdgeSplit;

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("pbg_int_ckpt_{name}_{}", std::process::id()))
}

#[test]
fn checkpoint_reload_preserves_eval_metrics() {
    let dataset = presets::fb15k_like(0.02, 2); // ~300 entities
    let split = EdgeSplit::new(&dataset.edges, 0.0, 0.1, 2);
    let config = PbgConfig::builder()
        .dim(16)
        .epochs(3)
        .batch_size(250)
        .chunk_size(25)
        .uniform_negatives(25)
        .threads(2)
        .build()
        .unwrap();
    let mut trainer = Trainer::new(dataset.schema.clone(), &split.train, config).unwrap();
    trainer.train();
    let model = trainer.snapshot();

    let dir = tmp("metrics");
    checkpoint::save(&model, &dir).unwrap();
    let reloaded = checkpoint::load(&dir).unwrap();
    std::fs::remove_dir_all(&dir).ok();

    let eval = LinkPredictionEval {
        num_candidates: 100,
        sampling: CandidateSampling::Uniform,
        seed: 33,
        ..Default::default()
    };
    let a = eval.evaluate(&model, &split.test, &split.train, &[]);
    let b = eval.evaluate(&reloaded, &split.test, &split.train, &[]);
    assert_eq!(a.mrr, b.mrr, "metrics changed across checkpoint reload");
    assert_eq!(a.hits_at_10, b.hits_at_10);
}

#[test]
fn config_travels_with_checkpoint() {
    let config = PbgConfig::builder().dim(24).seed(99).build().unwrap();
    let dir = tmp("config");
    checkpoint::save_config(&config, &dir).unwrap();
    let loaded = checkpoint::load_config(&dir).unwrap();
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(config, loaded);
}

#[test]
fn edges_roundtrip_through_shared_filesystem_format() {
    // the distributed trainers read bucketed edges from a shared
    // filesystem (Figure 2); verify the binary edge format end to end
    let dataset = presets::livejournal_like(0.00005, 6);
    let dir = tmp("edges");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("edges.bin");
    pbg::graph::io::write_edges(std::fs::File::create(&path).unwrap(), &dataset.edges).unwrap();
    let back = pbg::graph::io::read_edges(std::fs::File::open(&path).unwrap()).unwrap();
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(dataset.edges, back);
}

// ---------------------------------------------------------------------
// Crash consistency: kill-point harness over checkpoint v2.
// ---------------------------------------------------------------------

use pbg::core::checkpoint::{CheckpointIo, TrainProgress};
use pbg::core::error::{PbgError, Result as PbgResult};
use pbg::core::model::TrainedEmbeddings;
use pbg::graph::edges::{Edge, EdgeList};
use pbg::graph::schema::GraphSchema;

fn ring(n: u32) -> EdgeList {
    (0..n).map(|i| Edge::new(i, 0u32, (i + 1) % n)).collect()
}

/// Two snapshots of the same model one epoch apart: same schema and
/// shapes, different values — the worst case for mixed-state detection.
fn two_snapshots() -> (TrainedEmbeddings, TrainedEmbeddings) {
    let schema = GraphSchema::homogeneous(32, 2).unwrap();
    let config = PbgConfig::builder()
        .dim(8)
        .batch_size(16)
        .chunk_size(4)
        .uniform_negatives(4)
        .threads(1)
        .epochs(2)
        .build()
        .unwrap();
    let mut t = Trainer::new(schema, &ring(32), config).unwrap();
    t.train_epoch();
    let a = t.snapshot();
    t.train_epoch();
    let b = t.snapshot();
    assert_ne!(
        a.embeddings[0].as_slice(),
        b.embeddings[0].as_slice(),
        "snapshots must differ for the harness to mean anything"
    );
    (a, b)
}

/// A [`CheckpointIo`] that completes the first `survive` file operations
/// atomically, then dies — leaving the in-flight file's temp sibling
/// truncated at `partial` bytes, as a crash mid-`write` would.
struct KillAfter {
    survive: usize,
    done: usize,
    partial: Option<usize>,
}

impl CheckpointIo for KillAfter {
    fn persist(&mut self, path: &std::path::Path, bytes: &[u8]) -> PbgResult<()> {
        if self.done == self.survive {
            if let Some(n) = self.partial {
                let name = path.file_name().unwrap().to_str().unwrap();
                let tmp = path.with_file_name(format!("{name}.tmp"));
                std::fs::write(&tmp, &bytes[..n.min(bytes.len())]).unwrap();
            }
            return Err(PbgError::Checkpoint("injected crash".into()));
        }
        self.done += 1;
        checkpoint::write_atomic(path, bytes)
    }
}

fn assert_is_exactly(loaded: &TrainedEmbeddings, expect: &TrainedEmbeddings, ctx: &str) {
    assert_eq!(loaded.dim, expect.dim, "{ctx}: dim");
    assert_eq!(loaded.schema, expect.schema, "{ctx}: schema");
    for (t, (l, e)) in loaded.embeddings.iter().zip(&expect.embeddings).enumerate() {
        assert_eq!(
            l.as_slice(),
            e.as_slice(),
            "{ctx}: embeddings_{t} mixed state"
        );
    }
    assert_eq!(loaded.relations, expect.relations, "{ctx}: relations");
}

#[test]
fn kill_point_at_every_file_operation_never_yields_mixed_state() {
    let (snap_a, snap_b) = two_snapshots();
    let prog_a = TrainProgress {
        epochs_done: 1,
        steps_done: 0,
    };
    let prog_b = TrainProgress {
        epochs_done: 2,
        steps_done: 0,
    };
    // several in-flight truncation offsets per kill point, including
    // "temp never created" and "temp fully written but never renamed"
    for partial in [None, Some(0), Some(7), Some(usize::MAX)] {
        let mut kill = 0;
        loop {
            let dir = tmp(&format!("kill_{kill}_{partial:?}"));
            std::fs::remove_dir_all(&dir).ok();
            checkpoint::save_with_progress(&snap_a, &dir, prog_a).unwrap();
            let mut io = KillAfter {
                survive: kill,
                done: 0,
                partial,
            };
            let result = checkpoint::save_with_io(&snap_b, &dir, prog_b, &mut io);
            match result {
                Ok(()) => {
                    // past the last operation: save completed, B is live
                    let (loaded, m) = checkpoint::load_with_manifest(&dir).unwrap();
                    assert_eq!(m.progress, prog_b);
                    assert_is_exactly(&loaded, &snap_b, "completed save");
                    std::fs::remove_dir_all(&dir).ok();
                    break;
                }
                Err(_) => match checkpoint::load_with_manifest(&dir) {
                    Ok((loaded, m)) => {
                        // acceptable only if it is exactly checkpoint A
                        assert_eq!(m.progress, prog_a, "kill {kill}: manifest not A's");
                        assert_is_exactly(&loaded, &snap_a, &format!("kill {kill}"));
                    }
                    Err(PbgError::Checkpoint(_)) => {} // clean refusal
                    Err(e) => panic!("kill {kill}: unexpected error kind {e:?}"),
                },
            }
            std::fs::remove_dir_all(&dir).ok();
            kill += 1;
            assert!(kill < 64, "save never completed");
        }
    }
}

#[test]
fn truncated_final_files_are_always_rejected() {
    // belt-and-braces beyond rename atomicity: if a final file does end
    // up short (lost dir entry, non-atomic filesystem), checksums must
    // catch it at every offset
    let (snap, _) = two_snapshots();
    let dir = tmp("trunc_final");
    std::fs::remove_dir_all(&dir).ok();
    checkpoint::save(&snap, &dir).unwrap();
    let manifest = checkpoint::read_manifest(&dir).unwrap();
    let mut names: Vec<String> = manifest.files.iter().map(|f| f.name.clone()).collect();
    names.push(checkpoint::MANIFEST_NAME.to_string());
    for name in names {
        let original = std::fs::read(dir.join(&name)).unwrap();
        for cut in [0, 1, original.len() / 2, original.len() - 1] {
            std::fs::write(dir.join(&name), &original[..cut]).unwrap();
            match checkpoint::load(&dir) {
                Err(PbgError::Checkpoint(_)) => {}
                other => panic!("{name} truncated at {cut} not rejected: {other:?}"),
            }
        }
        std::fs::write(dir.join(&name), &original).unwrap();
    }
    // restored in full: loads again
    checkpoint::load(&dir).unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_matrix_adopted_at_kill_point_is_named_in_the_error() {
    // a kill mid-write leaves `embeddings_0.bin.tmp` torn with an intact
    // header but a short float payload. Rename atomicity means the live
    // checkpoint never sees it — but if a broken recovery tool adopted
    // the torn temp and even fixed up the manifest entry (so the
    // size/checksum gate passes), the loader must still refuse with a
    // shape-mismatch error that names the file and the byte shortfall,
    // not a panic or a silently short matrix.
    let (snap_a, snap_b) = two_snapshots();
    let prog_a = TrainProgress {
        epochs_done: 1,
        steps_done: 0,
    };
    let prog_b = TrainProgress {
        epochs_done: 2,
        steps_done: 0,
    };
    let mut tore_a_matrix = false;
    let mut kill = 0;
    loop {
        let dir = tmp(&format!("torn_{kill}"));
        std::fs::remove_dir_all(&dir).ok();
        checkpoint::save_with_progress(&snap_a, &dir, prog_a).unwrap();
        // 42 bytes: past the 24-byte header, mid-row for any dim — the
        // worst torn write, structurally valid up to the cut
        let mut io = KillAfter {
            survive: kill,
            done: 0,
            partial: Some(42),
        };
        if checkpoint::save_with_io(&snap_b, &dir, prog_b, &mut io).is_ok() {
            std::fs::remove_dir_all(&dir).ok();
            break;
        }
        let torn: Option<String> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok()?.file_name().into_string().ok())
            .find(|n| n.starts_with("embeddings_") && n.ends_with(".tmp"));
        if let Some(tmp_name) = torn {
            let final_name = tmp_name.trim_end_matches(".tmp").to_string();
            let bytes = std::fs::read(dir.join(&tmp_name)).unwrap();
            std::fs::write(dir.join(&final_name), &bytes).unwrap();
            let mut manifest = checkpoint::read_manifest(&dir).unwrap();
            for f in &mut manifest.files {
                if f.name == final_name {
                    f.bytes = bytes.len() as u64;
                    f.checksum = format!("{:016x}", checkpoint::checksum(&bytes));
                }
            }
            std::fs::write(
                dir.join(checkpoint::MANIFEST_NAME),
                serde_json::to_string(&manifest).unwrap(),
            )
            .unwrap();
            match checkpoint::load(&dir) {
                Err(PbgError::Checkpoint(msg)) => {
                    assert!(msg.contains(&final_name), "{msg}");
                    assert!(msg.contains("shape"), "{msg}");
                    assert!(msg.contains("short"), "{msg}");
                }
                other => panic!("torn {final_name} accepted: {other:?}"),
            }
            tore_a_matrix = true;
        }
        std::fs::remove_dir_all(&dir).ok();
        kill += 1;
        assert!(kill < 64, "save never completed");
    }
    assert!(
        tore_a_matrix,
        "no kill point ever tore an embeddings file; harness is vacuous"
    );
}

#[test]
fn resumed_run_matches_uninterrupted_bucket_count() {
    // acceptance: `--resume` restarted at a bucket boundary skips
    // already-trained buckets and the combined run trains exactly the
    // bucket count of an uninterrupted run
    let schema = GraphSchema::homogeneous(48, 3).unwrap(); // 9 buckets/epoch
    let edges = ring(48);
    let config = PbgConfig::builder()
        .dim(8)
        .batch_size(16)
        .chunk_size(4)
        .uniform_negatives(4)
        .threads(1)
        .epochs(2)
        .seed(5)
        .build()
        .unwrap();
    let mut reference = Trainer::new(schema.clone(), &edges, config.clone()).unwrap();
    let ref_buckets: usize = reference.train().iter().map(|s| s.buckets).sum();
    assert_eq!(ref_buckets, 18);

    let dir = tmp("resume_equiv");
    std::fs::remove_dir_all(&dir).ok();
    let mut interrupted = Trainer::new(schema.clone(), &edges, config.clone()).unwrap();
    interrupted.set_checkpoint_policy(pbg::core::CheckpointPolicy {
        dir: dir.clone(),
        every_buckets: 4,
    });
    interrupted.inject_crash_after_buckets(14); // dies 5 buckets into epoch 2
    let crashed_stats = interrupted.train();
    assert!(interrupted.crashed());
    let crashed_buckets: usize = crashed_stats.iter().map(|s| s.buckets).sum();
    assert_eq!(crashed_buckets, 14);
    let manifest = checkpoint::read_manifest(&dir).unwrap();
    // last periodic save: 4 buckets into the in-progress second epoch
    assert_eq!(manifest.progress.epochs_done, 1);
    assert_eq!(manifest.progress.steps_done, 4);

    let mut resumed = Trainer::resume(
        schema,
        &edges,
        config,
        pbg::core::trainer::Storage::InMemory,
        pbg::telemetry::Registry::new(),
        &dir,
    )
    .unwrap();
    let resumed_stats = resumed.train();
    assert_eq!(resumed_stats.len(), 1, "only the interrupted epoch remains");
    // the resumed epoch skips the 4 checkpointed buckets and trains the
    // other 5 — together exactly one uninterrupted epoch's bucket count
    assert_eq!(resumed_stats[0].buckets, 5);
    assert_eq!(
        manifest.progress.steps_done + resumed_stats[0].buckets,
        ref_buckets / 2,
        "skipped + retrained must equal one full epoch"
    );
    assert_eq!(resumed.epochs_done(), 2);
    std::fs::remove_dir_all(&dir).ok();
}
