//! End-to-end serving: train a small model, checkpoint it, memory-map
//! the checkpoint, and query it over HTTP — asserting the served top-k
//! agrees with the offline (heap-loaded) scoring path.

use pbg::core::checkpoint;
use pbg::core::config::PbgConfig;
use pbg::core::trainer::Trainer;
use pbg::datagen::presets;
use pbg::graph::ids::RelationTypeId;
use pbg::serve::{EmbedServer, ServeConfig};
use pbg::telemetry::Registry;
use serde_json::Value;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("pbg_int_serve_{name}_{}", std::process::id()))
}

fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (String, String) {
    let mut s = TcpStream::connect(addr).unwrap();
    let req = format!(
        "{method} {path} HTTP/1.0\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    s.write_all(req.as_bytes()).unwrap();
    let mut response = String::new();
    s.read_to_string(&mut response).unwrap();
    let (head, payload) = response
        .split_once("\r\n\r\n")
        .unwrap_or((response.as_str(), ""));
    (
        head.lines().next().unwrap_or("").to_string(),
        payload.to_string(),
    )
}

#[test]
fn served_topk_matches_offline_argmax_after_training() {
    let dataset = presets::fb15k_like(0.02, 4); // ~300 entities
    let config = PbgConfig::builder()
        .dim(16)
        .epochs(2)
        .batch_size(250)
        .chunk_size(25)
        .uniform_negatives(10)
        .threads(2)
        .build()
        .unwrap();
    let mut trainer = Trainer::new(dataset.schema.clone(), &dataset.edges, config).unwrap();
    trainer.train();
    let model = trainer.snapshot();

    let dir = tmp("topk");
    std::fs::remove_dir_all(&dir).ok();
    checkpoint::save(&model, &dir).unwrap();
    let mmap = Arc::new(checkpoint::open_mmap(&dir).unwrap());
    let registry = Registry::new();
    let server = EmbedServer::serve(
        "127.0.0.1:0",
        Arc::clone(&mmap),
        registry.clone(),
        ServeConfig {
            rate_limit_rps: 0.0,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    let rel = RelationTypeId(0);
    let dest = model.schema.relation_type(rel).dest_type();
    let n = model.schema.entity_type(dest).num_entities();
    let all: Vec<u32> = (0..n).collect();
    for src in [0u32, 5, 11] {
        // offline reference: the heap-loaded model scored through the
        // batched path, argmax with ties to the lower id
        let scores = model.score_against_destinations(src, rel, &all);
        let mut best = 0usize;
        for (i, &s) in scores.iter().enumerate() {
            if s > scores[best] {
                best = i;
            }
        }
        let (status, body) = http(
            addr,
            "POST",
            "/topk",
            &format!("{{\"src\": {src}, \"rel\": 0, \"k\": 5}}"),
        );
        assert!(status.contains("200"), "{status} {body}");
        let v: Value = serde_json::from_str(&body).unwrap();
        let results = v.get("results").unwrap().as_array().unwrap();
        assert_eq!(results.len(), 5);
        assert_eq!(
            results[0].get("dst").unwrap().as_u64(),
            Some(best as u64),
            "src {src}: served top-1 disagrees with offline argmax"
        );
        let served = results[0].get("score").unwrap().as_f64().unwrap();
        assert!(
            (served - f64::from(scores[best])).abs() < 1e-6,
            "src {src}: {served} vs {}",
            scores[best]
        );
    }

    // health and metrics ride along and stay lint-clean under load
    let (status, body) = http(addr, "GET", "/healthz", "");
    assert!(status.contains("200"), "{status}");
    let health: Value = serde_json::from_str(&body).unwrap();
    assert_eq!(health.get("status").unwrap().as_str(), Some("ok"));
    assert_eq!(
        health.get("mapped_bytes").unwrap().as_u64(),
        Some(mmap.mapped_bytes() as u64)
    );
    let (status, text) = http(addr, "GET", "/metrics", "");
    assert!(status.contains("200"), "{status}");
    pbg::telemetry::snapshot::lint_prometheus(&text).unwrap();
    assert!(registry.counter("serve.requests").get() >= 4);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn served_scores_are_bit_identical_to_mmap_model() {
    // the HTTP layer must not perturb floats: serve /score, then compare
    // against the in-process mmap scoring path at f32 precision
    let dataset = presets::fb15k_like(0.01, 9);
    let config = PbgConfig::builder()
        .dim(8)
        .epochs(1)
        .batch_size(100)
        .chunk_size(20)
        .uniform_negatives(5)
        .threads(1)
        .build()
        .unwrap();
    let mut trainer = Trainer::new(dataset.schema.clone(), &dataset.edges, config).unwrap();
    trainer.train();
    let dir = tmp("bits");
    std::fs::remove_dir_all(&dir).ok();
    checkpoint::save(&trainer.snapshot(), &dir).unwrap();
    let mmap = Arc::new(checkpoint::open_mmap(&dir).unwrap());
    let server = EmbedServer::serve(
        "127.0.0.1:0",
        Arc::clone(&mmap),
        Registry::new(),
        ServeConfig {
            rate_limit_rps: 0.0,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let (status, body) = http(
        server.local_addr(),
        "POST",
        "/score",
        "{\"src\": 3, \"rel\": 0, \"dsts\": [0, 1, 2, 3, 4]}",
    );
    assert!(status.contains("200"), "{status} {body}");
    let v: Value = serde_json::from_str(&body).unwrap();
    let got = v.get("scores").unwrap().as_array().unwrap();
    let want = mmap.score_against_destinations(3, RelationTypeId(0), &[0, 1, 2, 3, 4]);
    for (g, w) in got.iter().zip(&want) {
        // JSON carries f64; the f32 payload must survive the round trip
        assert_eq!(g.as_f64().unwrap() as f32, *w);
    }
    std::fs::remove_dir_all(&dir).ok();
}
