//! Baselines vs PBG on the same graph with the same evaluation — the
//! Table 1 comparison in miniature.

use pbg::baselines::deepwalk::{DeepWalk, DeepWalkConfig};
use pbg::baselines::mile::{Mile, MileConfig};
use pbg::baselines::sgns::SgnsConfig;
use pbg::baselines::walks::WalkConfig;
use pbg::core::config::PbgConfig;
use pbg::core::eval::{CandidateSampling, LinkPredictionEval};
use pbg::core::model::{RelationSnapshot, TrainedEmbeddings};
use pbg::core::trainer::Trainer;
use pbg::datagen::presets;
use pbg::graph::schema::OperatorKind;
use pbg::graph::split::EdgeSplit;
use pbg::tensor::matrix::Matrix;

/// Wraps a plain embedding matrix as a PBG model (identity relation, dot
/// similarity) so every system shares one evaluation path.
fn wrap(embeddings: Matrix, schema: pbg::graph::schema::GraphSchema) -> TrainedEmbeddings {
    TrainedEmbeddings {
        dim: embeddings.cols(),
        similarity: pbg::core::config::SimilarityKind::Dot,
        schema,
        embeddings: vec![embeddings],
        relations: vec![RelationSnapshot {
            op: OperatorKind::Identity,
            weight: 1.0,
            forward: Vec::new(),
            reciprocal: None,
        }],
    }
}

#[test]
fn all_three_systems_beat_chance_on_the_same_graph() {
    let dataset = presets::livejournal_like(0.0001, 8); // ~480 nodes
    let n = dataset.num_nodes() as usize;
    let split = EdgeSplit::seventy_five_twenty_five(&dataset.edges, 8);
    let eval = LinkPredictionEval {
        num_candidates: 100,
        sampling: CandidateSampling::Uniform,
        seed: 44,
        ..Default::default()
    };

    // PBG
    let config = PbgConfig::builder()
        .dim(32)
        .epochs(5)
        .batch_size(250)
        .chunk_size(25)
        .uniform_negatives(25)
        .threads(2)
        .build()
        .unwrap();
    let mut trainer = Trainer::new(dataset.schema.clone(), &split.train, config).unwrap();
    trainer.train();
    let pbg_mrr = eval
        .evaluate(&trainer.snapshot(), &split.test, &split.train, &[])
        .mrr;

    // DeepWalk
    let dw = DeepWalk::new(DeepWalkConfig {
        walks: WalkConfig {
            walks_per_node: 10,
            walk_length: 20,
        },
        sgns: SgnsConfig {
            dim: 32,
            epochs: 3,
            threads: 2,
            ..Default::default()
        },
    })
    .embed(&split.train, n);
    let dw_mrr = eval
        .evaluate(
            &wrap(dw.embeddings, dataset.schema.clone()),
            &split.test,
            &split.train,
            &[],
        )
        .mrr;

    // MILE
    let mile = Mile::new(MileConfig {
        levels: 2,
        base: DeepWalkConfig {
            walks: WalkConfig {
                walks_per_node: 10,
                walk_length: 20,
            },
            sgns: SgnsConfig {
                dim: 32,
                epochs: 3,
                threads: 2,
                ..Default::default()
            },
        },
        ..Default::default()
    })
    .embed(&split.train, n);
    let mile_mrr = eval
        .evaluate(
            &wrap(mile.embeddings, dataset.schema.clone()),
            &split.test,
            &split.train,
            &[],
        )
        .mrr;

    // ~0.05 is chance with 100 uniform candidates
    assert!(pbg_mrr > 0.15, "PBG MRR {pbg_mrr}");
    assert!(dw_mrr > 0.10, "DeepWalk MRR {dw_mrr}");
    assert!(mile_mrr > 0.08, "MILE MRR {mile_mrr}");
    // DeepWalk's memory includes the walk corpus; MILE's hierarchy is
    // cheaper than DeepWalk on the same settings
    assert!(dw.peak_bytes > 0 && mile.peak_bytes > 0);
}

#[test]
fn mile_memory_shrinks_with_levels() {
    let dataset = presets::youtube_like(0.0005, 9); // ~570 nodes
    let n = dataset.num_nodes() as usize;
    let base = DeepWalkConfig {
        walks: WalkConfig {
            walks_per_node: 8,
            walk_length: 15,
        },
        sgns: SgnsConfig {
            dim: 16,
            epochs: 1,
            threads: 2,
            ..Default::default()
        },
    };
    let shallow = Mile::new(MileConfig {
        levels: 1,
        base: base.clone(),
        ..Default::default()
    })
    .embed(&dataset.edges, n);
    let deep = Mile::new(MileConfig {
        levels: 5,
        base,
        ..Default::default()
    })
    .embed(&dataset.edges, n);
    // deeper coarsening embeds a much smaller base graph: smaller corpus
    // + model, so lower peak (Table 1's MILE rows)
    assert!(
        deep.peak_bytes < shallow.peak_bytes,
        "deep {} vs shallow {}",
        deep.peak_bytes,
        shallow.peak_bytes
    );
}
