//! End-to-end: generate a dataset, train, evaluate, use embeddings
//! downstream — the full public-API flow a user follows.

use pbg::core::config::{LossKind, PbgConfig, SimilarityKind};
use pbg::core::eval::{CandidateSampling, LinkPredictionEval};
use pbg::core::trainer::Trainer;
use pbg::datagen::presets;
use pbg::eval::crossval::k_fold;
use pbg::eval::f1::f1_scores;
use pbg::eval::logreg::OneVsRest;
use pbg::graph::split::EdgeSplit;

#[test]
fn livejournal_like_flow_reaches_useful_mrr() {
    let dataset = presets::livejournal_like(0.0002, 3); // ~970 nodes
    let split = EdgeSplit::seventy_five_twenty_five(&dataset.edges, 3);
    let config = PbgConfig::builder()
        .dim(32)
        .epochs(6)
        .batch_size(500)
        .chunk_size(50)
        .uniform_negatives(50)
        .threads(2)
        .build()
        .unwrap();
    let mut trainer = Trainer::new(dataset.schema.clone(), &split.train, config).unwrap();
    let stats = trainer.train();
    assert!(stats.last().unwrap().mean_loss < stats[0].mean_loss);
    let metrics = LinkPredictionEval {
        num_candidates: 100,
        sampling: CandidateSampling::Prevalence,
        ..Default::default()
    }
    .evaluate(&trainer.snapshot(), &split.test, &split.train, &[]);
    assert!(metrics.mrr > 0.1, "MRR {}", metrics.mrr);
    assert!(metrics.hits_at_10 > metrics.hits_at_1);
}

#[test]
fn youtube_like_downstream_classification_beats_chance() {
    let dataset = presets::youtube_like(0.001, 5); // ~1.1k nodes
    let labels = dataset.labels.as_ref().expect("youtube preset has labels");
    let config = PbgConfig::builder()
        .dim(32)
        .epochs(6)
        .batch_size(500)
        .chunk_size(50)
        .uniform_negatives(50)
        .threads(2)
        .build()
        .unwrap();
    let mut trainer = Trainer::new(dataset.schema.clone(), &dataset.edges, config).unwrap();
    trainer.train();
    let model = trainer.snapshot();

    // one-vs-rest logistic regression on the embeddings, 5-fold CV
    let nodes = labels.labeled_nodes();
    assert!(nodes.len() > 100, "need labeled nodes, got {}", nodes.len());
    let features: Vec<Vec<f32>> = nodes
        .iter()
        .map(|&n| model.embedding(0, n).to_vec())
        .collect();
    let truth: Vec<Vec<u16>> = nodes.iter().map(|&n| labels.of(n).to_vec()).collect();
    let folds = k_fold(nodes.len(), 5, 1);
    let fold = &folds[0];
    let train_x: Vec<Vec<f32>> = fold.train.iter().map(|&i| features[i].clone()).collect();
    let train_y: Vec<Vec<u16>> = fold.train.iter().map(|&i| truth[i].clone()).collect();
    let ovr = OneVsRest::fit(&train_x, &train_y, labels.num_classes(), 7);
    let pred: Vec<Vec<u16>> = fold
        .test
        .iter()
        .map(|&i| ovr.predict(&features[i]))
        .collect();
    let test_y: Vec<Vec<u16>> = fold.test.iter().map(|&i| truth[i].clone()).collect();
    let scores = f1_scores(&test_y, &pred, labels.num_classes());
    // chance micro-F1 with ~33 communities is ~3%
    assert!(scores.micro > 0.15, "micro-F1 {}", scores.micro);
}

#[test]
fn fb15k_like_complex_softmax_flow() {
    let dataset = presets::fb15k_like(0.05, 11); // ~750 entities
    let split = EdgeSplit::new(&dataset.edges, 0.05, 0.05, 11);
    let config = PbgConfig::builder()
        .dim(32)
        .epochs(5)
        .batch_size(500)
        .chunk_size(50)
        .uniform_negatives(50)
        .loss(LossKind::Softmax)
        .similarity(SimilarityKind::Dot)
        .reciprocal_relations(true)
        .threads(2)
        .build()
        .unwrap();
    let mut trainer = Trainer::new(dataset.schema.clone(), &split.train, config).unwrap();
    trainer.train();
    let model = trainer.snapshot();
    let raw = LinkPredictionEval {
        num_candidates: 200,
        sampling: CandidateSampling::Uniform,
        filtered: false,
        ..Default::default()
    }
    .evaluate(&model, &split.test, &split.train, &[]);
    let filtered = LinkPredictionEval {
        num_candidates: 200,
        sampling: CandidateSampling::Uniform,
        filtered: true,
        ..Default::default()
    }
    .evaluate(
        &model,
        &split.test,
        &split.train,
        &[&split.train, &split.valid, &split.test],
    );
    assert!(raw.mrr > 0.05, "raw MRR {}", raw.mrr);
    assert!(
        filtered.mrr >= raw.mrr,
        "filtered {} < raw {}",
        filtered.mrr,
        raw.mrr
    );
}
