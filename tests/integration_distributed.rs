//! Distributed (simulated cluster) training through the public API:
//! Table 3/4 (right) in miniature.

use pbg::core::config::PbgConfig;
use pbg::core::eval::{CandidateSampling, LinkPredictionEval};
use pbg::datagen::presets;
use pbg::distsim::cluster::{ClusterConfig, ClusterTrainer};
use pbg::distsim::event::{simulate, EventSimConfig};
use pbg::graph::split::EdgeSplit;

fn config(epochs: usize) -> PbgConfig {
    PbgConfig::builder()
        .dim(16)
        .epochs(epochs)
        .batch_size(250)
        .chunk_size(25)
        .uniform_negatives(25)
        .threads(1)
        .build()
        .unwrap()
}

#[test]
fn multi_machine_quality_matches_and_uses_network() {
    let dataset = presets::twitter_like(0.00001, 4); // ~420 nodes
    let split = EdgeSplit::ninety_five_five(&dataset.edges, 4);
    let eval = LinkPredictionEval {
        num_candidates: 100,
        sampling: CandidateSampling::Prevalence,
        ..Default::default()
    };
    let mut mrrs = Vec::new();
    for machines in [1usize, 2, 4] {
        let schema = dataset.schema_with_partitions(2 * machines as u32);
        let mut cluster = ClusterTrainer::new(
            schema,
            &split.train,
            config(5),
            ClusterConfig {
                machines,
                ..Default::default()
            },
        )
        .unwrap();
        let stats = cluster.train();
        assert_eq!(stats[0].edges, split.train.len(), "epoch covers all edges");
        if machines > 1 {
            assert!(stats[0].network_bytes > 0);
        }
        let m = eval
            .evaluate(&cluster.snapshot(), &split.test, &split.train, &[])
            .mrr;
        mrrs.push(m);
    }
    let best = mrrs.iter().cloned().fold(f64::MIN, f64::max);
    for (i, &m) in mrrs.iter().enumerate() {
        assert!(
            m > 0.4 * best,
            "machines={}: MRR {m} collapsed (best {best})",
            [1, 2, 4][i]
        );
    }
}

#[test]
fn event_projection_reproduces_table3_shape() {
    let base = EventSimConfig::default(); // full Freebase numbers
                                          // single machine: time grows mildly with P, memory falls ~linearly
    let t: Vec<_> = [1u32, 4, 8, 16]
        .iter()
        .map(|&p| {
            simulate(&EventSimConfig {
                partitions: p,
                ..base.clone()
            })
        })
        .collect();
    assert!(t[3].total_hours > t[0].total_hours);
    assert!(t[3].peak_memory_bytes < t[0].peak_memory_bytes / 4);
    // distributed: monotone speedup
    let d: Vec<_> = [(1usize, 1u32), (2, 4), (4, 8), (8, 16)]
        .iter()
        .map(|&(m, p)| {
            simulate(&EventSimConfig {
                machines: m,
                partitions: p,
                ..base.clone()
            })
        })
        .collect();
    for w in d.windows(2) {
        assert!(
            w[1].total_hours < w[0].total_hours,
            "{} !< {}",
            w[1].total_hours,
            w[0].total_hours
        );
    }
}

#[test]
fn cluster_handles_unpartitioned_entity_types() {
    // user -> item graph: items unpartitioned (shared across machines)
    use pbg::graph::edges::{Edge, EdgeList};
    use pbg::graph::schema::{EntityTypeDef, GraphSchema, RelationTypeDef};
    use pbg::tensor::rng::Xoshiro256;
    let mut rng = Xoshiro256::seed_from_u64(8);
    let mut edges = EdgeList::new();
    for _ in 0..4000 {
        let user = rng.gen_index(200) as u32;
        let item = (user % 20 + (rng.gen_index(3) as u32) * 20) % 40;
        edges.push(Edge::new(user, 0u32, item));
    }
    let schema = GraphSchema::builder()
        .entity_type(EntityTypeDef::new("user", 200).with_partitions(4))
        .entity_type(EntityTypeDef::new("item", 40))
        .relation_type(RelationTypeDef::new("clicks", 0u32, 1u32))
        .build()
        .unwrap();
    let mut cluster = ClusterTrainer::new(
        schema,
        &edges,
        config(3),
        ClusterConfig {
            machines: 2,
            ..Default::default()
        },
    )
    .unwrap();
    let stats = cluster.train();
    assert!(stats.last().unwrap().mean_loss < stats[0].mean_loss);
    let snap = cluster.snapshot();
    assert_eq!(snap.embeddings.len(), 2);
    assert_eq!(snap.embeddings[1].rows(), 40);
}
