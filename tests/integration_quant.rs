//! End-to-end quantized storage: the eval gate and the serving drill.
//!
//! Storage precision compresses bytes at rest and on the wire; training
//! math and Adagrad state stay f32. So the contract under test is that
//! a model round-tripped through an f16 (or int8) checkpoint ranks the
//! same way the original did — link-prediction MRR and Hits@10 within a
//! small noise band on two preset datasets — and that a server backed
//! by a quantized memory-mapped checkpoint agrees with offline scoring
//! over the same decoded shards.

use pbg::core::checkpoint::{self, TrainProgress};
use pbg::core::config::PbgConfig;
use pbg::core::eval::{CandidateSampling, LinkPredictionEval};
use pbg::core::trainer::Trainer;
use pbg::datagen::presets;
use pbg::graph::ids::RelationTypeId;
use pbg::graph::split::EdgeSplit;
use pbg::serve::{EmbedServer, ServeConfig};
use pbg::telemetry::Registry;
use pbg::tensor::Precision;
use serde_json::Value;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("pbg_int_quant_{name}_{}", std::process::id()))
}

fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (String, String) {
    let mut s = TcpStream::connect(addr).unwrap();
    let req = format!(
        "{method} {path} HTTP/1.0\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    s.write_all(req.as_bytes()).unwrap();
    let mut response = String::new();
    s.read_to_string(&mut response).unwrap();
    let (head, payload) = response
        .split_once("\r\n\r\n")
        .unwrap_or((response.as_str(), ""));
    (
        head.lines().next().unwrap_or("").to_string(),
        payload.to_string(),
    )
}

/// Trains on `train`, then evaluates the in-memory snapshot and a
/// reload of the same snapshot from a `precision` checkpoint with an
/// identical (seeded, deterministic) eval — returning
/// `(mrr, hits@10)` for both, plus the on-disk embedding bytes.
fn eval_through_checkpoint(
    name: &str,
    dataset: &pbg::datagen::Dataset,
    split: &EdgeSplit,
    config: PbgConfig,
    precision: Precision,
) -> ((f64, f64), (f64, f64), u64) {
    let mut trainer = Trainer::new(dataset.schema.clone(), &split.train, config).unwrap();
    trainer.train();
    let model = trainer.snapshot();

    let eval = LinkPredictionEval {
        num_candidates: 100,
        sampling: CandidateSampling::Prevalence,
        ..Default::default()
    };
    let base = eval.evaluate(&model, &split.test, &split.train, &[]);

    let dir = tmp(name);
    std::fs::remove_dir_all(&dir).ok();
    checkpoint::save_with_precision(&model, &dir, TrainProgress::default(), precision).unwrap();
    let shard_bytes: u64 = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().starts_with("embeddings_"))
        .map(|e| e.metadata().unwrap().len())
        .sum();
    let reloaded = checkpoint::load(&dir).unwrap();
    let quant = eval.evaluate(&reloaded, &split.test, &split.train, &[]);
    std::fs::remove_dir_all(&dir).ok();

    (
        (base.mrr, base.hits_at_10),
        (quant.mrr, quant.hits_at_10),
        shard_bytes,
    )
}

#[test]
fn fb15k_f16_checkpoint_evals_within_noise_band_of_f32() {
    let dataset = presets::fb15k_like(0.05, 11); // ~750 entities
    let split = EdgeSplit::new(&dataset.edges, 0.05, 0.05, 11);
    let config = PbgConfig::builder()
        .dim(32)
        .epochs(3)
        .batch_size(500)
        .chunk_size(50)
        .uniform_negatives(50)
        .threads(2)
        .build()
        .unwrap();

    let ((mrr, hits), (qmrr, qhits), f16_bytes) = eval_through_checkpoint(
        "fb15k_f16",
        &dataset,
        &split,
        config.clone(),
        Precision::F16,
    );
    assert!(mrr > 0.05, "base MRR {mrr}");
    assert!(
        (mrr - qmrr).abs() <= 0.02,
        "fb15k f16 MRR drifted: {mrr} vs {qmrr}"
    );
    assert!(
        (hits - qhits).abs() <= 0.02,
        "fb15k f16 Hits@10 drifted: {hits} vs {qhits}"
    );

    // int8 is lossier: allow a wider band but still demand rankings hold
    let ((mrr8, hits8), (q8mrr, q8hits), _) = eval_through_checkpoint(
        "fb15k_int8",
        &dataset,
        &split,
        config.clone(),
        Precision::Int8,
    );
    assert!(
        (mrr8 - q8mrr).abs() <= 0.05,
        "fb15k int8 MRR drifted: {mrr8} vs {q8mrr}"
    );
    assert!(
        (hits8 - q8hits).abs() <= 0.05,
        "fb15k int8 Hits@10 drifted: {hits8} vs {q8hits}"
    );

    // and the tentpole's size claim, on disk rather than in a model:
    // f16 embedding shards are at most 0.55x their f32 size
    let ((_, _), (_, _), f32_bytes) =
        eval_through_checkpoint("fb15k_f32", &dataset, &split, config, Precision::F32);
    assert!(
        f16_bytes * 100 <= f32_bytes * 55,
        "f16 shards {f16_bytes}B vs f32 {f32_bytes}B"
    );
}

#[test]
fn livejournal_f16_checkpoint_evals_within_noise_band_of_f32() {
    let dataset = presets::livejournal_like(0.0002, 3); // ~970 nodes
    let split = EdgeSplit::seventy_five_twenty_five(&dataset.edges, 3);
    let config = PbgConfig::builder()
        .dim(32)
        .epochs(4)
        .batch_size(500)
        .chunk_size(50)
        .uniform_negatives(50)
        .threads(2)
        .build()
        .unwrap();
    let ((mrr, hits), (qmrr, qhits), _) =
        eval_through_checkpoint("lj_f16", &dataset, &split, config, Precision::F16);
    assert!(mrr > 0.05, "base MRR {mrr}");
    assert!(
        (mrr - qmrr).abs() <= 0.02,
        "livejournal f16 MRR drifted: {mrr} vs {qmrr}"
    );
    assert!(
        (hits - qhits).abs() <= 0.02,
        "livejournal f16 Hits@10 drifted: {hits} vs {qhits}"
    );
}

#[test]
fn quantized_checkpoint_serves_topk_agreeing_with_offline_argmax() {
    let dataset = presets::fb15k_like(0.02, 4); // ~300 entities
    let config = PbgConfig::builder()
        .dim(16)
        .epochs(2)
        .batch_size(250)
        .chunk_size(25)
        .uniform_negatives(10)
        .threads(2)
        .build()
        .unwrap();
    let mut trainer = Trainer::new(dataset.schema.clone(), &dataset.edges, config).unwrap();
    trainer.train();
    let model = trainer.snapshot();

    for precision in [Precision::F16, Precision::Int8] {
        let dir = tmp(&format!("serve_{precision}"));
        std::fs::remove_dir_all(&dir).ok();
        checkpoint::save_with_precision(&model, &dir, TrainProgress::default(), precision).unwrap();
        let mmap = Arc::new(checkpoint::open_mmap(&dir).unwrap());
        let server = EmbedServer::serve(
            "127.0.0.1:0",
            Arc::clone(&mmap),
            Registry::new(),
            ServeConfig {
                rate_limit_rps: 0.0,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr();

        let rel = RelationTypeId(0);
        let dest = model.schema.relation_type(rel).dest_type();
        let n = model.schema.entity_type(dest).num_entities();
        let all: Vec<u32> = (0..n).collect();
        for src in [0u32, 5, 11] {
            // offline reference over the SAME decoded shards the server
            // reads — served /topk must agree exactly with this argmax
            let scores = mmap.score_against_destinations(src, rel, &all);
            let mut best = 0usize;
            for (i, &s) in scores.iter().enumerate() {
                if s > scores[best] {
                    best = i;
                }
            }
            let (status, body) = http(
                addr,
                "POST",
                "/topk",
                &format!("{{\"src\": {src}, \"rel\": 0, \"k\": 5}}"),
            );
            assert!(status.contains("200"), "{precision}: {status} {body}");
            let v: Value = serde_json::from_str(&body).unwrap();
            let results = v.get("results").unwrap().as_array().unwrap();
            assert_eq!(results.len(), 5);
            assert_eq!(
                results[0].get("dst").unwrap().as_u64(),
                Some(best as u64),
                "{precision} src {src}: served top-1 disagrees with offline argmax"
            );
            let served = results[0].get("score").unwrap().as_f64().unwrap();
            assert!(
                (served - f64::from(scores[best])).abs() < 1e-6,
                "{precision} src {src}: {served} vs {}",
                scores[best]
            );
            // and the heap-loaded f32 model agrees up to quantization
            let f32_scores = model.score_against_destinations(src, rel, &all);
            let tol = match precision {
                Precision::F16 => 0.05,
                _ => 0.5,
            };
            assert!(
                (f64::from(f32_scores[best]) - served).abs() < tol,
                "{precision} src {src}: quantized score {served} too far from f32 {}",
                f32_scores[best]
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
