//! Quickstart: train and evaluate PBG embeddings on a small synthetic
//! social network.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pbg::core::config::PbgConfig;
use pbg::core::eval::{CandidateSampling, LinkPredictionEval};
use pbg::core::trainer::Trainer;
use pbg::datagen::social::SocialGraphConfig;
use pbg::graph::split::EdgeSplit;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A LiveJournal-flavored synthetic graph: Zipf degrees, strong
    //    community structure.
    let graph = SocialGraphConfig {
        num_nodes: 2_000,
        num_edges: 40_000,
        num_communities: 80,
        intra_prob: 0.85,
        zipf_exponent: 1.0,
        seed: 42,
    };
    let (edges, _) = graph.generate();
    println!(
        "generated {} edges over {} nodes",
        edges.len(),
        graph.num_nodes
    );

    // 2. 75/25 train/test split (the paper's LiveJournal protocol).
    let split = EdgeSplit::seventy_five_twenty_five(&edges, 7);

    // 3. Train with the paper's default recipe: dot-product similarity,
    //    margin ranking loss, batched negatives, HOGWILD Adagrad.
    let config = PbgConfig::builder()
        .dim(64)
        .epochs(5)
        .batch_size(500)
        .chunk_size(50)
        .uniform_negatives(50)
        .threads(4)
        .learning_rate(0.1)
        .build()?;
    let schema = graph.schema(1);
    let mut trainer = Trainer::new(schema, &split.train, config)?;
    for stats in trainer.train() {
        println!(
            "epoch {:>2}: mean loss {:.4}  ({} edges in {:.2}s, {:.0} edges/s)",
            stats.epoch,
            stats.mean_loss,
            stats.edges,
            stats.seconds,
            stats.edges as f64 / stats.seconds.max(1e-9),
        );
    }

    // 4. Evaluate link prediction: rank true test edges among 100
    //    uniformly sampled corruptions per side.
    let model = trainer.snapshot();
    let metrics = LinkPredictionEval {
        num_candidates: 100,
        sampling: CandidateSampling::Uniform,
        ..Default::default()
    }
    .evaluate(&model, &split.test, &split.train, &[]);
    println!(
        "link prediction: MRR {:.3}  MR {:.1}  Hits@10 {:.3}  ({} ranks)",
        metrics.mrr, metrics.mr, metrics.hits_at_10, metrics.count
    );

    // 5. Embeddings are plain vectors — use them anywhere.
    let v = model.embedding(0, 0);
    println!("node 0 embedding starts with {:?}...", &v[..4.min(v.len())]);
    Ok(())
}
