//! Distributed training (§4.2): machines-as-threads through the lock
//! server / partition server / parameter server protocol, plus the
//! discrete-event projection of the same run at full Freebase scale.
//!
//! ```sh
//! cargo run --release --example distributed_training
//! ```

use pbg::core::config::PbgConfig;
use pbg::core::eval::{CandidateSampling, LinkPredictionEval};
use pbg::core::stats::format_bytes;
use pbg::datagen::presets;
use pbg::distsim::cluster::{ClusterConfig, ClusterTrainer};
use pbg::distsim::event::{simulate, EventSimConfig};
use pbg::graph::split::EdgeSplit;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = presets::twitter_like(0.00002, 21); // ~830 nodes
    let split = EdgeSplit::ninety_five_five(&dataset.edges, 21);
    println!(
        "{}: {} nodes, {} train edges",
        dataset.name,
        dataset.num_nodes(),
        split.train.len()
    );
    let config = PbgConfig::builder()
        .dim(32)
        .epochs(4)
        .batch_size(500)
        .chunk_size(50)
        .uniform_negatives(50)
        .threads(2)
        .build()?;
    let eval = LinkPredictionEval {
        num_candidates: 200,
        sampling: CandidateSampling::Prevalence,
        ..Default::default()
    };

    println!("\n== real runs (machines are threads, transfers accounted) ==");
    for machines in [1usize, 2, 4] {
        let partitions = (2 * machines) as u32;
        let schema = dataset.schema_with_partitions(partitions);
        let mut cluster = ClusterTrainer::new(
            schema,
            &split.train,
            config.clone(),
            ClusterConfig {
                machines,
                ..Default::default()
            },
        )?;
        let stats = cluster.train();
        let last = stats.last().expect("epochs ran");
        let metrics = eval.evaluate(&cluster.snapshot(), &split.test, &split.train, &[]);
        println!(
            "M={machines} P={partitions:>2}: MRR {:.3}  {:.2}s/epoch wall  \
             {} moved  peak/machine {}",
            metrics.mrr,
            last.seconds,
            format_bytes(last.network_bytes as usize),
            format_bytes(last.peak_machine_bytes),
        );
    }

    println!("\n== paper-scale projection (Table 4 shape: full Twitter) ==");
    for (machines, partitions) in [(1usize, 1u32), (2, 4), (4, 8), (8, 16)] {
        let report = simulate(&EventSimConfig {
            nodes: 41_652_230,
            edges: 1_321_528_664, // 90% train split
            dim: 100,
            partitions,
            machines,
            epochs: 10,
            edges_per_sec: 204_000.0, // the paper's implied single-machine rate
            ..Default::default()
        });
        println!(
            "M={machines} P={partitions:>2}: {:>5.1} h  peak {:>9}  occupancy {:.2}",
            report.total_hours,
            format_bytes(report.peak_memory_bytes as usize),
            report.occupancy,
        );
    }
    println!(
        "\nThe projection reproduces Table 4's shape: near-linear speedup \
         with machines and ~1/P peak memory."
    );
    Ok(())
}
