//! A complete networked PBG cluster in one process: the three servers
//! from §3.3 (lock, partition, parameter) bound to ephemeral loopback
//! TCP ports, and two trainer ranks speaking the framed wire protocol
//! to them — the same code path as `pbg serve` / `pbg train --cluster`
//! across real machines, minus the terminals.
//!
//! ```sh
//! cargo run --release --example net_loopback
//! ```

use pbg::core::config::PbgConfig;
use pbg::core::model::Model;
use pbg::datagen::presets;
use pbg::distsim::lockserver::LockServer;
use pbg::distsim::{EpochLock, NetworkModel, ParameterServer, PartitionServer};
use pbg::graph::schema::GraphSchema;
use pbg::net::{
    snapshot_model, train_rank, NetLock, NetParams, NetPartitions, NetServer, RankConfig,
    RankServices,
};
use pbg::telemetry::metrics::names as metric;
use pbg::telemetry::Registry;
use std::sync::Arc;
use std::time::Duration;

const PARTS: u32 = 2;
const RANKS: usize = 2;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = presets::twitter_like(0.00002, 21); // ~830 nodes
    let schema = GraphSchema::homogeneous(dataset.num_nodes(), PARTS)?;
    let config = PbgConfig::builder()
        .dim(32)
        .epochs(3)
        .batch_size(500)
        .chunk_size(50)
        .uniform_negatives(50)
        .threads(2)
        .seed(21)
        .build()?;
    println!(
        "{}: {} nodes, {} edges, {}x{} bucket grid, {} ranks",
        dataset.name,
        dataset.num_nodes(),
        dataset.edges.len(),
        PARTS,
        PARTS,
        RANKS
    );

    // -- the cluster: three servers on ephemeral loopback ports --------
    // (each would be its own `pbg serve` process on a real cluster)
    let layout = Model::new(schema.clone(), config.clone())?.store_layout();
    let meter = Arc::new(NetworkModel::new(1e9, 0.0));
    let lock_state = Arc::new(EpochLock::new(
        LockServer::with_lease(Duration::from_secs(10)),
        config.epochs,
        PARTS,
        PARTS,
    ));
    let part_state = Arc::new(PartitionServer::new(layout, 2, Arc::clone(&meter)));
    let param_state = Arc::new(ParameterServer::new(1, Arc::clone(&meter)));
    let lock_srv = NetServer::lock("127.0.0.1:0", lock_state)?;
    let part_srv = NetServer::partitions("127.0.0.1:0", Arc::clone(&part_state))?;
    let param_srv = NetServer::params("127.0.0.1:0", param_state)?;
    println!(
        "servers up: lock {}, partition {}, param {}",
        lock_srv.local_addr(),
        part_srv.local_addr(),
        param_srv.local_addr()
    );

    // -- the trainer ranks (each would be `pbg train --cluster`) -------
    let stats = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..RANKS)
            .map(|rank| {
                let (schema, edges, config) = (&schema, &dataset.edges, config.clone());
                let (lock, parts, params) = (
                    lock_srv.local_addr().to_string(),
                    part_srv.local_addr().to_string(),
                    param_srv.local_addr().to_string(),
                );
                scope.spawn(move || {
                    let telemetry = Registry::new();
                    let services = RankServices {
                        lock: NetLock::new(lock, &telemetry),
                        partitions: NetPartitions::new(parts, &telemetry),
                        params: NetParams::new(params, &telemetry),
                    };
                    let run = RankConfig::new(rank);
                    let stats = train_rank(schema, edges, config, &services, &run, &telemetry)
                        .expect("rank");
                    let sent = telemetry.counter(metric::NET_BYTES_SENT).get();
                    let received = telemetry.counter(metric::NET_BYTES_RECEIVED).get();
                    (stats, sent + received)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank thread"))
            .collect::<Vec<_>>()
    });
    for (rank, (s, bytes)) in stats.iter().enumerate() {
        println!(
            "rank {rank}: {} buckets, {} edges, loss {:.2}, {} over the wire",
            s.buckets_trained,
            s.edges,
            s.loss,
            pbg::core::stats::format_bytes(*bytes as usize)
        );
    }
    let total: usize = stats.iter().map(|(s, _)| s.buckets_trained).sum();
    assert_eq!(total, config.epochs * (PARTS * PARTS) as usize);

    // -- final model: pulled from the servers over the same sockets ----
    let telemetry = Registry::new();
    let partitions = NetPartitions::new(part_srv.local_addr().to_string(), &telemetry);
    let params = NetParams::new(param_srv.local_addr().to_string(), &telemetry);
    let model = snapshot_model(&schema, config, &partitions, &params)?;
    let (a, b) = (dataset.edges.sources()[0], dataset.edges.destinations()[0]);
    let score: f32 = model
        .embedding(0, a)
        .iter()
        .zip(model.embedding(0, b))
        .map(|(x, y)| x * y)
        .sum();
    println!(
        "snapshot: {} embeddings pulled; score({a} -> {b}) = {score:.4}",
        model.embeddings[0].rows()
    );
    println!(
        "server-side accounting: {} moved in {} transfers",
        pbg::core::stats::format_bytes(meter.total_bytes() as usize),
        meter.total_transfers()
    );
    Ok(())
}
