//! Social-network embedding at (scaled) LiveJournal size with partitioned,
//! disk-swapped training — the paper's §4.1 single-machine regime.
//!
//! Trains the same graph unpartitioned and with 8 disk-swapped
//! partitions, comparing quality, peak memory, and I/O — a miniature of
//! Table 3 (left).
//!
//! ```sh
//! cargo run --release --example social_network
//! ```

use pbg::core::config::PbgConfig;
use pbg::core::eval::{CandidateSampling, LinkPredictionEval};
use pbg::core::stats::format_bytes;
use pbg::core::trainer::{Storage, Trainer};
use pbg::datagen::presets;
use pbg::graph::split::EdgeSplit;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ~4.8k nodes / ~69k edges: LiveJournal at 1/1000 scale
    let dataset = presets::livejournal_like(0.001, 13);
    println!(
        "{}: {} nodes, {} edges",
        dataset.name,
        dataset.num_nodes(),
        dataset.edges.len()
    );
    let split = EdgeSplit::seventy_five_twenty_five(&dataset.edges, 13);
    let config = PbgConfig::builder()
        .dim(64)
        .epochs(4)
        .batch_size(1000)
        .chunk_size(50)
        .uniform_negatives(50)
        .threads(4)
        .build()?;
    let eval = LinkPredictionEval {
        num_candidates: 200,
        sampling: CandidateSampling::Prevalence,
        ..Default::default()
    };

    for partitions in [1u32, 8] {
        let schema = dataset.schema_with_partitions(partitions);
        let storage = if partitions == 1 {
            Storage::InMemory
        } else {
            Storage::Disk(std::env::temp_dir().join("pbg_social_example"))
        };
        let mut trainer = Trainer::with_storage(schema, &split.train, config.clone(), storage)?;
        let stats = trainer.train();
        let last = stats.last().expect("at least one epoch");
        let model = trainer.snapshot();
        let metrics = eval.evaluate(&model, &split.test, &split.train, &[]);
        println!(
            "P={partitions:>2}: MRR {:.3}  Hits@10 {:.3}  peak memory {:>10}  \
             swaps/epoch {:>3}  {:.1}s/epoch",
            metrics.mrr,
            metrics.hits_at_10,
            format_bytes(trainer.store().peak_bytes()),
            last.swap_ins,
            last.seconds,
        );
    }
    std::fs::remove_dir_all(std::env::temp_dir().join("pbg_social_example")).ok();
    println!(
        "\nThe paper's Table 3 (left) shape: partitioned quality matches \
         unpartitioned while peak memory drops ~P/2-fold."
    );
    Ok(())
}
