//! Multi-relation knowledge-graph embedding: the FB15k protocol (§5.4.1).
//!
//! Trains TransE-style (translation + margin ranking) and ComplEx-style
//! (complex diagonal + softmax + reciprocal relations) models on an
//! FB15k-shaped synthetic knowledge graph and reports raw and filtered
//! MRR / Hits@10, mirroring Table 2's setup.
//!
//! ```sh
//! cargo run --release --example knowledge_graph
//! ```

use pbg::core::config::{LossKind, PbgConfig, SimilarityKind};
use pbg::core::eval::{CandidateSampling, LinkPredictionEval};
use pbg::core::trainer::Trainer;
use pbg::datagen::knowledge::KnowledgeGraphConfig;
use pbg::graph::schema::OperatorKind;
use pbg::graph::split::EdgeSplit;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = KnowledgeGraphConfig {
        num_entities: 3_000,
        num_relations: 60,
        num_edges: 60_000,
        num_communities: 120,
        intra_prob: 0.9,
        seed: 99,
        ..Default::default()
    };

    for (name, operator, loss, similarity, reciprocal) in [
        (
            "TransE-like ",
            OperatorKind::Translation,
            LossKind::MarginRanking,
            SimilarityKind::Cosine,
            false,
        ),
        (
            "ComplEx-like",
            OperatorKind::ComplexDiagonal,
            LossKind::Softmax,
            SimilarityKind::Dot,
            true,
        ),
    ] {
        let kg = KnowledgeGraphConfig {
            operator,
            ..base.clone()
        };
        let (edges, _) = kg.generate();
        let split = EdgeSplit::new(&edges, 0.05, 0.05, 5);
        let config = PbgConfig::builder()
            .dim(64)
            .epochs(6)
            .batch_size(1000)
            .chunk_size(50)
            .uniform_negatives(50)
            .loss(loss)
            .similarity(similarity)
            .reciprocal_relations(reciprocal)
            .margin(0.1)
            .threads(4)
            .build()?;
        let mut trainer = Trainer::new(kg.schema(1), &split.train, config)?;
        trainer.train();
        let model = trainer.snapshot();

        let raw = LinkPredictionEval {
            num_candidates: 500,
            sampling: CandidateSampling::Uniform,
            filtered: false,
            ..Default::default()
        }
        .evaluate(&model, &split.test, &split.train, &[]);
        let filtered = LinkPredictionEval {
            num_candidates: 500,
            sampling: CandidateSampling::Uniform,
            filtered: true,
            ..Default::default()
        }
        .evaluate(
            &model,
            &split.test,
            &split.train,
            &[&split.train, &split.valid, &split.test],
        );
        println!(
            "{name}: raw MRR {:.3} | filtered MRR {:.3} | filtered Hits@10 {:.3}",
            raw.mrr, filtered.mrr, filtered.hits_at_10
        );
    }
    println!(
        "\nAs in Table 2, filtered metrics exceed raw (true edges no longer \
         count as ranking errors), and both operator families train in the \
         same framework."
    );
    Ok(())
}
